"""Quickstart: quantize a trained model to FP8, ship it, serve it.

Trains a small image classifier on a synthetic task (stand-in for a pretrained
checkpoint), quantizes it with the paper's standard E4M3 recipe, and compares
accuracy against the FP32 baseline and the INT8 baseline.  Then walks the
deployment leg: save the converted model as a packed single-file checkpoint,
reload it into a fresh model (restore-free, streaming serving mode — resident
weight bytes stay at the packed footprint) and evaluate it again.

Run with:  python examples/quickstart.py
"""

import os
import tempfile
import time

from repro.evaluation.reporting import format_table
from repro.models.registry import build_task
from repro.quantization import (
    clone_module,
    int8_recipe,
    quantize_model,
    relative_accuracy_loss,
    resident_report,
    standard_recipe,
)
from repro.serialization import load_quantized, save_quantized
from repro.serving import ServingEngine, SubmitOptions


def main() -> None:
    # 1. Get a trained FP32 model + its task (training is cached after the first run).
    bundle = build_task("resnet18-imagenet")
    print(f"FP32 {bundle.spec.name}: {bundle.metric_name} = {bundle.fp32_metric:.4f}")

    # 2. Quantize it with the paper's standard FP8 scheme and the INT8 baseline.
    rows = []
    e4m3_result = None
    e4m3_metric = None
    for recipe in (standard_recipe("E4M3"), standard_recipe("E3M4"), int8_recipe()):
        result = quantize_model(
            bundle.model,
            recipe,
            calibration_data=bundle.calib_data,
            prepare_inputs=bundle.prepare_inputs,
            is_convolutional=True,
        )
        metric = bundle.evaluate(result.model)
        if e4m3_result is None:
            e4m3_result, e4m3_metric = result, metric
        rows.append(
            {
                "recipe": recipe.name,
                "quantized ops": result.num_quantized,
                bundle.metric_name: metric,
                "relative loss %": relative_accuracy_loss(bundle.fp32_metric, metric) * 100,
            }
        )

    # 3. Report.
    print()
    print(format_table(rows, title="Post-training quantization results"))

    # 4. Ship it: save the E4M3-converted model from step 2 as one packed
    #    checkpoint file, reload it zero-copy (mmap=True: packed codes stay
    #    read-only views into the mapped file, paged in on first touch — the
    #    load is O(header) and no float32 weights are ever materialised) in
    #    streaming serving mode, and check the served accuracy matches.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "resnet18-e4m3.rpq")
        file_bytes = save_quantized(e4m3_result.model, path, recipe=e4m3_result.recipe)
        served = load_quantized(
            path, lambda: clone_module(bundle.model), serving_mode="streaming", mmap=True
        )
        report = resident_report(served)
        served_metric = bundle.evaluate(served)

        # 5. Serve it: continuous batching fuses concurrent single-sample
        #    requests into shared forwards (one decode per batch, not per
        #    request).  Requests are submitted staggered — as they would
        #    arrive from real clients — and still batch together, because
        #    arrivals join the next forward of their in-flight compatibility
        #    group instead of waiting for a drain.  A deadline bounds each
        #    request's queue time; priorities would reorder admission.
        #
        #    To scale out, the same call grows a worker fleet:
        #        ServingEngine.from_checkpoint(path, build_model, workers=4)
        #    runs 4 worker threads over one shared mmap of the checkpoint, and
        #        ServingEngine.from_checkpoint(path, build_model,
        #                                      workers=4, worker_mode="process")
        #    isolates each worker in its own process (crash containment +
        #    GIL-free scaling; build_model must then be a module-level
        #    callable, since each worker process rebuilds the model from the
        #    checkpoint in its own address space).
        inputs = bundle.calib_data.inputs[:8]
        with ServingEngine(served, max_batch_size=8, max_wait_ms=5.0) as engine:
            futures = []
            for sample in inputs:
                futures.append(engine.submit(sample, SubmitOptions(deadline_ms=500.0)))
                time.sleep(0.001)  # staggered arrivals, ~1ms apart
            outputs = [future.result(timeout=30.0) for future in futures]
            engine_stats = engine.stats
        # release the mmap views before TemporaryDirectory unlinks the file
        # (deleting a still-mapped file fails on Windows)
        del served, engine
    print()
    print(f"checkpoint: {file_bytes / 1024:.1f} KiB on disk")
    print(
        f"served model: resident weights {report['ratio']:.2f}x of float32 "
        f"(+{report['mapped_bytes'] / 1024:.1f} KiB mmapped), "
        f"{bundle.metric_name} = {served_metric:.4f} "
        f"(converted model scored {e4m3_metric:.4f})"
    )
    print(
        f"serving engine: {len(outputs)} staggered requests in {engine_stats['batches']} "
        f"batch(es), mean batch {engine_stats['mean_batch']:.1f}, "
        f"occupancy {engine_stats['occupancy_mean']:.2f}, "
        f"queue wait p95 {engine_stats['queue_wait_p95_ms']:.1f} ms, "
        f"forward p50 {engine_stats['forward_p50_ms']:.1f} ms"
    )


if __name__ == "__main__":
    main()
