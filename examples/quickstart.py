"""Quickstart: quantize a trained model to FP8 in a few lines.

Trains a small image classifier on a synthetic task (stand-in for a pretrained
checkpoint), quantizes it with the paper's standard E4M3 recipe, and compares
accuracy against the FP32 baseline and the INT8 baseline.

Run with:  python examples/quickstart.py
"""

from repro.evaluation.reporting import format_table
from repro.models.registry import build_task
from repro.quantization import (
    int8_recipe,
    quantize_model,
    relative_accuracy_loss,
    standard_recipe,
)


def main() -> None:
    # 1. Get a trained FP32 model + its task (training is cached after the first run).
    bundle = build_task("resnet18-imagenet")
    print(f"FP32 {bundle.spec.name}: {bundle.metric_name} = {bundle.fp32_metric:.4f}")

    # 2. Quantize it with the paper's standard FP8 scheme and the INT8 baseline.
    rows = []
    for recipe in (standard_recipe("E4M3"), standard_recipe("E3M4"), int8_recipe()):
        result = quantize_model(
            bundle.model,
            recipe,
            calibration_data=bundle.calib_data,
            prepare_inputs=bundle.prepare_inputs,
            is_convolutional=True,
        )
        metric = bundle.evaluate(result.model)
        rows.append(
            {
                "recipe": recipe.name,
                "quantized ops": result.num_quantized,
                bundle.metric_name: metric,
                "relative loss %": relative_accuracy_loss(bundle.fp32_metric, metric) * 100,
            }
        )

    # 3. Report.
    print()
    print(format_table(rows, title="Post-training quantization results"))


if __name__ == "__main__":
    main()
