"""Accuracy-driven automatic tuning example (paper Section 3 / Appendix A.1).

Shows the feedback loop of the paper's workflow: start from the standard
scheme, and if the 1%-relative-loss target is not met, walk the extended-scheme
search space (mixed formats, dynamic quantization, SmoothQuant, operator
fallbacks) until it is.

Run with:  python examples/auto_tuning.py
"""

from repro.models.registry import build_task
from repro.quantization import AutoTuner
from repro.quantization.tuning import default_search_space


def tune(task_name: str, domain: str) -> None:
    bundle = build_task(task_name)
    tuner = AutoTuner(
        evaluate_fn=lambda model: bundle.evaluate(model),
        fp32_metric=bundle.fp32_metric,
        relative_loss_target=0.01,
    )
    fallback_candidates = [
        name for name, _ in bundle.model.named_modules() if name.endswith(
            ("fc1", "classifier", "lm_head")
        )
    ]
    result = tuner.tune(
        bundle.model,
        default_search_space(domain),
        fallback_candidates=fallback_candidates,
        calibration_data=bundle.calib_data,
        prepare_inputs=bundle.prepare_inputs,
        is_convolutional=bundle.spec.is_convolutional,
    )
    print(f"=== {task_name} ({domain}) ===")
    print(result.summary())
    if result.succeeded:
        print(f"-> met the 1% target with recipe {result.best.recipe.name}\n")
    else:
        print("-> target not met; best effort recipe reported above\n")


def main() -> None:
    tune("bert-base-mrpc", "nlp")
    tune("efficientnet-b0-imagenet", "cv")


if __name__ == "__main__":
    main()
