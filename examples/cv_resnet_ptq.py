"""CV example: FP8 PTQ of convolutional classifiers with BatchNorm calibration.

Walks through the paper's CV recipe: per-channel FP8 weights, per-tensor FP8
activations, the first convolution and last linear kept in FP32, and BatchNorm
statistics recalibrated on augmented calibration data (Figure 7).

Run with:  python examples/cv_resnet_ptq.py
"""

from repro.evaluation.reporting import format_table
from repro.models.registry import build_task
from repro.quantization import (
    extended_recipe,
    quantize_model,
    relative_accuracy_loss,
    standard_recipe,
)


def quantize_and_eval(bundle, recipe):
    result = quantize_model(
        bundle.model,
        recipe,
        calibration_data=bundle.calib_data,
        prepare_inputs=bundle.prepare_inputs,
        is_convolutional=True,
        bn_calibration_data=bundle.train_data,
    )
    metric = bundle.evaluate(result.model)
    return result, metric


def main() -> None:
    rows = []
    for task in ("resnet18-imagenet", "densenet121-imagenet", "mobilenet-v2-imagenet"):
        bundle = build_task(task)
        for label, recipe in [
            ("E4M3 standard", standard_recipe("E4M3")),
            ("E3M4 standard", standard_recipe("E3M4")),
            ("E3M4 extended + BN calibration", extended_recipe("E3M4", batchnorm_calibration=True)),
        ]:
            recipe.bn_calibration_samples = 1000
            result, metric = quantize_and_eval(bundle, recipe)
            rows.append(
                {
                    "model": task,
                    "recipe": label,
                    "fp32": bundle.fp32_metric,
                    "quantized": metric,
                    "loss %": relative_accuracy_loss(bundle.fp32_metric, metric) * 100,
                    "bn recalibrated": "yes" if result.batchnorm_calibrated else "no",
                }
            )

    print(format_table(rows, title="FP8 post-training quantization of CNN classifiers"))


if __name__ == "__main__":
    main()
