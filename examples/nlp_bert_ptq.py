"""NLP example: FP8 PTQ of a BERT-style classifier with activation outliers.

Reproduces the paper's NLP story on one workload: the model's pre-FFN
activations contain outlier channels (as in real LLMs), so INT8 per-tensor
activation quantization struggles while E4M3 absorbs the range.  The example
also shows the two extended-scheme options that matter for NLP — SmoothQuant
and mixed FP8 formats (E4M3 activations + E3M4 weights).

Run with:  python examples/nlp_bert_ptq.py
"""

from repro.evaluation.reporting import format_table
from repro.models.registry import build_task
from repro.quantization import (
    Approach,
    extended_recipe,
    int8_recipe,
    quantize_model,
    relative_accuracy_loss,
    standard_recipe,
)
from repro.quantization.mixed import assign_mixed_formats


def main() -> None:
    bundle = build_task("bert-large-rte")
    print(f"FP32 {bundle.spec.name}: accuracy = {bundle.fp32_metric:.4f}")
    print(f"(activation outliers injected with alpha = {bundle.spec.outlier_alpha})")

    recipes = [
        ("INT8 dynamic", int8_recipe(approach=Approach.DYNAMIC)),
        ("INT8 dynamic + SmoothQuant", int8_recipe(approach=Approach.DYNAMIC, smoothquant=True)),
        ("E5M2 direct", standard_recipe("E5M2")),
        ("E4M3 static", standard_recipe("E4M3")),
        ("E3M4 static", standard_recipe("E3M4")),
        ("Mixed E4M3/E3M4", assign_mixed_formats(standard_recipe("E4M3"))),
        (
            "Extended E4M3 (+LayerNorm, BMM, Emb)",
            extended_recipe("E4M3", batchnorm_calibration=False),
        ),
    ]

    rows = []
    for label, recipe in recipes:
        result = quantize_model(
            bundle.model,
            recipe,
            calibration_data=bundle.calib_data,
            prepare_inputs=bundle.prepare_inputs,
        )
        metric = bundle.evaluate(result.model)
        rows.append(
            {
                "configuration": label,
                "accuracy": metric,
                "relative loss %": relative_accuracy_loss(bundle.fp32_metric, metric) * 100,
                "quantized ops": result.num_quantized,
                "smoothquant": "yes" if result.smoothquant_applied else "no",
            }
        )

    print()
    print(format_table(rows, title="FP8 vs INT8 on an outlier-heavy NLP model"))


if __name__ == "__main__":
    main()
