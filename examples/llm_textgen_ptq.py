"""LLM example: effect of quantization on text generation quality (paper Table 4).

Quantizes the Bloom stand-in (a causal LM trained on a synthetic Markov
grammar) with each data format, generates continuations with beam search, and
reports repetition / diversity / grammaticality metrics — the quantitative
version of the paper's qualitative Bloom samples.

All prompts are generated through the serving engine's token-level generation
tier (``engine.generate(prompt, GenerationRequest(...))``), so their decode
steps co-batch each tick instead of running one prompt at a time.

Run with:  python examples/llm_textgen_ptq.py
"""

from repro.evaluation.reporting import format_table
from repro.evaluation.textgen import evaluate_generation_quality
from repro.models.registry import build_task
from repro.quantization import Approach, int8_recipe, quantize_model, standard_recipe
from repro.serving import GenerationRequest, ServingEngine


def main() -> None:
    bundle = build_task("bloom-7b1-lambada")
    print(f"FP32 {bundle.spec.name}: next-token accuracy = {bundle.fp32_metric:.4f}")

    prompts = bundle.eval_data.inputs[:6, :8]
    grammar = bundle.eval_data.extras["transition_probs"][0] if bundle.eval_data.extras else None

    configs = [
        ("FP32", None),
        ("E4M3 static", standard_recipe("E4M3")),
        ("E3M4 static", standard_recipe("E3M4")),
        ("E5M2 direct", standard_recipe("E5M2")),
        ("INT8 dynamic", int8_recipe(approach=Approach.DYNAMIC)),
    ]

    rows = []
    for label, recipe in configs:
        model = bundle.model
        if recipe is not None:
            model = quantize_model(
                bundle.model,
                recipe,
                calibration_data=bundle.calib_data,
                prepare_inputs=bundle.prepare_inputs,
            ).model
        with ServingEngine(model, plan_cache=False) as engine:
            quality = evaluate_generation_quality(
                model, prompts, transition_probs=grammar, max_new_tokens=24, beam_size=4,
                engine=engine,
            )
            sample = engine.generate(
                prompts[0], GenerationRequest(max_new_tokens=16, beam_size=4)
            ).result()
        rows.append(
            {
                "configuration": label,
                "repetition": quality.repetition,
                "distinct-2": quality.distinct2,
                "grammar log-lik": quality.grammar_loglik,
                "sample continuation": " ".join(str(t) for t in sample[len(prompts[0]):]),
            }
        )

    print()
    print(format_table(rows, title="Generation quality under quantization (beam size 4)"))


if __name__ == "__main__":
    main()
