"""Experiment harness: quantize-and-evaluate sweeps, pass rates, FID and text-generation quality."""

from repro.evaluation.harness import (
    EvaluationRecord,
    PassRateReport,
    SweepConfig,
    evaluate_recipe_on_task,
    run_pass_rate_sweep,
    paper_configurations,
)
from repro.evaluation.fid import FeatureStatistics, frechet_distance, fid_proxy
from repro.evaluation.textgen import (
    GenerationQuality,
    repetition_rate,
    distinct_n,
    evaluate_generation_quality,
)
from repro.evaluation.reporting import format_table, format_pass_rate_table, format_records

__all__ = [
    "EvaluationRecord",
    "PassRateReport",
    "SweepConfig",
    "evaluate_recipe_on_task",
    "run_pass_rate_sweep",
    "paper_configurations",
    "FeatureStatistics",
    "frechet_distance",
    "fid_proxy",
    "GenerationQuality",
    "repetition_rate",
    "distinct_n",
    "evaluate_generation_quality",
    "format_table",
    "format_pass_rate_table",
    "format_records",
]
