"""Plain-text table formatting for benchmark output (paper-style tables)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

__all__ = ["format_table", "format_pass_rate_table", "format_records"]


def _fmt_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None, title: str = ""
) -> str:
    """Format a list of dict rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns or rows[0].keys())
    table = [[_fmt_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in table)) for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in table:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_pass_rate_table(report, title: str = "Workload Pass Rate") -> str:
    """Render a :class:`~repro.evaluation.harness.PassRateReport` like the paper's Table 2."""
    rows = []
    for row in report.summary_rows():
        rows.append(
            {
                "Data Type": row["Data Type"],
                "Quantization Approach": row["Quantization Approach"],
                "Pass Rate (CV)": f"{row['Pass Rate (CV)'] * 100:.2f}%",
                "Pass Rate (NLP)": f"{row['Pass Rate (NLP)'] * 100:.2f}%",
                "Pass Rate (All)": f"{row['Pass Rate (All)'] * 100:.2f}%",
            }
        )
    return format_table(rows, title=title)


def format_records(records, title: str = "") -> str:
    """Render a list of :class:`~repro.evaluation.harness.EvaluationRecord` objects."""
    rows = []
    for record in records:
        rows.append(
            {
                "task": record.task,
                "config": record.config,
                "fp32": record.fp32_metric,
                "quantized": record.quantized_metric,
                "rel loss %": record.relative_loss * 100,
                "pass": "yes" if record.passed else "no",
            }
        )
    return format_table(rows, title=title)
