"""Quantize-and-evaluate harness.

This module turns the machinery of :mod:`repro.quantization` and the model zoo
into the paper's headline experiments: for every (task, data format,
quantization approach) pair it quantizes the trained FP32 model, evaluates it,
and aggregates the results into the pass-rate / accuracy-loss statistics shown
in Table 2, Table 3, Figure 4 and Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.models.registry import TaskBundle, build_task, list_specs
from repro.quantization.metrics import (
    DEFAULT_RELATIVE_LOSS_TARGET,
    meets_accuracy_target,
    relative_accuracy_loss,
)
from repro.quantization.qconfig import (
    Approach,
    QuantFormat,
    QuantizationRecipe,
    int8_recipe,
    standard_recipe,
)
from repro.quantization.workflow import quantize_model
from repro.utils.logging import get_logger

__all__ = [
    "EvaluationRecord",
    "PassRateReport",
    "SweepConfig",
    "evaluate_recipe_on_task",
    "run_pass_rate_sweep",
    "paper_configurations",
]

logger = get_logger("evaluation.harness")


@dataclass
class EvaluationRecord:
    """Result of quantizing one task with one configuration."""

    task: str
    domain: str
    size_class: str
    config: str
    fmt: str
    approach: str
    fp32_metric: float
    quantized_metric: float
    relative_loss: float
    passed: bool
    num_quantized_ops: int

    def as_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


@dataclass
class PassRateReport:
    """Aggregated pass rates per configuration, split by domain (paper Table 2)."""

    records: List[EvaluationRecord] = field(default_factory=list)
    relative_loss_target: float = DEFAULT_RELATIVE_LOSS_TARGET

    def add(self, record: EvaluationRecord) -> None:
        self.records.append(record)

    def configurations(self) -> List[str]:
        seen: List[str] = []
        for record in self.records:
            if record.config not in seen:
                seen.append(record.config)
        return seen

    def _subset(self, config: str, domain: Optional[str] = None) -> List[EvaluationRecord]:
        subset = [r for r in self.records if r.config == config]
        if domain == "cv":
            subset = [r for r in subset if r.domain == "cv"]
        elif domain == "nlp":
            subset = [r for r in subset if r.domain == "nlp"]
        return subset

    def pass_rate(self, config: str, domain: Optional[str] = None) -> float:
        subset = self._subset(config, domain)
        if not subset:
            return float("nan")
        return float(np.mean([r.passed for r in subset]))

    def accuracy_losses(self, config: str, domain: Optional[str] = None) -> np.ndarray:
        return np.asarray([r.relative_loss for r in self._subset(config, domain)])

    def loss_statistics(self, config: str, domain: Optional[str] = None) -> Dict[str, float]:
        """Spread statistics behind the paper's Figure 4 box plot."""
        losses = self.accuracy_losses(config, domain)
        if losses.size == 0:
            return {}
        return {
            "mean": float(losses.mean()),
            "median": float(np.median(losses)),
            "p25": float(np.percentile(losses, 25)),
            "p75": float(np.percentile(losses, 75)),
            "min": float(losses.min()),
            "max": float(losses.max()),
        }

    def by_size_class(self, config: str) -> Dict[str, Dict[str, float]]:
        """Per-size-class mean loss (paper Figure 5)."""
        out: Dict[str, Dict[str, float]] = {}
        for record in self.records:
            if record.config != config:
                continue
            bucket = out.setdefault(record.size_class, {"losses": []})
            bucket["losses"].append(record.relative_loss)
        return {
            size: {
                "mean_loss": float(np.mean(vals["losses"])),
                "max_loss": float(np.max(vals["losses"])),
                "count": len(vals["losses"]),
            }
            for size, vals in out.items()
        }

    def summary_rows(self) -> List[Dict[str, object]]:
        """Rows of the Table 2 reproduction."""
        rows = []
        for config in self.configurations():
            sample = next(r for r in self.records if r.config == config)
            rows.append(
                {
                    "Data Type": sample.fmt,
                    "Quantization Approach": sample.approach,
                    "Pass Rate (CV)": self.pass_rate(config, "cv"),
                    "Pass Rate (NLP)": self.pass_rate(config, "nlp"),
                    "Pass Rate (All)": self.pass_rate(config),
                    "config": config,
                }
            )
        return rows


@dataclass
class SweepConfig:
    """One column of the Table 2 sweep: a display name plus per-domain recipes."""

    name: str
    fmt: str
    approach: str
    cv_recipe: QuantizationRecipe
    nlp_recipe: QuantizationRecipe

    def recipe_for(self, domain: str) -> QuantizationRecipe:
        return self.cv_recipe if domain in ("cv", "generative") else self.nlp_recipe


def paper_configurations(smoothquant_nlp: bool = True) -> List[SweepConfig]:
    """The six configurations evaluated in the paper's Table 2.

    E5M2 uses direct quantization; E4M3 and E3M4 are evaluated with both static
    and dynamic activation quantization; the INT8 baseline uses static
    quantization for CV models and dynamic quantization for NLP models.
    SmoothQuant is enabled for NLP models (the paper's default), for every
    data format.
    """

    def nlp(recipe: QuantizationRecipe) -> QuantizationRecipe:
        recipe.smoothquant = smoothquant_nlp
        return recipe

    configs = [
        SweepConfig(
            name="E5M2-direct",
            fmt="E5M2",
            approach="Direct",
            cv_recipe=standard_recipe(QuantFormat.E5M2, name="cv-E5M2"),
            nlp_recipe=nlp(standard_recipe(QuantFormat.E5M2, name="nlp-E5M2")),
        ),
        SweepConfig(
            name="E4M3-static",
            fmt="E4M3",
            approach="Static",
            cv_recipe=standard_recipe(QuantFormat.E4M3, name="cv-E4M3-static"),
            nlp_recipe=nlp(standard_recipe(QuantFormat.E4M3, name="nlp-E4M3-static")),
        ),
        SweepConfig(
            name="E4M3-dynamic",
            fmt="E4M3",
            approach="Dynamic",
            cv_recipe=standard_recipe(
                QuantFormat.E4M3, approach=Approach.DYNAMIC, name="cv-E4M3-dynamic"
            ),
            nlp_recipe=nlp(
                standard_recipe(
                    QuantFormat.E4M3, approach=Approach.DYNAMIC, name="nlp-E4M3-dynamic"
                )
            ),
        ),
        SweepConfig(
            name="E3M4-static",
            fmt="E3M4",
            approach="Static",
            cv_recipe=standard_recipe(QuantFormat.E3M4, name="cv-E3M4-static"),
            nlp_recipe=nlp(standard_recipe(QuantFormat.E3M4, name="nlp-E3M4-static")),
        ),
        SweepConfig(
            name="E3M4-dynamic",
            fmt="E3M4",
            approach="Dynamic",
            cv_recipe=standard_recipe(
                QuantFormat.E3M4, approach=Approach.DYNAMIC, name="cv-E3M4-dynamic"
            ),
            nlp_recipe=nlp(
                standard_recipe(
                    QuantFormat.E3M4, approach=Approach.DYNAMIC, name="nlp-E3M4-dynamic"
                )
            ),
        ),
        SweepConfig(
            name="INT8",
            fmt="INT8",
            approach="Static CV | Dynamic NLP",
            cv_recipe=int8_recipe(name="cv-INT8-static"),
            nlp_recipe=nlp(int8_recipe(approach=Approach.DYNAMIC, name="nlp-INT8-dynamic")),
        ),
    ]
    return configs


def evaluate_recipe_on_task(
    bundle: TaskBundle,
    recipe: QuantizationRecipe,
    config_name: Optional[str] = None,
    fmt: Optional[str] = None,
    approach: Optional[str] = None,
    relative_loss_target: float = DEFAULT_RELATIVE_LOSS_TARGET,
) -> EvaluationRecord:
    """Quantize one task with one recipe and compute its evaluation record."""
    result = quantize_model(
        bundle.model,
        recipe,
        calibration_data=bundle.calib_data,
        prepare_inputs=bundle.prepare_inputs,
        is_convolutional=bundle.spec.is_convolutional,
    )
    metric = bundle.evaluate(result.model)
    rel_loss = relative_accuracy_loss(bundle.fp32_metric, metric)
    record = EvaluationRecord(
        task=bundle.spec.name,
        domain=bundle.spec.domain,
        size_class=bundle.size_class,
        config=config_name or recipe.name,
        fmt=fmt or recipe.activation_fmt.value,
        approach=approach or recipe.approach.value,
        fp32_metric=bundle.fp32_metric,
        quantized_metric=metric,
        relative_loss=rel_loss,
        passed=meets_accuracy_target(bundle.fp32_metric, metric, relative_loss_target),
        num_quantized_ops=result.num_quantized,
    )
    logger.info(
        "%s | %s: fp32=%.4f quant=%.4f loss=%.2f%% %s",
        record.task,
        record.config,
        record.fp32_metric,
        record.quantized_metric,
        record.relative_loss * 100,
        "PASS" if record.passed else "FAIL",
    )
    return record


def run_pass_rate_sweep(
    task_names: Optional[Sequence[str]] = None,
    configurations: Optional[Sequence[SweepConfig]] = None,
    relative_loss_target: float = DEFAULT_RELATIVE_LOSS_TARGET,
    domains: Sequence[str] = ("cv", "nlp", "audio", "recsys"),
) -> PassRateReport:
    """Run the full Table 2 sweep: every task in the suite × every configuration."""
    if task_names is None:
        task_names = [
            spec.name
            for spec in list_specs(in_pass_rate_suite=True)
            if spec.domain in domains
        ]
    configurations = list(configurations or paper_configurations())

    report = PassRateReport(relative_loss_target=relative_loss_target)
    for task_name in task_names:
        bundle = build_task(task_name)
        for config in configurations:
            recipe = config.recipe_for(bundle.spec.domain)
            record = evaluate_recipe_on_task(
                bundle,
                recipe,
                config_name=config.name,
                fmt=config.fmt,
                approach=config.approach,
                relative_loss_target=relative_loss_target,
            )
            report.add(record)
    return report
