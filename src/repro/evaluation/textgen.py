"""Text-generation quality metrics (the Table 4 / Appendix A.3 stand-in).

The paper shows qualitatively that INT8-quantized Bloom degenerates into
repetitive loops ("She saw many strange ...") while FP8 variants keep producing
coherent continuations.  With the TinyGPT grammar model we measure that
quantitatively: repetition rate, distinct-n diversity, and the log-likelihood of
the generated continuation under the ground-truth Markov grammar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.models.transformer import GPTStyleLM
from repro.utils.seeding import RngLike

__all__ = [
    "repetition_rate",
    "distinct_n",
    "grammar_log_likelihood",
    "GenerationQuality",
    "evaluate_generation_quality",
]


def repetition_rate(tokens: Sequence[int], ngram: int = 3) -> float:
    """Fraction of n-grams in the sequence that are repeats of an earlier n-gram."""
    tokens = list(tokens)
    if len(tokens) < ngram + 1:
        return 0.0
    seen = set()
    repeats = 0
    total = 0
    for i in range(len(tokens) - ngram + 1):
        gram = tuple(tokens[i : i + ngram])
        total += 1
        if gram in seen:
            repeats += 1
        seen.add(gram)
    return repeats / total


def distinct_n(tokens: Sequence[int], ngram: int = 2) -> float:
    """Number of distinct n-grams divided by the total number of n-grams (higher = more diverse)."""
    tokens = list(tokens)
    if len(tokens) < ngram:
        return 0.0
    grams = [tuple(tokens[i : i + ngram]) for i in range(len(tokens) - ngram + 1)]
    return len(set(grams)) / len(grams)


def grammar_log_likelihood(
    tokens: Sequence[int], transition_probs: np.ndarray, eps: float = 1e-9
) -> float:
    """Mean log-likelihood of consecutive token transitions under the true Markov grammar."""
    tokens = np.asarray(tokens, dtype=np.int64)
    if tokens.size < 2:
        return 0.0
    probs = transition_probs[tokens[:-1], tokens[1:]]
    return float(np.mean(np.log(probs + eps)))


@dataclass
class GenerationQuality:
    """Aggregated generation-quality metrics over a set of prompts."""

    repetition: float
    distinct2: float
    grammar_loglik: float
    num_prompts: int

    def as_dict(self) -> dict:
        return dict(self.__dict__)


def evaluate_generation_quality(
    model: GPTStyleLM,
    prompts: np.ndarray,
    transition_probs: Optional[np.ndarray] = None,
    max_new_tokens: int = 32,
    beam_size: int = 4,
    rng: RngLike = None,
    engine=None,
) -> GenerationQuality:
    """Generate continuations for each prompt and aggregate quality metrics.

    ``prompts`` is an (N, T) integer array; ``transition_probs`` is the ground
    truth grammar from :func:`repro.data.synthetic.make_language_modeling`
    (optional — the grammar likelihood is reported as NaN without it).

    Pass a running :class:`~repro.serving.engine.ServingEngine` as ``engine``
    to submit every prompt up front and let its token-level generation tier
    co-batch the decode steps across prompts (one
    :class:`~repro.serving.api.GenerationRequest` per prompt) instead of
    generating serially through ``model.generate``.
    """
    del rng  # generation is deterministic (greedy / beam search)
    prompts = np.asarray(prompts, dtype=np.int64)
    if engine is not None:
        # local import: evaluation stays importable without the serving layer
        from repro.serving.api import GenerationRequest

        request = GenerationRequest(max_new_tokens=max_new_tokens, beam_size=beam_size)
        futures = [engine.generate(prompt, request) for prompt in prompts]
        sequences = [future.result() for future in futures]
    else:
        sequences = [
            model.generate(prompt, max_new_tokens=max_new_tokens, beam_size=beam_size)
            for prompt in prompts
        ]
    reps, dist2, logliks = [], [], []
    for prompt, sequence in zip(prompts, sequences):
        continuation = sequence[len(prompt) :]
        reps.append(repetition_rate(continuation))
        dist2.append(distinct_n(continuation, 2))
        if transition_probs is not None:
            logliks.append(grammar_log_likelihood(sequence, transition_probs))
    return GenerationQuality(
        repetition=float(np.mean(reps)),
        distinct2=float(np.mean(dist2)),
        grammar_loglik=float(np.mean(logliks)) if logliks else float("nan"),
        num_prompts=len(reps),
    )
