"""Fréchet-distance image-quality proxy (the FID stand-in for Figure 6).

Real FID embeds images with an Inception-V3 network pretrained on ImageNet.
Offline we use the same mathematical construction — the Fréchet distance
between Gaussian fits of image features — but the feature extractor is a fixed,
randomly-initialised convolutional network (random projections preserve
distributional differences well enough to rank generators, which is all the
paper's Figure 6 comparison needs: FP32 < FP8 < INT8 distortion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import linalg

import repro.nn as nn
from repro.autograd.tensor import Tensor, no_grad
from repro.utils.seeding import RngLike, seeded_rng

__all__ = ["FeatureStatistics", "RandomFeatureExtractor", "frechet_distance", "fid_proxy"]


class RandomFeatureExtractor(nn.Module):
    """A small fixed random CNN used as the feature embedding for the FID proxy."""

    def __init__(self, in_channels: int = 3, feature_dim: int = 64, rng: RngLike = None) -> None:
        super().__init__()
        rng = seeded_rng(rng if rng is not None else 1234)
        self.net = nn.Sequential(
            nn.Conv2d(in_channels, 16, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(16, 32, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(32, feature_dim, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.AdaptiveAvgPool2d(1),
            nn.Flatten(),
        )
        self.eval()

    def forward(self, images: np.ndarray) -> np.ndarray:
        with no_grad():
            out = self.net(Tensor(np.asarray(images, dtype=np.float32)))
        return out.data


@dataclass
class FeatureStatistics:
    """Gaussian fit (mean, covariance) of a set of feature vectors."""

    mean: np.ndarray
    cov: np.ndarray

    @classmethod
    def from_features(cls, features: np.ndarray) -> "FeatureStatistics":
        features = np.asarray(features, dtype=np.float64)
        mean = features.mean(axis=0)
        cov = np.cov(features, rowvar=False)
        return cls(mean=mean, cov=np.atleast_2d(cov))


def frechet_distance(
    stats_a: FeatureStatistics, stats_b: FeatureStatistics, eps: float = 1e-6
) -> float:
    """Fréchet distance between two Gaussians (the FID formula)."""
    mu1, sigma1 = stats_a.mean, stats_a.cov
    mu2, sigma2 = stats_b.mean, stats_b.cov
    diff = mu1 - mu2
    offset = np.eye(sigma1.shape[0]) * eps
    covmean, _ = linalg.sqrtm((sigma1 + offset) @ (sigma2 + offset), disp=False)
    if np.iscomplexobj(covmean):
        covmean = covmean.real
    return float(diff @ diff + np.trace(sigma1 + sigma2 - 2.0 * covmean))


_default_extractor: Optional[RandomFeatureExtractor] = None


def _extractor(in_channels: int) -> RandomFeatureExtractor:
    global _default_extractor
    if _default_extractor is None or _default_extractor.net[0].in_channels != in_channels:
        _default_extractor = RandomFeatureExtractor(in_channels=in_channels)
    return _default_extractor


def fid_proxy(
    reference_images: np.ndarray,
    generated_images: np.ndarray,
    extractor: Optional[RandomFeatureExtractor] = None,
    batch_size: int = 64,
) -> float:
    """FID-style score between a reference image set and a generated image set (lower is better)."""
    reference_images = np.asarray(reference_images, dtype=np.float32)
    generated_images = np.asarray(generated_images, dtype=np.float32)
    extractor = extractor or _extractor(reference_images.shape[1])

    def embed(images: np.ndarray) -> np.ndarray:
        chunks = [
            extractor(images[start : start + batch_size])
            for start in range(0, len(images), batch_size)
        ]
        return np.concatenate(chunks, axis=0)

    stats_ref = FeatureStatistics.from_features(embed(reference_images))
    stats_gen = FeatureStatistics.from_features(embed(generated_images))
    return frechet_distance(stats_ref, stats_gen)
