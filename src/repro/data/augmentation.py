"""Training vs. inference data transforms for BatchNorm calibration (paper Figure 7).

The paper finds that using the *training* transform (random crops/flips, i.e.
higher feature diversity) for the BatchNorm-calibration pass preserves accuracy
better than the inference transform, even with fewer calibration samples.
These transforms operate on NCHW numpy batches.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["TrainingTransform", "InferenceTransform", "get_transform"]


class TrainingTransform:
    """Random shift + horizontal flip + light Gaussian noise (training-style augmentation)."""

    def __init__(self, max_shift: int = 2, flip_prob: float = 0.5, noise_std: float = 0.05) -> None:
        self.max_shift = max_shift
        self.flip_prob = flip_prob
        self.noise_std = noise_std

    def __call__(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        images = images.copy()
        n = images.shape[0]
        shifts = rng.integers(-self.max_shift, self.max_shift + 1, size=(n, 2))
        flips = rng.random(n) < self.flip_prob
        for i in range(n):
            images[i] = np.roll(images[i], shift=tuple(shifts[i]), axis=(1, 2))
            if flips[i]:
                images[i] = images[i][:, :, ::-1]
        if self.noise_std > 0:
            images = images + rng.standard_normal(images.shape).astype(np.float32) * self.noise_std
        return images.astype(np.float32)


class InferenceTransform:
    """Identity transform (inference / evaluation preprocessing)."""

    def __call__(self, images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return images


def get_transform(name: str) -> Callable[[np.ndarray, np.random.Generator], np.ndarray]:
    """Return a transform by name: ``"training"`` or ``"inference"``."""
    if name == "training":
        return TrainingTransform()
    if name == "inference":
        return InferenceTransform()
    raise ValueError(f"unknown transform {name!r}; expected 'training' or 'inference'")
