"""Synthetic datasets and data loading.

The paper evaluates on public datasets (ImageNet, GLUE, LibriSpeech, Criteo,
COCO, ...).  None of those are available offline, so this package generates
*synthetic* stand-ins with controllable difficulty: each task has a well-defined
generative process so models trained on it reach a stable FP32 accuracy, which
gives the quantization experiments a meaningful baseline to degrade from.
"""

from repro.data.synthetic import (
    ArrayDataset,
    DataLoader,
    make_classification_images,
    make_token_classification,
    make_language_modeling,
    make_tabular_ctr,
    make_segmentation,
    make_sequence_regression,
)
from repro.data.augmentation import (
    TrainingTransform,
    InferenceTransform,
    get_transform,
)

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "make_classification_images",
    "make_token_classification",
    "make_language_modeling",
    "make_tabular_ctr",
    "make_segmentation",
    "make_sequence_regression",
    "TrainingTransform",
    "InferenceTransform",
    "get_transform",
]
