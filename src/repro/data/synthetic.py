"""Synthetic dataset generators.

Each generator returns ``(inputs, targets)`` numpy arrays plus enough metadata
to build a model for the task.  The generative processes are chosen so that

* a small model trained for a handful of epochs reaches a stable, reproducible
  FP32 accuracy well above chance (so a 1% relative accuracy drop — the paper's
  pass criterion — is measurable), and
* the learned representations have the distribution properties the paper's
  analysis relies on (approximately normal weights, long-tailed activations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple

import numpy as np

from repro.utils.seeding import RngLike, seeded_rng

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "make_classification_images",
    "make_token_classification",
    "make_language_modeling",
    "make_tabular_ctr",
    "make_segmentation",
    "make_sequence_regression",
]


@dataclass
class ArrayDataset:
    """A pair of (inputs, targets) arrays with optional extra feature arrays."""

    inputs: np.ndarray
    targets: np.ndarray
    extras: Optional[dict] = None

    def __len__(self) -> int:
        return len(self.inputs)

    def __getitem__(self, idx):
        if self.extras:
            return (
                self.inputs[idx],
                self.targets[idx],
                {k: v[idx] for k, v in self.extras.items()},
            )
        return self.inputs[idx], self.targets[idx]

    def subset(self, n: int, rng: RngLike = None) -> "ArrayDataset":
        """Random subset of ``n`` samples (used to build calibration sets)."""
        rng = seeded_rng(rng)
        n = min(n, len(self))
        idx = rng.choice(len(self), size=n, replace=False)
        extras = {k: v[idx] for k, v in self.extras.items()} if self.extras else None
        return ArrayDataset(self.inputs[idx], self.targets[idx], extras)


class DataLoader:
    """Mini-batch iterator over an :class:`ArrayDataset` with optional shuffling."""

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 32,
        shuffle: bool = False,
        rng: RngLike = None,
        transform: Optional[Callable[[np.ndarray, np.random.Generator], np.ndarray]] = None,
    ) -> None:
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = seeded_rng(rng)
        self.transform = transform

    def __len__(self) -> int:
        return (len(self.dataset) + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            inputs = self.dataset.inputs[idx]
            if self.transform is not None:
                inputs = self.transform(inputs, self.rng)
            yield inputs, self.dataset.targets[idx]


# ----------------------------------------------------------------------
# computer vision
# ----------------------------------------------------------------------
def _class_templates(
    n_classes: int, channels: int, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Smooth random per-class image templates (low-frequency patterns)."""
    base = rng.standard_normal((n_classes, channels, size, size)).astype(np.float32)
    # low-pass filter by averaging neighbouring pixels a few times
    for _ in range(3):
        base = (
            base
            + np.roll(base, 1, axis=-1)
            + np.roll(base, -1, axis=-1)
            + np.roll(base, 1, axis=-2)
            + np.roll(base, -1, axis=-2)
        ) / 5.0
    base /= base.std(axis=(1, 2, 3), keepdims=True) + 1e-6
    return base


def make_classification_images(
    n_samples: int = 768,
    image_size: int = 16,
    channels: int = 3,
    n_classes: int = 8,
    noise: float = 0.9,
    rng: RngLike = None,
) -> ArrayDataset:
    """Image classification task: class template + Gaussian noise.

    Stand-in for ImageNet/CIFAR-style image classification.  ``noise`` controls
    difficulty (higher noise → lower, but still stable, FP32 accuracy).
    """
    rng = seeded_rng(rng)
    templates = _class_templates(n_classes, channels, image_size, rng)
    labels = rng.integers(0, n_classes, size=n_samples)
    images = templates[labels] + noise * rng.standard_normal(
        (n_samples, channels, image_size, image_size)
    ).astype(np.float32)
    return ArrayDataset(images.astype(np.float32), labels.astype(np.int64))


def make_segmentation(
    n_samples: int = 512,
    image_size: int = 16,
    channels: int = 3,
    noise: float = 0.6,
    rng: RngLike = None,
) -> ArrayDataset:
    """Binary segmentation task: bright elliptic blobs on a noisy background.

    Stand-in for the Carvana masking challenge used with U-Net.
    """
    rng = seeded_rng(rng)
    yy, xx = np.mgrid[0:image_size, 0:image_size]
    images = np.zeros((n_samples, channels, image_size, image_size), dtype=np.float32)
    masks = np.zeros((n_samples, image_size, image_size), dtype=np.int64)
    for i in range(n_samples):
        cx, cy = rng.uniform(4, image_size - 4, size=2)
        rx, ry = rng.uniform(2, 5, size=2)
        blob = (((xx - cx) / rx) ** 2 + ((yy - cy) / ry) ** 2) <= 1.0
        masks[i] = blob
        base = rng.standard_normal((channels, image_size, image_size)) * noise
        base += blob[None] * 2.0
        images[i] = base
    return ArrayDataset(images.astype(np.float32), masks)


# ----------------------------------------------------------------------
# NLP
# ----------------------------------------------------------------------
def make_token_classification(
    n_samples: int = 768,
    seq_len: int = 24,
    vocab_size: int = 64,
    n_classes: int = 4,
    signal_tokens_per_class: int = 4,
    signal_density: float = 0.35,
    rng: RngLike = None,
) -> ArrayDataset:
    """Sequence classification: each class has a set of "signal" tokens.

    Sequences are mostly background tokens drawn uniformly, with a fraction of
    positions replaced by tokens from the label's signal set.  Stand-in for the
    GLUE-style text classification tasks (MRPC, SST-2, CoLA, ...).
    """
    rng = seeded_rng(rng)
    signal_sets = rng.choice(vocab_size, size=(n_classes, signal_tokens_per_class), replace=False)
    labels = rng.integers(0, n_classes, size=n_samples)
    tokens = rng.integers(0, vocab_size, size=(n_samples, seq_len))
    signal_mask = rng.random((n_samples, seq_len)) < signal_density
    signal_choice = rng.integers(0, signal_tokens_per_class, size=(n_samples, seq_len))
    signal_tokens = signal_sets[labels[:, None], signal_choice]
    tokens = np.where(signal_mask, signal_tokens, tokens)
    return ArrayDataset(tokens.astype(np.int64), labels.astype(np.int64))


def make_language_modeling(
    n_samples: int = 512,
    seq_len: int = 32,
    vocab_size: int = 48,
    order: int = 1,
    temperature: float = 0.55,
    rng: RngLike = None,
) -> ArrayDataset:
    """Causal language modeling over a random (but fixed) Markov grammar.

    A sparse first-order transition matrix defines the "language"; a decoder
    model trained on samples from it achieves low perplexity, and quantization
    damage shows up as degraded next-token accuracy and repetitive generations —
    the failure mode the paper's Table 4 illustrates with Bloom.
    Targets are the next-token ids (inputs shifted by one).
    """
    rng = seeded_rng(rng)
    del order  # only first-order grammars are generated
    logits = rng.standard_normal((vocab_size, vocab_size)) / temperature
    # sparsify: each token can transition to a handful of successors
    top_k = 6
    thresh = np.sort(logits, axis=1)[:, -top_k][:, None]
    logits = np.where(logits >= thresh, logits, -np.inf)
    probs = np.exp(logits - logits.max(axis=1, keepdims=True))
    probs /= probs.sum(axis=1, keepdims=True)

    sequences = np.zeros((n_samples, seq_len + 1), dtype=np.int64)
    sequences[:, 0] = rng.integers(0, vocab_size, size=n_samples)
    for t in range(1, seq_len + 1):
        prev = sequences[:, t - 1]
        cdf = probs[prev].cumsum(axis=1)
        u = rng.random((n_samples, 1))
        sequences[:, t] = (u > cdf).sum(axis=1)
    inputs = sequences[:, :-1]
    targets = sequences[:, 1:]
    return ArrayDataset(
        inputs,
        targets,
        extras={"transition_probs": np.broadcast_to(probs, (n_samples,) + probs.shape)},
    )


# ----------------------------------------------------------------------
# recommendation / tabular
# ----------------------------------------------------------------------
def make_tabular_ctr(
    n_samples: int = 1024,
    n_dense: int = 8,
    n_sparse: int = 6,
    vocab_size: int = 50,
    rng: RngLike = None,
) -> ArrayDataset:
    """Click-through-rate prediction (DLRM stand-in for Criteo).

    Dense features are Gaussian; sparse features are categorical ids whose
    embedding-free ground-truth contribution is a fixed random per-id weight.
    The label is Bernoulli(sigmoid(linear combination)).
    """
    rng = seeded_rng(rng)
    dense = rng.standard_normal((n_samples, n_dense)).astype(np.float32)
    sparse = rng.integers(0, vocab_size, size=(n_samples, n_sparse))
    dense_w = rng.standard_normal(n_dense) * 0.8
    sparse_w = rng.standard_normal((n_sparse, vocab_size)) * 0.8
    logit = dense @ dense_w + sparse_w[np.arange(n_sparse)[None, :], sparse].sum(axis=1)
    prob = 1.0 / (1.0 + np.exp(-logit))
    labels = (rng.random(n_samples) < prob).astype(np.float32)
    # dense and categorical-id features are packed into one float array so the
    # generic DataLoader / calibration machinery can treat the task like any
    # other; DLRMStyle splits them again internally.
    inputs = np.concatenate([dense, sparse.astype(np.float32)], axis=1)
    return ArrayDataset(inputs.astype(np.float32), labels)


# ----------------------------------------------------------------------
# audio / speech
# ----------------------------------------------------------------------
def make_sequence_regression(
    n_samples: int = 512,
    seq_len: int = 32,
    n_features: int = 16,
    n_classes: int = 6,
    noise: float = 0.8,
    rng: RngLike = None,
) -> ArrayDataset:
    """Frame-feature sequence classification (wav2vec/HuBERT stand-in).

    Each class corresponds to a sinusoidal pattern across time in a random
    subspace of the frame features, mimicking phoneme-like spectro-temporal
    patterns; the model sees (batch, time, features) float inputs.
    """
    rng = seeded_rng(rng)
    t = np.linspace(0, 2 * np.pi, seq_len)
    class_freq = rng.uniform(1.0, 4.0, size=n_classes)
    class_dirs = rng.standard_normal((n_classes, n_features)).astype(np.float32)
    class_dirs /= np.linalg.norm(class_dirs, axis=1, keepdims=True)
    labels = rng.integers(0, n_classes, size=n_samples)
    signal = np.sin(class_freq[labels][:, None] * t)[:, :, None] * class_dirs[labels][:, None, :]
    data = signal + noise * rng.standard_normal((n_samples, seq_len, n_features))
    return ArrayDataset(data.astype(np.float32), labels.astype(np.int64))
