"""Stochastic gradient descent with momentum and optional weight decay."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.module import Parameter

__all__ = ["SGD"]


class SGD:
    """Classic SGD: ``v = mu * v + g``, ``p -= lr * v``."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        self.params: List[Parameter] = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            v *= self.momentum
            v += grad
            p.data -= self.lr * v
