"""Optimizers used to train the synthetic model zoo (SGD with momentum, Adam)."""

from repro.optim.sgd import SGD
from repro.optim.adam import Adam

__all__ = ["SGD", "Adam"]
