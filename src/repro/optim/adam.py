"""Adam optimizer (used for the transformer-style models in the zoo)."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Adam"]


class Adam:
    """Adam with bias correction and optional decoupled weight decay (AdamW style)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        self.params: List[Parameter] = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad**2
            m_hat = m / (1 - b1**self._t)
            v_hat = v / (1 - b2**self._t)
            update = self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.lr * self.weight_decay * p.data
            p.data -= update
