"""Normalisation layers: BatchNorm1d/2d, LayerNorm, GroupNorm.

BatchNorm keeps running statistics in registered buffers so that the paper's
*BatchNorm Calibration* step (recompute mean/variance on augmented calibration
data after quantization, Section 3 / Figure 7) can refresh them without
touching the learnable affine parameters.  LayerNorm is the operator whose
outlier-amplifying behaviour motivates FP8 for NLP models; it is quantized by
the *extended* scheme.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.module import Module, Parameter

__all__ = ["BatchNorm1d", "BatchNorm2d", "LayerNorm", "GroupNorm"]


class _BatchNorm(Module):
    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))
        # When True, forward() updates running statistics even in eval mode —
        # this is the switch BatchNorm calibration flips.  During calibration a
        # cumulative (1/n) average is used so the result does not depend on the
        # momentum hyper-parameter or the batch order.
        self.calibrating = False
        self._calibration_batches = 0

    def reset_running_stats(self) -> None:
        """Reset running statistics (used before BatchNorm calibration)."""
        self.running_mean[...] = 0.0
        self.running_var[...] = 1.0
        self._calibration_batches = 0

    def forward(self, x: Tensor) -> Tensor:
        update_stats = self.training or self.calibrating
        momentum = self.momentum
        if self.calibrating and not self.training:
            self._calibration_batches += 1
            momentum = 1.0 / self._calibration_batches
        return F.batch_norm(
            x,
            self.weight,
            self.bias,
            self.running_mean,
            self.running_var,
            training=update_stats,
            momentum=momentum,
            eps=self.eps,
        )

    def extra_repr(self) -> str:
        return f"num_features={self.num_features}, eps={self.eps}, momentum={self.momentum}"


class BatchNorm1d(_BatchNorm):
    """Batch normalisation over (N, C) inputs."""


class BatchNorm2d(_BatchNorm):
    """Batch normalisation over (N, C, H, W) inputs."""


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape, dtype=np.float32))
        self.bias = Parameter(np.zeros(normalized_shape, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)

    def extra_repr(self) -> str:
        return f"normalized_shape={self.normalized_shape}, eps={self.eps}"


class GroupNorm(Module):
    """Group normalisation over channel groups of NCHW inputs (used by the tiny U-Net)."""

    def __init__(self, num_groups: int, num_channels: int, eps: float = 1e-5) -> None:
        super().__init__()
        if num_channels % num_groups:
            raise ValueError(
                f"num_channels {num_channels} not divisible by num_groups {num_groups}"
            )
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.weight = Parameter(np.ones(num_channels, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_channels, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        g = self.num_groups
        grouped = x.reshape(n, g, c // g * h * w)
        mean = grouped.mean(axis=-1, keepdims=True)
        var = grouped.var(axis=-1, keepdims=True)
        normed = (grouped - mean) / (var + self.eps).sqrt()
        normed = normed.reshape(n, c, h, w)
        return normed * self.weight.reshape(1, c, 1, 1) + self.bias.reshape(1, c, 1, 1)

    def extra_repr(self) -> str:
        return f"num_groups={self.num_groups}, num_channels={self.num_channels}"
