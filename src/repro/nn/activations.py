"""Activation modules."""

from __future__ import annotations

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.module import Module

__all__ = ["ReLU", "GELU", "SiLU", "Sigmoid", "Tanh", "Softmax"]


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    """Gaussian error linear unit (tanh approximation)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class SiLU(Module):
    """Sigmoid linear unit (a.k.a. swish), used by EfficientNet-style models."""

    def forward(self, x: Tensor) -> Tensor:
        return x.silu()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Softmax(Module):
    def __init__(self, axis: int = -1) -> None:
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return F.softmax(x, axis=self.axis)
