"""Core compute and memory layers: Linear, Conv2d, Embedding(JBag), Dropout, Flatten.

These are the operators the paper's *standard* quantization scheme targets
(Convolution, Linear, Embedding).  Each module exposes ``weight`` (and
optionally ``bias``) in the layout the quantizer expects: output channels on
axis 0, so per-channel weight scaling reduces over every remaining axis.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.utils.seeding import RngLike, seeded_rng

__all__ = ["Linear", "Conv2d", "Embedding", "EmbeddingBag", "Dropout", "Flatten", "Identity"]


class Linear(Module):
    """Fully-connected layer ``y = x W^T + b`` with weight shape (out_features, in_features)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        rng = seeded_rng(rng)
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), rng=rng, gain=1.0)
        )
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def extra_repr(self) -> str:
        return f"in_features={self.in_features}, out_features={self.out_features}"


class Conv2d(Module):
    """2D convolution over NCHW inputs with weight shape (out, in/groups, kh, kw)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: Union[int, Tuple[int, int]],
        stride: Union[int, Tuple[int, int]] = 1,
        padding: Union[int, Tuple[int, int]] = 0,
        groups: int = 1,
        bias: bool = True,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        if isinstance(kernel_size, int):
            kernel_size = (kernel_size, kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        rng = seeded_rng(rng)
        weight_shape = (out_channels, in_channels // groups, *kernel_size)
        self.weight = Parameter(init.kaiming_normal(weight_shape, rng=rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x, self.weight, self.bias, stride=self.stride, padding=self.padding, groups=self.groups
        )

    def extra_repr(self) -> str:
        return (
            f"{self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}, groups={self.groups}"
        )


class Embedding(Module):
    """Token embedding table of shape (num_embeddings, embedding_dim)."""

    def __init__(self, num_embeddings: int, embedding_dim: int, rng: RngLike = None) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        rng = seeded_rng(rng)
        self.weight = Parameter(init.normal_((num_embeddings, embedding_dim), std=0.02, rng=rng))

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding(self.weight, indices)

    def extra_repr(self) -> str:
        return f"num_embeddings={self.num_embeddings}, embedding_dim={self.embedding_dim}"


class EmbeddingBag(Module):
    """Embedding lookup followed by a mean/sum reduction over each bag (DLRM-style)."""

    def __init__(
        self, num_embeddings: int, embedding_dim: int, mode: str = "mean", rng: RngLike = None
    ) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.mode = mode
        rng = seeded_rng(rng)
        self.weight = Parameter(init.normal_((num_embeddings, embedding_dim), std=0.02, rng=rng))

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding_bag(self.weight, indices, mode=self.mode)

    def extra_repr(self) -> str:
        return f"num_embeddings={self.num_embeddings}, embedding_dim={self.embedding_dim}, mode={self.mode}"


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.1, rng: RngLike = None) -> None:
        super().__init__()
        self.p = p
        self._rng = seeded_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)

    def extra_repr(self) -> str:
        return f"p={self.p}"


class Flatten(Module):
    """Flatten all dimensions after ``start_dim``."""

    def __init__(self, start_dim: int = 1) -> None:
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(self.start_dim)


class Identity(Module):
    """No-op module, used as a placeholder when operators are removed/fallen back."""

    def forward(self, x: Tensor) -> Tensor:
        return x
