"""Transformer attention building blocks.

``MultiHeadSelfAttention`` exposes the two batched matrix multiplications
(QK^T and probs·V) as explicit :class:`BatchMatMul` submodules so that the
*extended* quantization scheme can target them (the paper's "BMM, MM" operator
coverage in Figure 9).

Incremental decode
------------------
:class:`KVCache` gives one attention layer a per-row key/value cache so that
autoregressive decoding consumes **one new token per step** instead of
re-running the full O(T²) prefix.  ``forward(..., cache=...)`` appends the new
tokens' K/V to the cache and attends over the whole cached prefix; rows of the
cache belong to independent sequences (or beams), so a serving tier can batch
decode steps of many in-flight requests into one forward call
(:mod:`repro.serving.generation`).

The cache stores K/V either as float32 (bit-faithful to full recompute) or as
FP8 packed codes + per-(row, head, token) scales via the same fused kernels
that back :class:`~repro.fp8.quantize.QuantizedTensor` — one byte per element
at rest, decoded on attention.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.utils.seeding import RngLike, seeded_rng

__all__ = ["BatchMatMul", "KVCache", "MultiHeadSelfAttention"]


class KVCache:
    """Per-layer key/value cache for a batch of independently-decoding rows.

    Parameters
    ----------
    rows:
        Number of row slots (independent sequences or beams).
    num_heads, head_dim:
        Attention geometry of the owning layer.
    capacity:
        Maximum number of cached tokens per row (typically the model's
        ``max_seq_len``).  Appending past it raises.
    storage:
        ``"float32"`` for exact storage, or an FP8 format name (``"E4M3"``,
        ``"E5M2"``, ...) to keep K/V as packed uint8 codes plus one scale per
        (row, head, token) — quantized through the fused
        :func:`repro.fp8.kernels.fp8_quantize_channelwise` kernel, so a cached
        token costs ``head_dim + 8`` bytes per head instead of
        ``4 * head_dim``.

    Rows are addressed explicitly: every mutator takes a ``rows`` index array
    so a pool can slice one big cache across many requests.  ``lengths`` holds
    the number of valid cached tokens per row; storage beyond a row's length
    is stale and masked out by the attention math.
    """

    def __init__(
        self,
        rows: int,
        num_heads: int,
        head_dim: int,
        capacity: int,
        storage: str = "float32",
    ) -> None:
        if rows < 1 or num_heads < 1 or head_dim < 1 or capacity < 1:
            raise ValueError("rows, num_heads, head_dim and capacity must all be >= 1")
        self.rows = int(rows)
        self.num_heads = int(num_heads)
        self.head_dim = int(head_dim)
        self.capacity = int(capacity)
        self.lengths = np.zeros(self.rows, dtype=np.int64)
        shape = (self.rows, self.num_heads, self.capacity, self.head_dim)
        if isinstance(storage, str) and storage.lower() == "float32":
            self.fmt = None
            self.storage = "float32"
            self._k = np.zeros(shape, dtype=np.float32)
            self._v = np.zeros(shape, dtype=np.float32)
        else:
            # lazy import: the float path keeps repro.nn free of the fp8 package
            from repro.fp8.formats import get_format

            self.fmt = storage if not isinstance(storage, str) else get_format(storage)
            self.storage = self.fmt.name
            scale_shape = shape[:3] + (1,)
            self._k_codes = np.zeros(shape, dtype=np.uint8)
            self._v_codes = np.zeros(shape, dtype=np.uint8)
            # scales default to 1 so stale storage always decodes to finite
            # values (masked to zero weight, but NaN/inf would still poison
            # the probs @ V product via 0 * inf)
            self._k_scale = np.ones(scale_shape, dtype=np.float64)
            self._v_scale = np.ones(scale_shape, dtype=np.float64)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _resolve_rows(self, rows) -> np.ndarray:
        if rows is None:
            return np.arange(self.rows)
        rows = np.asarray(rows, dtype=np.int64).reshape(-1)
        if rows.size and (rows.min() < 0 or rows.max() >= self.rows):
            raise IndexError(f"cache row index out of range for {self.rows} rows")
        return rows

    def append(
        self,
        k: np.ndarray,
        v: np.ndarray,
        rows=None,
        new_lens: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Append up to ``S`` new tokens' K/V per row; returns pre-append lengths.

        ``k``/``v`` are ``(B, H, S, D)`` float32 blocks; row ``i`` takes its
        first ``new_lens[i]`` tokens (all ``S`` when ``new_lens`` is None), so
        prefills of different lengths can ride one padded batch.
        """
        k = np.asarray(k, dtype=np.float32)
        v = np.asarray(v, dtype=np.float32)
        rows = self._resolve_rows(rows)
        if k.ndim != 4 or k.shape[0] != rows.size:
            raise ValueError(f"expected k of shape ({rows.size}, H, S, D), got {k.shape}")
        if new_lens is None:
            new_lens = np.full(rows.size, k.shape[2], dtype=np.int64)
        else:
            new_lens = np.asarray(new_lens, dtype=np.int64).reshape(-1)
        starts = self.lengths[rows].copy()
        if np.any(starts + new_lens > self.capacity):
            worst = int(np.max(starts + new_lens))
            raise RuntimeError(
                f"KV cache overflow: appending would need {worst} cached tokens "
                f"but capacity is {self.capacity}"
            )
        for i, row in enumerate(rows):
            n = int(new_lens[i])
            if n == 0:
                continue
            start = int(starts[i])
            if self.fmt is None:
                self._k[row, :, start : start + n] = k[i, :, :n]
                self._v[row, :, start : start + n] = v[i, :, :n]
            else:
                from repro.fp8.kernels import fp8_quantize_channelwise

                k_codes, k_scale = fp8_quantize_channelwise(k[i, :, :n], self.fmt, axis=(0, 1))
                v_codes, v_scale = fp8_quantize_channelwise(v[i, :, :n], self.fmt, axis=(0, 1))
                self._k_codes[row, :, start : start + n] = k_codes
                self._v_codes[row, :, start : start + n] = v_codes
                self._k_scale[row, :, start : start + n] = k_scale
                self._v_scale[row, :, start : start + n] = v_scale
        self.lengths[rows] = starts + new_lens
        return starts

    def dense(self, rows=None) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Materialise ``(K, V, lengths)`` for ``rows``, trimmed to their max length.

        Returns float32 ``(B, H, T, D)`` arrays where ``T`` is the longest
        selected row; shorter rows carry stale-but-finite storage beyond their
        own length, which callers mask out.
        """
        rows = self._resolve_rows(rows)
        lens = self.lengths[rows].copy()
        t = int(lens.max()) if lens.size else 0
        if self.fmt is None:
            return self._k[rows, :, :t], self._v[rows, :, :t], lens
        from repro.fp8.kernels import fp8_dequantize_channelwise

        k = fp8_dequantize_channelwise(
            self._k_codes[rows, :, :t], self.fmt, self._k_scale[rows, :, :t]
        )
        v = fp8_dequantize_channelwise(
            self._v_codes[rows, :, :t], self.fmt, self._v_scale[rows, :, :t]
        )
        return k, v, lens

    # ------------------------------------------------------------------
    # row management (pooling / beam search)
    # ------------------------------------------------------------------
    def _arrays(self) -> Sequence[np.ndarray]:
        if self.fmt is None:
            return (self._k, self._v)
        return (self._k_codes, self._v_codes, self._k_scale, self._v_scale)

    def copy_rows(self, src, dst) -> None:
        """Copy whole rows ``src`` onto rows ``dst`` (beam expansion)."""
        src = self._resolve_rows(src)
        dst = self._resolve_rows(dst)
        for array in self._arrays():
            array[dst] = array[src]
        self.lengths[dst] = self.lengths[src]

    def permute_rows(self, rows, parents) -> None:
        """Reassign ``rows[i] <- rows[parents[i]]`` (beam reordering).

        The gather is materialised before the scatter, so overlapping
        source/destination rows are safe.
        """
        rows = self._resolve_rows(rows)
        parents = np.asarray(parents, dtype=np.int64).reshape(-1)
        src = rows[parents]
        for array in self._arrays():
            array[rows] = array[src]
        self.lengths[rows] = self.lengths[src]

    def reset_rows(self, rows=None) -> None:
        """Mark rows empty (their storage is reused on the next append)."""
        self.lengths[self._resolve_rows(rows)] = 0

    @property
    def nbytes(self) -> int:
        """Bytes held by the cache storage (all rows, full capacity)."""
        return int(sum(array.nbytes for array in self._arrays()) + self.lengths.nbytes)


class BatchMatMul(Module):
    """Batched matrix multiplication as a module (quantizable operator)."""

    def forward(self, a: Tensor, b: Tensor) -> Tensor:
        return F.matmul(a, b)


class MultiHeadSelfAttention(Module):
    """Standard multi-head self attention with optional local (Longformer-style) masking.

    Parameters
    ----------
    embed_dim:
        Model width.
    num_heads:
        Number of attention heads (must divide ``embed_dim``).
    local_window:
        If given, attention is restricted to a sliding window of this radius
        around each position — the cheap stand-in for Longformer-style sparse
        attention in the model zoo.
    """

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        dropout: float = 0.0,
        local_window: Optional[int] = None,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        if embed_dim % num_heads:
            raise ValueError(f"embed_dim {embed_dim} not divisible by num_heads {num_heads}")
        rng = seeded_rng(rng)
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.local_window = local_window
        self.q_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.k_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.v_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.out_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.attn_matmul = BatchMatMul()
        self.value_matmul = BatchMatMul()
        self.dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        b, t, _ = x.shape
        return x.reshape(b, t, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        b, h, t, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, t, h * d)

    def _mask(self, seq_len: int, causal: bool) -> Optional[np.ndarray]:
        mask = np.zeros((seq_len, seq_len), dtype=np.float32)
        if causal:
            mask += np.triu(np.full((seq_len, seq_len), -1e9, dtype=np.float32), k=1)
        if self.local_window is not None:
            idx = np.arange(seq_len)
            outside = np.abs(idx[:, None] - idx[None, :]) > self.local_window
            mask += np.where(outside, -1e9, 0.0).astype(np.float32)
        if not causal and self.local_window is None:
            return None
        return mask

    def forward(
        self,
        x: Tensor,
        causal: bool = False,
        cache: Optional[KVCache] = None,
        rows=None,
        new_lens: Optional[np.ndarray] = None,
    ) -> Tensor:
        if cache is not None:
            return self._forward_cached(x, cache, rows=rows, new_lens=new_lens)
        b, t, _ = x.shape
        q = self._split_heads(self.q_proj(x))
        k = self._split_heads(self.k_proj(x))
        v = self._split_heads(self.v_proj(x))

        scores = self.attn_matmul(q, k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        mask = self._mask(t, causal)
        if mask is not None:
            scores = scores + Tensor(mask.reshape(1, 1, t, t))
        probs = F.softmax(scores, axis=-1)
        probs = self.dropout(probs)
        context = self.value_matmul(probs, v)
        return self.out_proj(self._merge_heads(context))

    def _forward_cached(
        self,
        x: Tensor,
        cache: KVCache,
        rows=None,
        new_lens: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Incremental causal attention: append the new tokens, attend over the cache.

        ``x`` holds ``S`` new tokens per row (padded; row ``i`` owns the first
        ``new_lens[i]``).  The step is always causal: new token ``p`` of row
        ``i`` attends to every cached token plus new tokens ``<= p``.  Outputs
        at padded positions are garbage and must be discarded by the caller.
        """
        if self.local_window is not None:
            raise RuntimeError("KV-cache decoding does not support local_window attention")
        b, s, _ = x.shape
        q = self._split_heads(self.q_proj(x))
        k = self._split_heads(self.k_proj(x))
        v = self._split_heads(self.v_proj(x))

        starts = cache.append(k.data, v.data, rows=rows, new_lens=new_lens)
        keys, values, totals = cache.dense(rows)
        t = keys.shape[2]

        scores = self.attn_matmul(q, Tensor(keys).transpose(0, 1, 3, 2)) * (
            1.0 / np.sqrt(self.head_dim)
        )
        # additive mask (B, 1, S, T): new token p (absolute position starts+p)
        # sees cached positions j <= starts+p that are valid for its own row
        j = np.arange(t).reshape(1, 1, t)
        positions = starts[:, None] + np.arange(s)[None, :]
        allowed = (j <= positions[:, :, None]) & (j < totals[:, None, None])
        mask = np.where(allowed, np.float32(0.0), np.float32(-1e9))
        scores = scores + Tensor(mask.reshape(b, 1, s, t).astype(np.float32))
        probs = F.softmax(scores, axis=-1)
        probs = self.dropout(probs)
        context = self.value_matmul(probs, Tensor(values))
        return self.out_proj(self._merge_heads(context))

    def extra_repr(self) -> str:
        return f"embed_dim={self.embed_dim}, num_heads={self.num_heads}, local_window={self.local_window}"
