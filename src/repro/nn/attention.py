"""Transformer attention building blocks.

``MultiHeadSelfAttention`` exposes the two batched matrix multiplications
(QK^T and probs·V) as explicit :class:`BatchMatMul` submodules so that the
*extended* quantization scheme can target them (the paper's "BMM, MM" operator
coverage in Figure 9).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.utils.seeding import RngLike, seeded_rng

__all__ = ["BatchMatMul", "MultiHeadSelfAttention"]


class BatchMatMul(Module):
    """Batched matrix multiplication as a module (quantizable operator)."""

    def forward(self, a: Tensor, b: Tensor) -> Tensor:
        return F.matmul(a, b)


class MultiHeadSelfAttention(Module):
    """Standard multi-head self attention with optional local (Longformer-style) masking.

    Parameters
    ----------
    embed_dim:
        Model width.
    num_heads:
        Number of attention heads (must divide ``embed_dim``).
    local_window:
        If given, attention is restricted to a sliding window of this radius
        around each position — the cheap stand-in for Longformer-style sparse
        attention in the model zoo.
    """

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        dropout: float = 0.0,
        local_window: Optional[int] = None,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        if embed_dim % num_heads:
            raise ValueError(f"embed_dim {embed_dim} not divisible by num_heads {num_heads}")
        rng = seeded_rng(rng)
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.local_window = local_window
        self.q_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.k_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.v_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.out_proj = Linear(embed_dim, embed_dim, rng=rng)
        self.attn_matmul = BatchMatMul()
        self.value_matmul = BatchMatMul()
        self.dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        b, t, _ = x.shape
        return x.reshape(b, t, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        b, h, t, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, t, h * d)

    def _mask(self, seq_len: int, causal: bool) -> Optional[np.ndarray]:
        mask = np.zeros((seq_len, seq_len), dtype=np.float32)
        if causal:
            mask += np.triu(np.full((seq_len, seq_len), -1e9, dtype=np.float32), k=1)
        if self.local_window is not None:
            idx = np.arange(seq_len)
            outside = np.abs(idx[:, None] - idx[None, :]) > self.local_window
            mask += np.where(outside, -1e9, 0.0).astype(np.float32)
        if not causal and self.local_window is None:
            return None
        return mask

    def forward(self, x: Tensor, causal: bool = False) -> Tensor:
        b, t, _ = x.shape
        q = self._split_heads(self.q_proj(x))
        k = self._split_heads(self.k_proj(x))
        v = self._split_heads(self.v_proj(x))

        scores = self.attn_matmul(q, k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        mask = self._mask(t, causal)
        if mask is not None:
            scores = scores + Tensor(mask.reshape(1, 1, t, t))
        probs = F.softmax(scores, axis=-1)
        probs = self.dropout(probs)
        context = self.value_matmul(probs, v)
        return self.out_proj(self._merge_heads(context))

    def extra_repr(self) -> str:
        return f"embed_dim={self.embed_dim}, num_heads={self.num_heads}, local_window={self.local_window}"
