"""A minimal neural-network module library (the PyTorch ``nn`` stand-in).

Modules own :class:`~repro.nn.module.Parameter` tensors, support named
traversal, submodule replacement (used by the quantization converter to swap
float modules for quantized ones), train/eval modes and state dicts.
"""

from repro.nn.module import Module, Parameter
from repro.nn.containers import Sequential, ModuleList
from repro.nn.layers import Linear, Conv2d, Embedding, EmbeddingBag, Dropout, Flatten, Identity
from repro.nn.norm import BatchNorm1d, BatchNorm2d, LayerNorm, GroupNorm
from repro.nn.activations import ReLU, GELU, SiLU, Sigmoid, Tanh, Softmax
from repro.nn.pooling import MaxPool2d, AvgPool2d, AdaptiveAvgPool2d
from repro.nn.attention import KVCache, MultiHeadSelfAttention, BatchMatMul
from repro.nn.elementwise import Add, Mul
from repro.nn import functional, init

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Linear",
    "Conv2d",
    "Embedding",
    "EmbeddingBag",
    "Dropout",
    "Flatten",
    "Identity",
    "BatchNorm1d",
    "BatchNorm2d",
    "LayerNorm",
    "GroupNorm",
    "ReLU",
    "GELU",
    "SiLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "KVCache",
    "MultiHeadSelfAttention",
    "BatchMatMul",
    "Add",
    "Mul",
    "functional",
    "init",
]
