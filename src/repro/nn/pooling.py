"""Pooling modules."""

from __future__ import annotations

from typing import Optional

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.module import Module

__all__ = ["MaxPool2d", "AvgPool2d", "AdaptiveAvgPool2d"]


class MaxPool2d(Module):
    """Max pooling over square windows."""

    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}"


class AvgPool2d(Module):
    """Average pooling over square windows."""

    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}"


class AdaptiveAvgPool2d(Module):
    """Global average pooling (adaptive with output size 1)."""

    def __init__(self, output_size: int = 1) -> None:
        super().__init__()
        self.output_size = output_size

    def forward(self, x: Tensor) -> Tensor:
        return F.adaptive_avg_pool2d(x, self.output_size)
