"""Container modules: Sequential and ModuleList."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.nn.module import Module

__all__ = ["Sequential", "ModuleList"]


class Sequential(Module):
    """Run child modules in order, feeding each output into the next module."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for idx, module in enumerate(modules):
            self.add_module(str(idx), module)

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, idx: int) -> Module:
        return list(self._modules.values())[idx]

    def append(self, module: Module) -> "Sequential":
        self.add_module(str(len(self._modules)), module)
        return self


class ModuleList(Module):
    """A list of modules that is registered for traversal but has no forward."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        for idx, module in enumerate(modules):
            self.add_module(str(idx), module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, idx: int) -> Module:
        return list(self._modules.values())[idx]

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._modules)), module)
        return self

    def forward(self, *args, **kwargs):  # pragma: no cover - defensive
        raise RuntimeError("ModuleList is not callable; iterate over its children instead")
