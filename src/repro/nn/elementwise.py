"""Element-wise Add / Mul as modules.

The paper's extended scheme quantizes memory-bound element-wise operators
(residual additions, gating multiplications).  Modelling them as modules lets
the converter wrap them with input quantizers like any other operator.
"""

from __future__ import annotations

from repro.autograd.tensor import Tensor
from repro.nn.module import Module

__all__ = ["Add", "Mul"]


class Add(Module):
    """Element-wise addition, typically a residual connection."""

    def forward(self, a: Tensor, b: Tensor) -> Tensor:
        return a + b


class Mul(Module):
    """Element-wise multiplication, typically a gating operation."""

    def forward(self, a: Tensor, b: Tensor) -> Tensor:
        return a * b
