"""Weight initialisation helpers (Kaiming / Xavier / normal / uniform)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.seeding import RngLike, seeded_rng

__all__ = ["kaiming_uniform", "kaiming_normal", "xavier_uniform", "normal_", "zeros", "ones"]


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 2:
        fan_out, fan_in = shape
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    elif len(shape) == 1:
        fan_in = fan_out = shape[0]
    else:
        fan_in = int(np.prod(shape[1:]))
        fan_out = shape[0]
    return fan_in, fan_out


def kaiming_uniform(
    shape: Tuple[int, ...], rng: RngLike = None, gain: float = np.sqrt(2.0)
) -> np.ndarray:
    """He/Kaiming uniform initialisation for ReLU networks."""
    rng = seeded_rng(rng)
    fan_in, _ = _fan_in_out(shape)
    bound = gain * np.sqrt(3.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def kaiming_normal(
    shape: Tuple[int, ...], rng: RngLike = None, gain: float = np.sqrt(2.0)
) -> np.ndarray:
    """He/Kaiming normal initialisation."""
    rng = seeded_rng(rng)
    fan_in, _ = _fan_in_out(shape)
    std = gain / np.sqrt(max(fan_in, 1))
    return (rng.standard_normal(shape) * std).astype(np.float32)


def xavier_uniform(shape: Tuple[int, ...], rng: RngLike = None, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation (used for attention / embeddings)."""
    rng = seeded_rng(rng)
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def normal_(shape: Tuple[int, ...], std: float = 0.02, rng: RngLike = None) -> np.ndarray:
    """Truncated-free normal initialisation with the given std (transformer default)."""
    rng = seeded_rng(rng)
    return (rng.standard_normal(shape) * std).astype(np.float32)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
