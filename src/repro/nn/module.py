"""Module base class and Parameter container.

The quantization framework relies on four capabilities of :class:`Module`:

* ``named_modules()`` — walk the module graph to decide which operators to
  quantize (standard vs extended scheme, first/last operator detection);
* ``get_submodule`` / ``set_submodule`` — swap a float module for its
  quantized counterpart in place;
* ``state_dict`` / ``load_state_dict`` — snapshot and restore trained weights
  (used by the tuning loop to try recipes from the same starting point);
* ``train()`` / ``eval()`` — BatchNorm calibration runs the model in a special
  statistics-update mode without touching learnable parameters.

Tracing instrumentation
-----------------------
:mod:`repro.graph` compiles a forward into a replayable plan by *tracing* it
once.  This module carries the minimal hooks that make that possible without
:mod:`repro.nn` depending on the graph package:

* a per-thread **tracing context** — while a tracer is pushed,
  :meth:`Module.__call__` offers every call to it before (or instead of)
  executing eagerly;
* a **leaf-op registry** (:func:`register_trace_leaf`) mapping module types to
  emitter callables — a registered module is recorded as one graph node
  instead of being traced through;
* two global **epoch counters** used for plan-cache invalidation:
  :func:`state_epoch` bumps whenever module state that a compiled plan may
  have baked in changes (``load_state_dict``, submodule replacement,
  quantization lifecycle transitions), and :func:`hook_epoch` bumps whenever
  a forward hook is registered or removed anywhere.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "EXTRA_STATE_KEY",
    "active_tracer",
    "register_trace_leaf",
    "trace_leaf_emitter",
    "hook_epoch",
    "bump_hook_epoch",
    "state_epoch",
    "bump_state_epoch",
    "plan_dispatch_suspended",
    "suspend_plan_dispatch",
]

#: state-dict key suffix under which a module's :meth:`Module.get_extra_state`
#: payload is stored (``<module-path>._extra_state``)
EXTRA_STATE_KEY = "_extra_state"


# ----------------------------------------------------------------------
# tracing context (per thread)
# ----------------------------------------------------------------------
_DISPATCH_STATE = threading.local()


def active_tracer():
    """The tracer currently recording on this thread, or ``None``."""
    return getattr(_DISPATCH_STATE, "tracer", None)


def _set_active_tracer(tracer) -> None:
    """Install/clear the thread's tracer (used by :mod:`repro.graph.tracer`)."""
    _DISPATCH_STATE.tracer = tracer


def plan_dispatch_suspended() -> bool:
    """Whether compiled-plan dispatch is disabled on this thread."""
    return getattr(_DISPATCH_STATE, "plan_suspended", False)


@contextmanager
def suspend_plan_dispatch():
    """Run eagerly even on a model with a plan cache attached (per thread).

    The plan cache itself uses this while running the eager fallback (so the
    fallback does not re-enter the dispatcher), and callers can use it to
    force a genuinely eager forward for comparison against plan replay.
    """
    prev = plan_dispatch_suspended()
    _DISPATCH_STATE.plan_suspended = True
    try:
        yield
    finally:
        _DISPATCH_STATE.plan_suspended = prev


# ----------------------------------------------------------------------
# leaf-op registry
# ----------------------------------------------------------------------
#: module type -> emitter callable ``emitter(tracer, module, args, kwargs)``;
#: populated by :mod:`repro.graph.tracer` (and extensible by user code)
TRACE_LEAF_EMITTERS: Dict[type, Callable] = {}


def register_trace_leaf(module_type: type):
    """Decorator registering an op-node emitter for ``module_type``.

    The emitter is called as ``emitter(tracer, module, args, kwargs)`` with
    tracing suspended and must return the op's output value after recording
    the node(s) that reproduce it (see :class:`repro.graph.tracer.Tracer`).
    Subclasses inherit the nearest registered ancestor's emitter unless they
    register their own.
    """

    def _register(emitter: Callable) -> Callable:
        TRACE_LEAF_EMITTERS[module_type] = emitter
        return emitter

    return _register


def trace_leaf_emitter(module) -> Optional[Callable]:
    """Resolve the registered emitter for ``module`` (walking the MRO)."""
    for cls in type(module).__mro__:
        emitter = TRACE_LEAF_EMITTERS.get(cls)
        if emitter is not None:
            return emitter
    return None


# ----------------------------------------------------------------------
# invalidation epochs
# ----------------------------------------------------------------------
_EPOCH_LOCK = threading.Lock()
_HOOK_EPOCH = 0
_STATE_EPOCH = 0


def hook_epoch() -> int:
    """Monotonic counter bumped whenever a forward hook is added or removed."""
    return _HOOK_EPOCH


def bump_hook_epoch() -> None:
    global _HOOK_EPOCH
    with _EPOCH_LOCK:
        _HOOK_EPOCH += 1


def state_epoch() -> int:
    """Monotonic counter bumped whenever plan-relevant module state changes.

    Deliberately global and coarse: any ``load_state_dict``, submodule
    replacement or quantization lifecycle transition (convert / restore /
    deploy / serving-mode change) anywhere in the process invalidates every
    cached plan.  Re-tracing is cheap relative to the traffic a plan serves,
    and a global integer keeps the per-forward validity check O(1).
    """
    return _STATE_EPOCH


def bump_state_epoch() -> None:
    global _STATE_EPOCH
    with _EPOCH_LOCK:
        _STATE_EPOCH += 1


class Parameter(Tensor):
    """A Tensor that is registered as a learnable parameter of a Module."""

    def __init__(self, data, requires_grad: bool = True, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=requires_grad, name=name)


class HookHandle:
    """Removable handle returned by :meth:`Module.register_forward_hook`."""

    _counter = 0

    def __init__(self, registry) -> None:
        HookHandle._counter += 1
        self.hook_id = HookHandle._counter
        self._registry = registry

    def remove(self) -> None:
        if self._registry.pop(self.hook_id, None) is not None:
            # removal can make a previously hook-blocked module traceable
            # again — let plan caches revalidate (see register_forward_hook)
            bump_hook_epoch()


class Module:
    """Base class for all neural network modules."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._forward_hooks: "OrderedDict[int, object]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # attribute plumbing
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-learnable persistent array (e.g. BatchNorm running stats)."""
        self._buffers[name] = np.asarray(value, dtype=np.float32)
        object.__setattr__(self, name, self._buffers[name])

    def register_parameter(self, name: str, param: Parameter) -> None:
        self._parameters[name] = param
        object.__setattr__(self, name, param)

    def add_module(self, name: str, module: "Module") -> None:
        # replacing a submodule changes the structure a compiled plan traced
        # through (quantize wrappers are swapped in via set_submodule)
        bump_state_epoch()
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    def named_children(self) -> Iterator[Tuple[str, "Module"]]:
        return iter(self._modules.items())

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for mod_name, child in self._modules.items():
            child_prefix = f"{prefix}.{mod_name}" if prefix else mod_name
            yield from child.named_parameters(child_prefix)

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield (f"{prefix}.{name}" if prefix else name), buf
        for mod_name, child in self._modules.items():
            child_prefix = f"{prefix}.{mod_name}" if prefix else mod_name
            yield from child.named_buffers(child_prefix)

    def num_parameters(self) -> int:
        """Total number of scalar parameters (used for model-size classes)."""
        return int(sum(p.size for p in self.parameters()))

    def size_mb(self, bytes_per_param: int = 4) -> float:
        """Model size in megabytes assuming FP32 storage (paper Figure 5 size classes)."""
        return self.num_parameters() * bytes_per_param / (1024.0**2)

    # ------------------------------------------------------------------
    # submodule access / replacement
    # ------------------------------------------------------------------
    def get_submodule(self, target: str) -> "Module":
        """Return the submodule at dotted path ``target`` (empty string = self)."""
        if target == "":
            return self
        module: Module = self
        for part in target.split("."):
            if part not in module._modules:
                raise KeyError(f"no submodule named {target!r} (missing {part!r})")
            module = module._modules[part]
        return module

    def set_submodule(self, target: str, new_module: "Module") -> None:
        """Replace the submodule at dotted path ``target`` with ``new_module``."""
        if target == "":
            raise ValueError("cannot replace the root module")
        *parent_path, leaf = target.split(".")
        parent = self.get_submodule(".".join(parent_path))
        if leaf not in parent._modules:
            raise KeyError(f"no submodule named {target!r}")
        parent.add_module(leaf, new_module)

    # ------------------------------------------------------------------
    # state dict
    # ------------------------------------------------------------------
    def get_extra_state(self):
        """Module-local state composed into :meth:`state_dict` beyond params/buffers.

        Return ``None`` (the default) for no extra state, or a JSON-like tree
        (nested dicts/lists of numpy arrays, scalars and strings).  The payload
        is stored under ``<module-path>._extra_state`` and handed back to
        :meth:`set_extra_state` by :meth:`load_state_dict`.  The quantization
        wrappers use this to carry packed 8-bit weight storage and calibrated
        activation ranges through checkpoints without materialising float32.
        """
        return None

    def set_extra_state(self, state) -> None:
        """Restore the payload produced by :meth:`get_extra_state`."""
        raise NotImplementedError(
            f"{type(self).__name__} received extra state but does not implement set_extra_state()"
        )

    def state_dict_excluded_keys(self) -> Tuple[str, ...]:
        """Module-local parameter/buffer names omitted from :meth:`state_dict`.

        Deployed quantization wrappers exclude their bound weight view here:
        the packed codes in the extra state are the storage of record and the
        float32 view must never be materialised just to snapshot it.
        """
        return ()

    def _excluded_state_keys(self) -> set:
        excluded = set()
        for name, module in self.named_modules():
            for local in module.state_dict_excluded_keys():
                excluded.add(f"{name}.{local}" if name else local)
        return excluded

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Snapshot of all parameters and buffers as (copied) numpy arrays.

        Modules that define :meth:`get_extra_state` contribute one additional
        ``<module-path>._extra_state`` entry holding their payload tree.
        """
        state: Dict[str, np.ndarray] = {}
        excluded = self._excluded_state_keys()
        for name, param in self.named_parameters():
            if name not in excluded:
                state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            if name not in excluded:
                state[name] = buf.copy()
        for name, module in self.named_modules():
            extra = module.get_extra_state()
            if extra is not None:
                state[f"{name}.{EXTRA_STATE_KEY}" if name else EXTRA_STATE_KEY] = extra
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameters and buffers (in place) from :meth:`state_dict` output.

        ``_extra_state`` entries are routed to the owning module's
        :meth:`set_extra_state` *after* all plain arrays have been written, so
        packed storage restored from extra state wins over any float view of
        the same weight that was also in the dict.
        """
        bump_state_epoch()  # loaded weights invalidate compiled plans
        params = dict(self.named_parameters())
        buffers = {name: (owner, key) for owner, name, key in self._iter_buffer_owners()}
        modules = dict(self.named_modules())
        missing: List[str] = []
        extras: List[Tuple[Module, object]] = []
        for name, value in state.items():
            if name == EXTRA_STATE_KEY or name.endswith(f".{EXTRA_STATE_KEY}"):
                owner_path = name[: -len(EXTRA_STATE_KEY)].rstrip(".")
                if owner_path in modules:
                    extras.append((modules[owner_path], value))
                elif strict:
                    missing.append(name)
                continue
            if name in params:
                if params[name].shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: model {params[name].shape} vs state {value.shape}"
                    )
                if not params[name].data.flags.writeable:
                    raise RuntimeError(
                        f"cannot load {name}: the parameter is a read-only deployment "
                        "placeholder (the model was deployed restore-free; load packed "
                        "checkpoints with repro.serialization.load_quantized instead)"
                    )
                params[name].data[...] = value
            elif name in buffers:
                owner, key = buffers[name]
                owner._buffers[key][...] = value
            elif strict:
                missing.append(name)
        if strict and missing:
            raise KeyError(f"unexpected keys in state dict: {missing}")
        for module, value in extras:
            module.set_extra_state(value)

    def _iter_buffer_owners(self, prefix: str = "") -> Iterator[Tuple["Module", str, str]]:
        for key in self._buffers:
            full = f"{prefix}.{key}" if prefix else key
            yield self, full, key
        for mod_name, child in self._modules.items():
            child_prefix = f"{prefix}.{mod_name}" if prefix else mod_name
            yield from child._iter_buffer_owners(child_prefix)

    # ------------------------------------------------------------------
    # modes
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def apply(self, fn) -> "Module":
        """Apply ``fn`` to self and every submodule (post-order on children first)."""
        for child in self._modules.values():
            child.apply(fn)
        fn(self)
        return self

    # ------------------------------------------------------------------
    # call protocol / forward hooks
    # ------------------------------------------------------------------
    def register_forward_hook(self, hook) -> "HookHandle":
        """Register ``hook(module, inputs, output)`` to run after every forward call.

        Used by SmoothQuant, the distribution-analysis benchmarks and the
        calibration machinery to observe intermediate activations without
        modifying model code.  Returns a handle whose ``remove()`` detaches it.

        Interaction with compiled plans (:mod:`repro.graph`): a hooked module
        **forces eager execution**.  Tracing refuses to record through any
        module carrying forward hooks (the plan would silently skip them at
        replay), so a forward involving a hooked module always falls back to
        the eager path, and registering a hook invalidates every cached plan
        that traced through this module (plans that never touched it stay
        live).  ``handle.remove()`` makes the module traceable again on the
        next miss.  Both transitions are signalled through the global
        :func:`hook_epoch` counter, so the steady-state plan lookup stays
        O(1) while hooks are stable.
        """
        handle = HookHandle(self._forward_hooks)
        self._forward_hooks[handle.hook_id] = hook
        bump_hook_epoch()
        return handle

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        tracer = active_tracer()
        if tracer is not None:
            recorded, output = tracer.visit_call(self, args, kwargs)
            if recorded:
                return output
        else:
            # compiled-plan dispatch: only roots that went through
            # repro.graph.cache.install_plan_cache carry the attribute
            cache = self.__dict__.get("_plan_cache")
            if cache is not None:
                replayed, output = cache.dispatch(self, args, kwargs)
                if replayed:
                    return output
        output = self.forward(*args, **kwargs)
        if self._forward_hooks:
            for hook in list(self._forward_hooks.values()):
                hook(self, args, output)
        return output

    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        for name, child in self._modules.items():
            child_repr = repr(child).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child_repr}")
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else f"{type(self).__name__}({self.extra_repr()})"
