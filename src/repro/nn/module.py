"""Module base class and Parameter container.

The quantization framework relies on four capabilities of :class:`Module`:

* ``named_modules()`` — walk the module graph to decide which operators to
  quantize (standard vs extended scheme, first/last operator detection);
* ``get_submodule`` / ``set_submodule`` — swap a float module for its
  quantized counterpart in place;
* ``state_dict`` / ``load_state_dict`` — snapshot and restore trained weights
  (used by the tuning loop to try recipes from the same starting point);
* ``train()`` / ``eval()`` — BatchNorm calibration runs the model in a special
  statistics-update mode without touching learnable parameters.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["Parameter", "Module", "EXTRA_STATE_KEY"]

#: state-dict key suffix under which a module's :meth:`Module.get_extra_state`
#: payload is stored (``<module-path>._extra_state``)
EXTRA_STATE_KEY = "_extra_state"


class Parameter(Tensor):
    """A Tensor that is registered as a learnable parameter of a Module."""

    def __init__(self, data, requires_grad: bool = True, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=requires_grad, name=name)


class HookHandle:
    """Removable handle returned by :meth:`Module.register_forward_hook`."""

    _counter = 0

    def __init__(self, registry) -> None:
        HookHandle._counter += 1
        self.hook_id = HookHandle._counter
        self._registry = registry

    def remove(self) -> None:
        self._registry.pop(self.hook_id, None)


class Module:
    """Base class for all neural network modules."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._forward_hooks: "OrderedDict[int, object]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # attribute plumbing
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-learnable persistent array (e.g. BatchNorm running stats)."""
        self._buffers[name] = np.asarray(value, dtype=np.float32)
        object.__setattr__(self, name, self._buffers[name])

    def register_parameter(self, name: str, param: Parameter) -> None:
        self._parameters[name] = param
        object.__setattr__(self, name, param)

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    def named_children(self) -> Iterator[Tuple[str, "Module"]]:
        return iter(self._modules.items())

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for mod_name, child in self._modules.items():
            child_prefix = f"{prefix}.{mod_name}" if prefix else mod_name
            yield from child.named_parameters(child_prefix)

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield (f"{prefix}.{name}" if prefix else name), buf
        for mod_name, child in self._modules.items():
            child_prefix = f"{prefix}.{mod_name}" if prefix else mod_name
            yield from child.named_buffers(child_prefix)

    def num_parameters(self) -> int:
        """Total number of scalar parameters (used for model-size classes)."""
        return int(sum(p.size for p in self.parameters()))

    def size_mb(self, bytes_per_param: int = 4) -> float:
        """Model size in megabytes assuming FP32 storage (paper Figure 5 size classes)."""
        return self.num_parameters() * bytes_per_param / (1024.0**2)

    # ------------------------------------------------------------------
    # submodule access / replacement
    # ------------------------------------------------------------------
    def get_submodule(self, target: str) -> "Module":
        """Return the submodule at dotted path ``target`` (empty string = self)."""
        if target == "":
            return self
        module: Module = self
        for part in target.split("."):
            if part not in module._modules:
                raise KeyError(f"no submodule named {target!r} (missing {part!r})")
            module = module._modules[part]
        return module

    def set_submodule(self, target: str, new_module: "Module") -> None:
        """Replace the submodule at dotted path ``target`` with ``new_module``."""
        if target == "":
            raise ValueError("cannot replace the root module")
        *parent_path, leaf = target.split(".")
        parent = self.get_submodule(".".join(parent_path))
        if leaf not in parent._modules:
            raise KeyError(f"no submodule named {target!r}")
        parent.add_module(leaf, new_module)

    # ------------------------------------------------------------------
    # state dict
    # ------------------------------------------------------------------
    def get_extra_state(self):
        """Module-local state composed into :meth:`state_dict` beyond params/buffers.

        Return ``None`` (the default) for no extra state, or a JSON-like tree
        (nested dicts/lists of numpy arrays, scalars and strings).  The payload
        is stored under ``<module-path>._extra_state`` and handed back to
        :meth:`set_extra_state` by :meth:`load_state_dict`.  The quantization
        wrappers use this to carry packed 8-bit weight storage and calibrated
        activation ranges through checkpoints without materialising float32.
        """
        return None

    def set_extra_state(self, state) -> None:
        """Restore the payload produced by :meth:`get_extra_state`."""
        raise NotImplementedError(
            f"{type(self).__name__} received extra state but does not implement set_extra_state()"
        )

    def state_dict_excluded_keys(self) -> Tuple[str, ...]:
        """Module-local parameter/buffer names omitted from :meth:`state_dict`.

        Deployed quantization wrappers exclude their bound weight view here:
        the packed codes in the extra state are the storage of record and the
        float32 view must never be materialised just to snapshot it.
        """
        return ()

    def _excluded_state_keys(self) -> set:
        excluded = set()
        for name, module in self.named_modules():
            for local in module.state_dict_excluded_keys():
                excluded.add(f"{name}.{local}" if name else local)
        return excluded

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Snapshot of all parameters and buffers as (copied) numpy arrays.

        Modules that define :meth:`get_extra_state` contribute one additional
        ``<module-path>._extra_state`` entry holding their payload tree.
        """
        state: Dict[str, np.ndarray] = {}
        excluded = self._excluded_state_keys()
        for name, param in self.named_parameters():
            if name not in excluded:
                state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            if name not in excluded:
                state[name] = buf.copy()
        for name, module in self.named_modules():
            extra = module.get_extra_state()
            if extra is not None:
                state[f"{name}.{EXTRA_STATE_KEY}" if name else EXTRA_STATE_KEY] = extra
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameters and buffers (in place) from :meth:`state_dict` output.

        ``_extra_state`` entries are routed to the owning module's
        :meth:`set_extra_state` *after* all plain arrays have been written, so
        packed storage restored from extra state wins over any float view of
        the same weight that was also in the dict.
        """
        params = dict(self.named_parameters())
        buffers = {name: (owner, key) for owner, name, key in self._iter_buffer_owners()}
        modules = dict(self.named_modules())
        missing: List[str] = []
        extras: List[Tuple[Module, object]] = []
        for name, value in state.items():
            if name == EXTRA_STATE_KEY or name.endswith(f".{EXTRA_STATE_KEY}"):
                owner_path = name[: -len(EXTRA_STATE_KEY)].rstrip(".")
                if owner_path in modules:
                    extras.append((modules[owner_path], value))
                elif strict:
                    missing.append(name)
                continue
            if name in params:
                if params[name].shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: model {params[name].shape} vs state {value.shape}"
                    )
                if not params[name].data.flags.writeable:
                    raise RuntimeError(
                        f"cannot load {name}: the parameter is a read-only deployment "
                        "placeholder (the model was deployed restore-free; load packed "
                        "checkpoints with repro.serialization.load_quantized instead)"
                    )
                params[name].data[...] = value
            elif name in buffers:
                owner, key = buffers[name]
                owner._buffers[key][...] = value
            elif strict:
                missing.append(name)
        if strict and missing:
            raise KeyError(f"unexpected keys in state dict: {missing}")
        for module, value in extras:
            module.set_extra_state(value)

    def _iter_buffer_owners(self, prefix: str = "") -> Iterator[Tuple["Module", str, str]]:
        for key in self._buffers:
            full = f"{prefix}.{key}" if prefix else key
            yield self, full, key
        for mod_name, child in self._modules.items():
            child_prefix = f"{prefix}.{mod_name}" if prefix else mod_name
            yield from child._iter_buffer_owners(child_prefix)

    # ------------------------------------------------------------------
    # modes
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def apply(self, fn) -> "Module":
        """Apply ``fn`` to self and every submodule (post-order on children first)."""
        for child in self._modules.values():
            child.apply(fn)
        fn(self)
        return self

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    # ------------------------------------------------------------------
    # forward hooks
    # ------------------------------------------------------------------
    def register_forward_hook(self, hook) -> "HookHandle":
        """Register ``hook(module, inputs, output)`` to run after every forward call.

        Used by SmoothQuant, the distribution-analysis benchmarks and the
        calibration machinery to observe intermediate activations without
        modifying model code.  Returns a handle whose ``remove()`` detaches it.
        """
        handle = HookHandle(self._forward_hooks)
        self._forward_hooks[handle.hook_id] = hook
        return handle

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        output = self.forward(*args, **kwargs)
        if self._forward_hooks:
            for hook in list(self._forward_hooks.values()):
                hook(self, args, output)
        return output

    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        for name, child in self._modules.items():
            child_repr = repr(child).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child_repr}")
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else f"{type(self).__name__}({self.extra_repr()})"
