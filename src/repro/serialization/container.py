"""The on-disk container for packed checkpoints: one file, header + payloads.

Layout (all integers little-endian)::

    offset 0   magic     8 bytes   b"RPQCKPT\\x00"
    offset 8   version   uint32    container format version (currently 2)
    offset 12  hdr_len   uint64    byte length of the JSON header
    offset 20  header    hdr_len   UTF-8 JSON
    ...        padding to a 64-byte boundary
    ...        payload   raw little-endian array bytes, each 64-byte aligned

The header carries two things: ``meta`` (an arbitrary JSON tree supplied by
the caller — recipe, module specs, flags) and ``arrays`` (a name → {dtype,
shape, offset, nbytes} table, offsets relative to the payload start; version
2 adds a per-span ``crc32`` digest).  Arrays are written as raw C-contiguous
bytes; packed uint8/int8 codes therefore cost exactly one byte per element
on disk, same as in memory.

Failure modes are explicit: a wrong magic raises :class:`CheckpointError`, a
newer container version raises :class:`CheckpointVersionError`, truncated
or overlapping payloads are rejected before any array is built, and a payload
span whose bytes do not match their recorded digest raises
:class:`ChecksumError`.

Integrity verification
----------------------
Version-2 checkpoints record a crc32 per payload span.  Copied loads verify
each span **eagerly** as its bytes are read — a flipped byte fails at load
time, not as silent garbage at compute time.  Zero-copy mmap loads must not
fault every page in at load time (that would defeat lazy cold-start), so
their spans are verified **lazily on first touch**: the unverified spans are
recorded in a per-mapping ledger, and the FP8 decode entry points
(:meth:`~repro.fp8.quantize.QuantizedTensor.dequantize` and friends) call
:func:`verify_view` the first time they read a mapped array, which checksums
exactly the spans overlapping that view and then retires them.  Version-1
checkpoints carry no digests and load exactly as before.  The offline
scrubber ``tools/verify_checkpoint.py`` (backed by :func:`verify_container`)
checks every span of a file at rest.
"""

from __future__ import annotations

import json
import os
import struct
import sys
import threading
import weakref
import zlib
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "CheckpointError",
    "CheckpointVersionError",
    "ChecksumError",
    "CONTAINER_MAGIC",
    "CONTAINER_VERSION",
    "write_container",
    "read_container",
    "read_header",
    "verify_container",
    "verify_view",
    "clear_mapping_cache",
    "mapping_cache_size",
    "set_fault_hook",
]

CONTAINER_MAGIC = b"RPQCKPT\x00"
CONTAINER_VERSION = 2

_PREFIX = struct.Struct("<8sIQ")  # magic, version, header length
_ALIGN = 64

#: dtypes a checkpoint may carry; anything else is rejected on read and write
_ALLOWED_DTYPES = frozenset(
    {
        "bool",
        "uint8",
        "int8",
        "int16",
        "int32",
        "int64",
        "uint16",
        "uint32",
        "uint64",
        "float16",
        "float32",
        "float64",
    }
)


class CheckpointError(ValueError):
    """The file is not a valid repro packed checkpoint."""


class CheckpointVersionError(CheckpointError):
    """The checkpoint was written by a newer (unsupported) format version."""


class ChecksumError(CheckpointError):
    """A payload span's bytes do not match the digest recorded at write time."""


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


#: test-visible fault hook (set by repro.serving.faults.install) — called per
#: span on copied reads so the ``container.read_span`` corrupt fault can flip
#: a byte before verification.  This module never imports the serving package.
_FAULT_HOOK: Optional[Callable] = None


def set_fault_hook(hook: Optional[Callable]) -> None:
    """Install (or clear, with ``None``) the fault-injection hook."""
    global _FAULT_HOOK
    _FAULT_HOOK = hook


#: process-wide cache of shared read-only file mappings, keyed by
#: (realpath, inode, size, mtime_ns) so a rewritten or replaced checkpoint
#: never serves stale bytes; guarded by _MAPPING_LOCK
_MAPPINGS: Dict[tuple, np.memmap] = {}
_MAPPING_LOCK = threading.Lock()


def _shared_mapping(path: str) -> np.memmap:
    """One read-only mapping per (file identity, version), reused across loads.

    This is what makes N serving replicas of one checkpoint cost the file's
    bytes once: every ``read_container(..., mmap=True, share_views=True)``
    call for the same on-disk file returns views over the *same* ``np.memmap``
    object, so the kernel backs them all with one set of page-cache pages and
    ``resident_report`` (which deduplicates by storage base) counts the
    mapping exactly once.  A file that changed size or mtime gets a fresh
    mapping, and its stale predecessors are dropped from the cache (the
    mapping itself lives on while any view references it).
    """
    real = os.path.realpath(path)
    stat = os.stat(real)
    # the inode catches replace-by-rename and same-size rewrites on
    # filesystems whose mtime granularity is coarser than the rewrite
    key = (real, stat.st_ino, stat.st_size, stat.st_mtime_ns)
    with _MAPPING_LOCK:
        mapping = _MAPPINGS.get(key)
        if mapping is None:
            _evict_unreferenced_locked()
            for stale in [k for k in _MAPPINGS if k[0] == real and k != key]:
                del _MAPPINGS[stale]
            mapping = np.memmap(real, dtype=np.uint8, mode="r")
            _MAPPINGS[key] = mapping
    return mapping


def _evict_unreferenced_locked() -> None:
    """Drop cached mappings no checkpoint array references any more.

    A mapping whose only remaining references are the cache's dict entry and
    ``getrefcount``'s own argument pins a file descriptor and the file's
    address-space mapping for nothing — e.g. after a serving process rotates
    to a checkpoint at a *different* path and releases every model built on
    the old one.  Evicting is always safe: live array views keep their
    mapping alive through their ``base`` chain regardless of the cache, so
    eviction only costs a future reload a fresh ``mmap`` call.  Runs on each
    cache miss, bounding the cache to mappings that are actually in use
    (plus the one being added).
    """
    for key in list(_MAPPINGS):
        if sys.getrefcount(_MAPPINGS[key]) <= 2:  # the dict entry + the call argument
            del _MAPPINGS[key]


def clear_mapping_cache() -> int:
    """Drop every cached shared mapping; returns how many were dropped.

    Existing array views keep their mapping alive through their ``base``
    chain — this only stops *future* loads from reusing the cached objects
    (and releases the cache's own reference, e.g. before deleting a
    checkpoint file on platforms that refuse to unlink mapped files).
    """
    with _MAPPING_LOCK:
        count = len(_MAPPINGS)
        _MAPPINGS.clear()
    return count


def mapping_cache_size() -> int:
    """How many shared file mappings this *process* currently caches.

    The cache is strictly per-process (each serving worker process re-maps
    the checkpoint into its own address space; the OS page cache shares the
    actual bytes underneath) — worker processes report this in their ready
    handshake so tests can assert one mapping per file per process.
    """
    with _MAPPING_LOCK:
        return len(_MAPPINGS)


def _reinit_after_fork() -> None:
    # A forked child inherits the parent's mapping/ledger dicts and — worse —
    # their locks in whatever state the fork caught them.  Mappings and
    # ledgers hold process-local state (fds, address-space mappings, lazy
    # verification bitmaps), so the child starts from scratch: fresh locks,
    # empty caches.  Re-mapping on first use is nearly free (page cache), and
    # a cleared ledger only means inherited mmap views lose lazy first-touch
    # verification in the child — re-loaded ones get their own ledgers.
    global _MAPPING_LOCK, _LEDGER_LOCK
    _MAPPING_LOCK = threading.Lock()
    _LEDGER_LOCK = threading.Lock()
    _MAPPINGS.clear()
    _LEDGERS.clear()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reinit_after_fork)


def _check_dtype(name: str, dtype: np.dtype) -> str:
    dtype_name = np.dtype(dtype).name
    if dtype_name not in _ALLOWED_DTYPES:
        raise CheckpointError(f"array {name!r} has unsupported checkpoint dtype {dtype_name!r}")
    return dtype_name


def write_container(
    path: str,
    arrays: Dict[str, np.ndarray],
    meta: dict,
    container_version: int = CONTAINER_VERSION,
) -> int:
    """Write a single-file checkpoint; returns the total bytes written.

    The offset table is computed up front from shapes alone; array bytes are
    then streamed straight to the file, so peak memory stays at the arrays
    themselves (no transient full-payload copy).  Version 2 (default) records
    a crc32 per payload span in the header table; ``container_version=1``
    writes the digest-free legacy layout (readable forever — the v1
    compatibility tests and downgrade escapes use it).
    """
    if container_version not in (1, 2):
        raise ValueError(f"container_version must be 1 or 2, got {container_version!r}")
    normalised: Dict[str, np.ndarray] = {}
    table = {}
    payload_cursor = 0
    for name, array in arrays.items():
        array = np.asarray(array)
        if not array.flags["C_CONTIGUOUS"]:
            # (ascontiguousarray unconditionally would also promote 0-d
            # arrays to 1-d, silently changing the stored shape)
            array = np.ascontiguousarray(array)
        normalised[name] = array
        dtype_name = _check_dtype(name, array.dtype)
        payload_cursor = _aligned(payload_cursor)
        table[name] = {
            "dtype": dtype_name,
            "shape": list(array.shape),
            "offset": payload_cursor,
            "nbytes": int(array.nbytes),
        }
        if container_version >= 2:
            # the digest of exactly the bytes streamed below (C-contiguous
            # buffer, no copy)
            table[name]["crc32"] = zlib.crc32(array) & 0xFFFFFFFF
        payload_cursor += array.nbytes

    header = json.dumps({"meta": meta, "arrays": table}, sort_keys=True).encode("utf-8")
    payload_start = _aligned(_PREFIX.size + len(header))
    with open(path, "wb") as fh:
        fh.write(_PREFIX.pack(CONTAINER_MAGIC, container_version, len(header)))
        fh.write(header)
        for name, array in normalised.items():
            fh.seek(payload_start + table[name]["offset"])
            fh.write(array.tobytes())
        total = payload_start + payload_cursor
        fh.truncate(total)
    return total


def _read_header(fh, path: str) -> Tuple[dict, int]:
    """Parse prefix + JSON header; returns (header, payload_start).  O(header)."""
    fh.seek(0, 2)
    file_size = fh.tell()
    fh.seek(0)
    prefix = fh.read(_PREFIX.size)
    if len(prefix) < _PREFIX.size:
        raise CheckpointError(f"{path}: file too short to be a packed checkpoint")
    magic, version, header_len = _PREFIX.unpack(prefix)
    if magic != CONTAINER_MAGIC:
        raise CheckpointError(f"{path}: bad magic {magic!r}; not a repro packed checkpoint")
    if version > CONTAINER_VERSION:
        raise CheckpointVersionError(
            f"{path}: container version {version} is newer than supported "
            f"version {CONTAINER_VERSION}; upgrade repro to read it"
        )
    if header_len > file_size - _PREFIX.size:
        # Bound the read by the actual file extent before allocating: a
        # fuzzed uint64 length must fail loudly, not as a MemoryError.
        raise CheckpointError(f"{path}: truncated header")
    header_bytes = fh.read(header_len)
    if len(header_bytes) < header_len:
        raise CheckpointError(f"{path}: truncated header")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"{path}: corrupt header ({exc})") from exc
    if not isinstance(header, dict) or "arrays" not in header or "meta" not in header:
        raise CheckpointError(f"{path}: header is missing the arrays/meta tables")
    return header, _aligned(_PREFIX.size + header_len)


def _validated_spans(header: dict, payload_start: int, file_size: int, path: str):
    """Check every array span: declared size, file extent, and mutual overlap.

    Yields (name, dtype, shape, nbytes, absolute_offset, crc32-or-None) in
    table order after proving no span escapes the file and no two spans alias
    each other — a corrupt offset table must fail loudly, not decode garbage
    weights.  The digest is ``None`` for version-1 tables (written before
    digests existed).
    """
    spans = []
    for name, spec in header["arrays"].items():
        dtype = np.dtype(_check_dtype(name, spec["dtype"]))
        shape = tuple(int(dim) for dim in spec["shape"])
        nbytes = int(spec["nbytes"])
        offset = int(spec["offset"])
        digest = spec.get("crc32")
        digest = None if digest is None else int(digest)
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if nbytes != expected:
            raise CheckpointError(
                f"{path}: array {name!r} declares {nbytes} bytes but "
                f"shape {shape} × {dtype} needs {expected}"
            )
        if offset < 0 or payload_start + offset + nbytes > file_size:
            raise CheckpointError(
                f"{path}: array {name!r} span [{offset}, {offset + nbytes}) "
                "escapes the file; truncated or corrupt payload"
            )
        spans.append((name, dtype, shape, nbytes, payload_start + offset, digest))
    ordered = sorted(spans, key=lambda span: span[4])
    for (name_a, _, _, nbytes_a, start_a, _), (name_b, _, _, _, start_b, _) in zip(
        ordered, ordered[1:]
    ):
        if start_a + nbytes_a > start_b:
            raise CheckpointError(
                f"{path}: arrays {name_a!r} and {name_b!r} overlap in the payload; "
                "corrupt offset table"
            )
    return spans


def read_header(path: str) -> dict:
    """Read only the JSON header's ``meta`` tree — no payload bytes are touched."""
    with open(path, "rb") as fh:
        header, _ = _read_header(fh, path)
    return header["meta"]


def read_container(
    path: str, mmap: bool = False, share_views: bool = False, verify: bool = True
) -> Tuple[Dict[str, np.ndarray], dict]:
    """Read a checkpoint back into (arrays, meta).

    With ``mmap=False`` (the default) arrays are materialised as writable
    C-contiguous copies of the payload bytes (no float32 weights are ever
    reconstructed here — codes come back as the packed uint8/int8 they were
    written as).

    With ``mmap=True`` no payload byte is copied at all: the file is mapped
    once (read-only) and every array comes back as a zero-copy view into the
    mapping — the 64-byte span alignment guarantees every view is itself
    aligned.  Pages are faulted in by the kernel on first touch, so the read
    is O(header) and cold resident bytes stay near zero until an array is
    actually used.  The views are read-only; writing raises, and callers that
    need a private mutable copy must take one explicitly.  Span validation is
    identical to the copied path: a corrupt offset table raises
    :class:`CheckpointError` before any view is built.

    ``share_views=True`` (requires ``mmap=True``) additionally reuses one
    process-wide mapping per on-disk file: repeated reads of the same
    checkpoint — e.g. loading N serving replicas — alias the same
    ``np.memmap`` object instead of mapping the file N times, so the packed
    bytes are mapped exactly once per process (see :func:`_shared_mapping`
    and :func:`clear_mapping_cache`).

    ``verify=True`` (default) enforces the version-2 per-span digests:
    copied spans are checksummed eagerly as they are read
    (:class:`ChecksumError` at load time), mmap spans are registered for lazy
    verification on first touch (see the module docstring).  Version-1 files
    have no digests and are returned unchanged either way.
    """
    if share_views and not mmap:
        raise ValueError("share_views=True requires mmap=True")
    with open(path, "rb") as fh:
        header, payload_start = _read_header(fh, path)
        fh.seek(0, 2)
        file_size = fh.tell()
        spans = _validated_spans(header, payload_start, file_size, path)
        arrays: Dict[str, np.ndarray] = {}
        if mmap:
            mapping = (
                _shared_mapping(path)
                if share_views
                else np.memmap(path, dtype=np.uint8, mode="r")
            )
            for name, dtype, shape, nbytes, start, _ in spans:
                view = mapping[start : start + nbytes].view(dtype).reshape(shape)
                arrays[name] = view
            if verify:
                _register_unverified_spans(mapping, path, spans)
            return arrays, header["meta"]
        for name, dtype, shape, nbytes, start, digest in spans:
            fh.seek(start)
            # read straight into the writable buffer frombuffer will wrap —
            # one copy of the payload in memory, not two
            buffer = bytearray(nbytes)
            if fh.readinto(buffer) < nbytes:
                raise CheckpointError(f"{path}: truncated payload for array {name!r}")
            if _FAULT_HOOK is not None:
                _FAULT_HOOK("container.read_span", name=name, buffer=buffer)
            if verify and digest is not None:
                actual = zlib.crc32(buffer) & 0xFFFFFFFF
                if actual != digest:
                    raise ChecksumError(
                        f"{path}: array {name!r} failed integrity verification "
                        f"(crc32 {actual:#010x} != recorded {digest:#010x}); "
                        "the checkpoint payload is corrupt"
                    )
            arrays[name] = np.frombuffer(buffer, dtype=dtype).reshape(shape)
        return arrays, header["meta"]


# ----------------------------------------------------------------------
# lazy integrity verification for mmap views
# ----------------------------------------------------------------------
class _MappingLedger:
    """Unverified digest-carrying spans of one live file mapping.

    Spans are keyed by their absolute byte interval within the mapping; a
    span is checked once (on the first touch of any view overlapping it) and
    then retired, so steady-state touches cost one interval lookup and no
    checksum work.
    """

    __slots__ = ("path", "base_address", "spans", "verified", "lock")

    def __init__(self, path: str, base_address: int) -> None:
        self.path = path
        self.base_address = base_address
        #: (name, start, nbytes, crc32), sorted by start
        self.spans: List[Tuple[str, int, int, int]] = []
        self.verified: set = set()
        self.lock = threading.Lock()


#: id(mapping) → ledger for every live mapping with unverified spans; entries
#: are removed by a weakref.finalize when the mapping is collected
_LEDGERS: Dict[int, _MappingLedger] = {}
_LEDGER_LOCK = threading.Lock()


def _register_unverified_spans(mapping: np.memmap, path: str, spans) -> None:
    """Record a v2 mmap load's digest spans for first-touch verification."""
    digest_spans = [
        (name, start, nbytes, digest) for name, _, _, nbytes, start, digest in spans if digest
    ]
    if not digest_spans:
        return  # v1 file (or empty): nothing to verify, no hook needed
    base = np.lib.array_utils.byte_bounds(mapping)[0]
    key = id(mapping)
    with _LEDGER_LOCK:
        ledger = _LEDGERS.get(key)
        if ledger is None:
            ledger = _MappingLedger(path, base)
            _LEDGERS[key] = ledger
            weakref.finalize(mapping, _drop_ledger, key)
    with ledger.lock:
        known = {(start, nbytes) for _, start, nbytes, _ in ledger.spans}
        for span in digest_spans:
            interval = (span[1], span[2])
            if interval not in known and interval not in ledger.verified:
                ledger.spans.append(span)
        ledger.spans.sort(key=lambda span: span[1])
    _install_touch_hook()


def _drop_ledger(key: int) -> None:
    with _LEDGER_LOCK:
        _LEDGERS.pop(key, None)


def _install_touch_hook() -> None:
    # assign, not import-time wire: repro.fp8 must not depend on this module,
    # and this module must only tax the decode hot path once a v2 mmap
    # checkpoint with pending digests actually exists
    from repro.fp8 import quantize

    quantize._integrity_hook = verify_view


def verify_view(array: np.ndarray) -> None:
    """Verify (once) the unverified checkpoint spans backing ``array``.

    Walks the view's base chain to its file mapping; if that mapping has
    pending digest spans overlapping the view's byte interval, each is
    checksummed against the header digest and retired.  Raises
    :class:`ChecksumError` on mismatch.  Free for arrays that are not
    checkpoint views or whose spans were already verified.
    """
    base = array
    while base is not None and id(base) not in _LEDGERS:
        base = getattr(base, "base", None)
    if base is None:
        return
    ledger = _LEDGERS.get(id(base))
    if ledger is None:
        return
    lo, hi = np.lib.array_utils.byte_bounds(array)
    rel_lo, rel_hi = lo - ledger.base_address, hi - ledger.base_address
    mapping = base
    with ledger.lock:
        touched = [
            span for span in ledger.spans if span[1] < rel_hi and span[1] + span[2] > rel_lo
        ]
        if not touched:
            return
        for name, start, nbytes, digest in touched:
            actual = zlib.crc32(mapping[start : start + nbytes]) & 0xFFFFFFFF
            if actual != digest:
                raise ChecksumError(
                    f"{ledger.path}: array {name!r} failed integrity verification on "
                    f"first touch (crc32 {actual:#010x} != recorded {digest:#010x}); "
                    "the mapped checkpoint payload is corrupt"
                )
            ledger.verified.add((start, nbytes))
        ledger.spans = [span for span in ledger.spans if span not in touched]


def verify_container(path: str) -> dict:
    """Scrub a checkpoint at rest: checksum every payload span against its digest.

    Returns a report dict (``version``, ``arrays``, ``verified``,
    ``skipped`` — spans without digests, i.e. a v1 file).  Raises
    :class:`ChecksumError` on the first mismatching span and
    :class:`CheckpointError` for structural corruption.  Streams the file
    span by span, so peak memory is one span, not the payload.
    """
    with open(path, "rb") as fh:
        fh.seek(8)
        version = struct.unpack("<I", fh.read(4))[0]
        fh.seek(0)
        header, payload_start = _read_header(fh, path)
        fh.seek(0, 2)
        file_size = fh.tell()
        spans = _validated_spans(header, payload_start, file_size, path)
        verified = skipped = 0
        for name, _, _, nbytes, start, digest in spans:
            if digest is None:
                skipped += 1
                continue
            fh.seek(start)
            crc = 0
            remaining = nbytes
            while remaining:
                chunk = fh.read(min(remaining, 1 << 22))
                if not chunk:
                    raise CheckpointError(f"{path}: truncated payload for array {name!r}")
                crc = zlib.crc32(chunk, crc)
                remaining -= len(chunk)
            if crc & 0xFFFFFFFF != digest:
                raise ChecksumError(
                    f"{path}: array {name!r} failed integrity verification "
                    f"(crc32 {crc & 0xFFFFFFFF:#010x} != recorded {digest:#010x}); "
                    "the checkpoint payload is corrupt"
                )
            verified += 1
    return {
        "path": path,
        "version": int(version),
        "arrays": len(spans),
        "verified": verified,
        "skipped": skipped,
    }
