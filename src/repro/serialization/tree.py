"""Flatten nested state trees into (arrays, JSON skeleton) and back.

``Module.state_dict()`` with extra state is a tree: plain arrays at the top
level plus nested dicts/lists (quantizer snapshots, packed-weight payloads)
under ``_extra_state`` keys.  The container stores arrays and JSON separately,
so checkpointing needs a lossless split:

* every :class:`numpy.ndarray` leaf is lifted into a flat ``{path: array}``
  dict (path components joined with ``"/"``), and replaced in the skeleton by
  ``{"$array": path}``;
* everything else (bools, numbers, strings, ``None``) stays in the skeleton,
  which must be JSON-serialisable.

``unflatten_state`` inverts the transformation exactly; numpy scalars are
normalised to Python scalars on the way in so the skeleton always serialises.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = ["flatten_state", "unflatten_state"]

_ARRAY_REF = "$array"


def _flatten(node, path: str, arrays: Dict[str, np.ndarray]):
    if isinstance(node, np.ndarray):
        arrays[path] = node
        return {_ARRAY_REF: path}
    if isinstance(node, np.generic):
        return node.item()
    if isinstance(node, dict):
        out = {}
        for key, value in node.items():
            key = str(key)
            if "/" in key:
                raise ValueError(f"state key {key!r} may not contain '/'")
            out[key] = _flatten(value, f"{path}/{key}" if path else key, arrays)
        return out
    if isinstance(node, (list, tuple)):
        return [
            _flatten(value, f"{path}/{index}" if path else str(index), arrays)
            for index, value in enumerate(node)
        ]
    if node is None or isinstance(node, (bool, int, float, str)):
        return node
    raise TypeError(f"state leaf at {path!r} has unserialisable type {type(node).__name__}")


def flatten_state(tree: dict) -> Tuple[Dict[str, np.ndarray], dict]:
    """Split a state tree into (flat array dict, JSON-safe skeleton)."""
    arrays: Dict[str, np.ndarray] = {}
    skeleton = _flatten(tree, "", arrays)
    return arrays, skeleton


def _unflatten(node, arrays: Dict[str, np.ndarray]):
    if isinstance(node, dict):
        if set(node.keys()) == {_ARRAY_REF}:
            path = node[_ARRAY_REF]
            if path not in arrays:
                raise KeyError(f"skeleton references missing array {path!r}")
            return arrays[path]
        return {key: _unflatten(value, arrays) for key, value in node.items()}
    if isinstance(node, list):
        return [_unflatten(value, arrays) for value in node]
    return node


def unflatten_state(skeleton: dict, arrays: Dict[str, np.ndarray]) -> dict:
    """Rebuild the original state tree from :func:`flatten_state` output."""
    return _unflatten(skeleton, arrays)
