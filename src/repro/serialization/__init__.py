"""Packed model serialization: single-file checkpoints for converted models.

The deployment side of the PTQ workflow: a converted model round-trips to
disk and back **without ever materialising float32 weights** —

>>> from repro.serialization import save_quantized, load_quantized
>>> save_quantized(result.model, "model.rpq", recipe=result.recipe)  # doctest: +SKIP
>>> served = load_quantized("model.rpq", model_factory=build_model)  # doctest: +SKIP

``load_quantized`` returns the model in restore-free deployment mode; pair it
with ``serving_mode="streaming"`` for decode-on-the-fly forwards whose
resident weight bytes stay at the packed footprint.  See
:mod:`repro.serialization.container` for the on-disk layout and
:mod:`repro.serialization.checkpoint` for the model-level semantics.
"""

from repro.serialization.container import (
    CONTAINER_MAGIC,
    CONTAINER_VERSION,
    CheckpointError,
    CheckpointVersionError,
    ChecksumError,
    clear_mapping_cache,
    mapping_cache_size,
    read_container,
    read_header,
    verify_container,
    write_container,
)
from repro.serialization.tree import flatten_state, unflatten_state
from repro.serialization.checkpoint import (
    CHECKPOINT_KIND,
    CHECKPOINT_VERSION,
    load_quantized,
    load_recipe,
    read_checkpoint_meta,
    save_quantized,
)

__all__ = [
    "CheckpointError",
    "CheckpointVersionError",
    "ChecksumError",
    "verify_container",
    "CONTAINER_MAGIC",
    "CONTAINER_VERSION",
    "CHECKPOINT_KIND",
    "CHECKPOINT_VERSION",
    "read_container",
    "read_header",
    "write_container",
    "clear_mapping_cache",
    "mapping_cache_size",
    "flatten_state",
    "unflatten_state",
    "save_quantized",
    "load_quantized",
    "load_recipe",
    "read_checkpoint_meta",
]
