"""Save / load converted models as packed single-file checkpoints.

``save_quantized`` walks a converted model and writes one container file
holding:

* the packed 8-bit weight payloads (codes + scales + zero points) of every
  :class:`~repro.quantization.qmodules.QuantizedModule`, via the extra-state
  composition in ``Module.state_dict()`` — the dense float32 view of a packed
  weight is **never** written (nor read back);
* every remaining float parameter and buffer (biases, unquantized modules,
  BatchNorm statistics);
* the frozen activation-calibration state of every quantizer, the per-module
  operator configs, and (optionally) the full quantization recipe.

``load_quantized`` inverts it against a fresh float model from
``model_factory``: it wraps exactly the modules recorded in the checkpoint,
restores packed storage and calibration without ever dequantizing, and
returns the model in restore-free deployment mode — the factory's float
weights for quantized operators are released and replaced by 4-byte broadcast
placeholders, so resident weight bytes approach the packed footprint.
``restore()`` raises on such a model; the packed codes are the storage of
record.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.nn.module import EXTRA_STATE_KEY, Module
from repro.quantization.qconfig import OperatorQuantConfig, QuantizationRecipe
from repro.quantization.qmodules import QUANTIZED_MODULE_MAP, QuantizedModule, wrap_module
from repro.quantization.workflow import set_serving_mode
from repro.serialization.container import (
    CheckpointError,
    CheckpointVersionError,
    read_container,
    read_header,
    write_container,
)
from repro.serialization.tree import flatten_state, unflatten_state

__all__ = [
    "CHECKPOINT_KIND",
    "CHECKPOINT_VERSION",
    "save_quantized",
    "load_quantized",
    "read_checkpoint_meta",
    "load_recipe",
]

CHECKPOINT_KIND = "repro-packed-quantized-model"
#: schema version of the model-level checkpoint layout (inside the container)
CHECKPOINT_VERSION = 1

ModelFactory = Callable[[], Module]


def _quantized_wrappers(model: Module) -> Dict[str, QuantizedModule]:
    return {
        name: module
        for name, module in model.named_modules()
        if isinstance(module, QuantizedModule)
    }


def _type_name_for(module: Module) -> str:
    for type_name, (module_cls, _) in QUANTIZED_MODULE_MAP.items():
        if type(module) is module_cls:
            return type_name
    raise CheckpointError(
        f"module type {type(module).__name__} has no registered quantized wrapper"
    )


def save_quantized(
    model: Module,
    path: str,
    recipe: Optional[QuantizationRecipe] = None,
    metadata: Optional[dict] = None,
) -> int:
    """Write a converted model to ``path`` as one packed checkpoint file.

    The dense float32 view of every packed weight is excluded — only codes,
    scales and the surrounding float state travel.  Returns the file size in
    bytes (≈ packed weight bytes + float leftovers + header).
    """
    wrappers = _quantized_wrappers(model)
    # Packed weights are excluded from the plain state dict at the source
    # (QuantizedModule.state_dict_excluded_keys): the float view is never
    # even copied, let alone written — only codes/scales travel.
    state = model.state_dict()
    arrays, skeleton = flatten_state(state)
    meta = {
        "kind": CHECKPOINT_KIND,
        "checkpoint_version": CHECKPOINT_VERSION,
        "recipe": None if recipe is None else recipe.to_dict(),
        "metadata": metadata or {},
        "quantized_modules": {
            name: type(wrapper.inner).__name__ for name, wrapper in wrappers.items()
        },
        "state": skeleton,
    }
    return write_container(path, arrays, meta)


def _check_meta(meta: dict, path: str) -> dict:
    if meta.get("kind") != CHECKPOINT_KIND:
        raise CheckpointError(
            f"{path}: container holds {meta.get('kind')!r}, not a packed quantized model"
        )
    version = int(meta.get("checkpoint_version", 0))
    if version > CHECKPOINT_VERSION:
        raise CheckpointVersionError(
            f"{path}: checkpoint schema version {version} is newer than supported "
            f"version {CHECKPOINT_VERSION}; upgrade repro to read it"
        )
    return meta


def _validated_meta(
    path: str, mmap: bool = False, share_views: bool = False, verify: bool = True
) -> Tuple[Dict[str, np.ndarray], dict]:
    arrays, meta = read_container(path, mmap=mmap, share_views=share_views, verify=verify)
    return arrays, _check_meta(meta, path)


def read_checkpoint_meta(path: str) -> dict:
    """Header-level inspection: kind, versions, recipe and module table.

    Reads only the JSON header (:func:`repro.serialization.container.read_header`)
    — no payload bytes are copied — and returns the checkpoint's ``meta`` tree
    minus the bulky state skeleton, so tooling can know *what* a file is in
    O(header) time regardless of model size.
    """
    meta = _check_meta(read_header(path), path)
    return {key: value for key, value in meta.items() if key != "state"}


def load_recipe(path: str) -> Optional[QuantizationRecipe]:
    """The exact recipe embedded at save time (None if the saver omitted it)."""
    recipe = read_checkpoint_meta(path).get("recipe")
    return None if recipe is None else QuantizationRecipe.from_dict(recipe)


def load_quantized(
    path: str,
    model_factory: ModelFactory,
    serving_mode: Optional[str] = None,
    strict: bool = True,
    mmap: bool = False,
    share_views: bool = False,
    verify: bool = True,
) -> Module:
    """Rebuild a converted model from a packed checkpoint — float32-free.

    ``model_factory`` must produce the same architecture the checkpoint was
    saved from (a fresh float model; its weight values for quantized operators
    are irrelevant and are released).  Quantized wrappers are recreated from
    the checkpoint's per-module configs, packed storage and calibration state
    are restored bit-identically, and the model comes back in restore-free
    deployment mode with ``serving_mode`` applied (default: as saved).

    With ``mmap=True`` the packed payload is never copied: the wrappers'
    ``weight_q`` codes/scales become read-only zero-copy views into the
    mapped file (see :func:`repro.serialization.container.read_container`),
    so load time is O(header + float leftovers) and the codes are paged in
    by the kernel on first touch.  Small plain arrays (biases, BatchNorm
    statistics, calibration snapshots) are still copied into the model's own
    storage; only the dominant packed payloads stay mapped.
    :func:`repro.quantization.workflow.resident_report` counts those mapped
    bytes separately from materialised resident bytes.

    ``share_views=True`` (requires ``mmap=True``) makes repeated loads of the
    same checkpoint alias **one** process-wide file mapping instead of
    mapping the file per load — the multi-worker serving pattern, where N
    replica models share a single read-only mmap'd checkpoint and the packed
    bytes on disk are mapped exactly once per process
    (``resident_report([replica, ...])`` then counts them once too).

    ``verify=True`` (default) enforces the container's per-span integrity
    digests: copied loads raise
    :class:`~repro.serialization.container.ChecksumError` at load time for a
    corrupt payload span; mmap loads verify each span lazily on the first
    decode touch of a view into it.  Version-1 checkpoints (no digests) load
    unchanged.
    """
    if share_views and not mmap:
        raise ValueError("share_views=True requires mmap=True")
    arrays, meta = _validated_meta(path, mmap=mmap, share_views=share_views, verify=verify)
    state = unflatten_state(meta["state"], arrays)

    model = model_factory()
    if not isinstance(model, Module):
        raise TypeError(f"model_factory returned {type(model).__name__}, expected a Module")
    model.eval()

    for name, inner_type in meta.get("quantized_modules", {}).items():
        try:
            module = model.get_submodule(name)
        except KeyError as exc:
            raise CheckpointError(
                f"{path}: checkpoint quantizes module {name!r} which the factory "
                "model does not have"
            ) from exc
        if isinstance(module, QuantizedModule):
            raise CheckpointError(
                f"{path}: factory model already wraps {name!r}; pass an unquantized model"
            )
        if type(module).__name__ != inner_type:
            raise CheckpointError(
                f"{path}: module {name!r} is {type(module).__name__} in the factory "
                f"model but was saved as {inner_type}"
            )
        extra = state.get(f"{name}.{EXTRA_STATE_KEY}" if name else EXTRA_STATE_KEY)
        if not isinstance(extra, dict) or "config" not in extra:
            raise CheckpointError(f"{path}: missing wrapper state for module {name!r}")
        config = OperatorQuantConfig.from_dict(extra["config"])
        model.set_submodule(name, wrap_module(_type_name_for(module), module, config, name=name))

    model.load_state_dict(state, strict=strict)

    # A loaded model has no float32 originals to restore to: enforce the
    # restore-free contract and release the factory's random weights.
    for wrapper in _quantized_wrappers(model).values():
        wrapper.drop_originals()
    if serving_mode is not None:
        set_serving_mode(model, serving_mode)
    return model
