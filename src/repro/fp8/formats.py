"""FP8 binary format specifications (paper Table 1).

The paper studies three 8-bit floating-point formats with a 1-bit sign, ``e``
exponent bits and ``m`` mantissa bits (``1 + e + m == 8``):

================  ======  ======  ======
property          E5M2    E4M3    E3M4
================  ======  ======  ======
exponent bias     15      7       3
max value         57344   448     30.0
min value         1.5e-5  1.9e-3  1.5e-2
subnormals        yes     yes     yes
NaNs              all     single  single
infinity          yes     no      no
================  ======  ======  ======

``E5M2`` follows IEEE-754 style encoding rules (top exponent reserved for
infinities and NaNs).  ``E4M3`` and ``E3M4`` use the *extended* encoding of
the OCP / NVIDIA FP8 proposal: the top exponent is reclaimed for normal
values and only the all-ones bit pattern encodes NaN, so there is no
infinity and the maximum magnitude is larger than the IEEE-style encoding
would permit.

Each :class:`FP8Format` lazily materialises the full table of representable
values (plus per-value metadata such as the mantissa LSB, needed for
round-to-nearest-even tie breaking) which the quantizer in
:mod:`repro.fp8.quantize` uses for vectorised nearest-value rounding.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict

import numpy as np

__all__ = [
    "FP8Format",
    "E5M2",
    "E4M3",
    "E3M4",
    "E2M5",
    "FORMAT_REGISTRY",
    "get_format",
]


@dataclass(frozen=True)
class FP8Format:
    """Specification of an 8-bit floating point format.

    Parameters
    ----------
    name:
        Human readable name, e.g. ``"E4M3"``.
    exponent_bits:
        Number of exponent bits ``e``.
    mantissa_bits:
        Number of explicitly stored mantissa bits ``m``.
    bias:
        Exponent bias ``b``; the stored exponent ``E`` encodes ``2**(E - b)``.
    ieee_like:
        If ``True`` the top exponent value is reserved for infinity / NaN
        (IEEE-754 style, used by E5M2).  If ``False`` the extended encoding is
        used: only the all-ones bit pattern is NaN, there is no infinity and
        the top exponent encodes ordinary normal values (E4M3, E3M4).
    """

    name: str
    exponent_bits: int
    mantissa_bits: int
    bias: int
    ieee_like: bool

    def __post_init__(self) -> None:
        if self.exponent_bits + self.mantissa_bits != 7:
            raise ValueError(
                f"{self.name}: exponent_bits + mantissa_bits must equal 7 "
                f"(got {self.exponent_bits} + {self.mantissa_bits})"
            )
        if self.exponent_bits < 2:
            raise ValueError(f"{self.name}: need at least 2 exponent bits")

    # ------------------------------------------------------------------
    # Scalar properties (paper Table 1)
    # ------------------------------------------------------------------
    @property
    def num_bits(self) -> int:
        """Total storage width in bits (always 8)."""
        return 1 + self.exponent_bits + self.mantissa_bits

    @property
    def exponent_all_ones(self) -> int:
        """The maximum raw exponent field value."""
        return (1 << self.exponent_bits) - 1

    @property
    def max_normal_exponent(self) -> int:
        """Largest raw exponent field usable for finite normal values."""
        if self.ieee_like:
            return self.exponent_all_ones - 1
        return self.exponent_all_ones

    @property
    def max_value(self) -> float:
        """Largest representable finite magnitude."""
        exp = self.max_normal_exponent - self.bias
        if self.ieee_like:
            mant = 1.0 + (2**self.mantissa_bits - 1) / 2**self.mantissa_bits
        else:
            # extended encoding: the all-ones mantissa at the top exponent is
            # NaN, so the largest finite value drops the mantissa LSB... no —
            # it uses the all-ones-minus-one mantissa (all ones except LSB=0
            # would be wrong for E4M3 whose max mantissa is 0b110).  The
            # reclaimed NaN is exactly one code point: mantissa == all ones.
            mant = 1.0 + (2**self.mantissa_bits - 2) / 2**self.mantissa_bits
        return float(2.0**exp * mant)

    @property
    def min_normal(self) -> float:
        """Smallest positive *normal* magnitude, ``2**(1 - bias)``."""
        return float(2.0 ** (1 - self.bias))

    @property
    def min_subnormal(self) -> float:
        """Smallest positive subnormal magnitude."""
        return float(2.0 ** (1 - self.bias) * 2.0**-self.mantissa_bits)

    @property
    def min_value(self) -> float:
        """Smallest positive representable magnitude (subnormal)."""
        return self.min_subnormal

    @property
    def has_infinity(self) -> bool:
        """Whether the format encodes +/- infinity."""
        return self.ieee_like

    @property
    def nan_encoding(self) -> str:
        """``"all"`` for IEEE-like formats, ``"single"`` for extended ones."""
        return "all" if self.ieee_like else "single"

    @property
    def num_nan_codes(self) -> int:
        """Number of bit patterns (per sign) that decode to NaN."""
        if self.ieee_like:
            return 2**self.mantissa_bits - 1
        return 1

    # ------------------------------------------------------------------
    # Value tables
    # ------------------------------------------------------------------
    @cached_property
    def _table(self) -> Dict[str, np.ndarray]:
        """Build the table of all finite representable magnitudes >= 0.

        Returns a dict with

        ``values``
            sorted unique non-negative finite magnitudes (float64),
        ``mantissa_lsb``
            the mantissa LSB of the canonical encoding of each magnitude
            (used for round-to-nearest-even tie breaking),
        ``codes``
            the raw 7-bit magnitude code (exponent << m | mantissa).
        """
        values = []
        lsbs = []
        codes = []
        m = self.mantissa_bits
        for exp_field in range(self.exponent_all_ones + 1):
            for mant_field in range(2**m):
                code = (exp_field << m) | mant_field
                if self.ieee_like and exp_field == self.exponent_all_ones:
                    # Inf (mant == 0) or NaN: not a finite value.
                    continue
                if (
                    not self.ieee_like
                    and exp_field == self.exponent_all_ones
                    and mant_field == 2**m - 1
                ):
                    # extended encoding: single NaN code point.
                    continue
                if exp_field == 0:
                    value = 2.0 ** (1 - self.bias) * (mant_field / 2**m)
                else:
                    value = 2.0 ** (exp_field - self.bias) * (1.0 + mant_field / 2**m)
                values.append(value)
                lsbs.append(mant_field & 1)
                codes.append(code)
        values_arr = np.asarray(values, dtype=np.float64)
        lsbs_arr = np.asarray(lsbs, dtype=np.int64)
        codes_arr = np.asarray(codes, dtype=np.int64)
        order = np.argsort(values_arr, kind="stable")
        return {
            "values": values_arr[order],
            "mantissa_lsb": lsbs_arr[order],
            "codes": codes_arr[order],
        }

    @property
    def positive_values(self) -> np.ndarray:
        """Sorted array of all non-negative finite representable magnitudes."""
        return self._table["values"]

    @property
    def mantissa_lsbs(self) -> np.ndarray:
        """Mantissa LSB for each entry of :attr:`positive_values`."""
        return self._table["mantissa_lsb"]

    @property
    def codes(self) -> np.ndarray:
        """Raw 7-bit magnitude codes for each entry of :attr:`positive_values`."""
        return self._table["codes"]

    @cached_property
    def all_values(self) -> np.ndarray:
        """Sorted array of all finite representable values (negative + positive)."""
        pos = self.positive_values
        neg = -pos[pos > 0][::-1]
        return np.concatenate([neg, pos])

    @property
    def num_finite_values(self) -> int:
        """Number of distinct finite values (counting +0/-0 once)."""
        return int(self.all_values.size)

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------
    def encode(self, x: np.ndarray) -> np.ndarray:
        """Encode FP32 values into raw 8-bit codes (sign<<7 | magnitude code).

        Values are first rounded onto the representable grid with
        round-to-nearest-even and saturation (see :func:`repro.fp8.quantize.fp8_round`).
        NaNs map to the canonical NaN code.  Dispatches between the fast and
        reference kernels (see :mod:`repro.fp8.kernels`).
        """
        from repro.fp8 import kernels

        if kernels.get_active_kernel() != "reference":
            return kernels.fp8_encode_fast(x, self)
        return kernels.fp8_encode_reference(x, self)

    @property
    def nan_code(self) -> int:
        """The canonical raw code used for NaN.

        For IEEE-like formats this is the all-ones-mantissa quiet NaN at the
        top exponent; for extended formats the single reclaimed all-ones bit
        pattern — the same expression either way.
        """
        return (self.exponent_all_ones << self.mantissa_bits) | (2**self.mantissa_bits - 1)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Decode raw 8-bit codes back to FP32 values.

        Dispatches between the LUT-based fast kernel and the field-by-field
        reference (see :mod:`repro.fp8.kernels`).
        """
        from repro.fp8 import kernels

        if kernels.get_active_kernel() != "reference":
            return kernels.fp8_decode_fast(codes, self)
        return kernels.fp8_decode_reference(codes, self)

    def is_representable(self, x: float) -> bool:
        """Return True if the scalar ``x`` lies exactly on the format grid."""
        if np.isnan(x):
            return True
        if np.isinf(x):
            return self.has_infinity
        return bool(np.any(np.isclose(self.all_values, x, rtol=0.0, atol=0.0)))

    def describe(self) -> Dict[str, object]:
        """Return the Table 1 row for this format as a dictionary."""
        return {
            "format": self.name,
            "exponent_bits": self.exponent_bits,
            "mantissa_bits": self.mantissa_bits,
            "exponent_bias": self.bias,
            "max_value": self.max_value,
            "min_value": self.min_value,
            "min_normal": self.min_normal,
            "subnormals": True,
            "nans": self.nan_encoding,
            "infinity": self.has_infinity,
            "finite_values": self.num_finite_values,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FP8Format({self.name}, e={self.exponent_bits}, m={self.mantissa_bits}, "
            f"bias={self.bias}, max={self.max_value}, ieee_like={self.ieee_like})"
        )


# ----------------------------------------------------------------------
# The formats studied in the paper (Table 1) plus E2M5 from related work.
# ----------------------------------------------------------------------
E5M2 = FP8Format(name="E5M2", exponent_bits=5, mantissa_bits=2, bias=15, ieee_like=True)
E4M3 = FP8Format(name="E4M3", exponent_bits=4, mantissa_bits=3, bias=7, ieee_like=False)
E3M4 = FP8Format(name="E3M4", exponent_bits=3, mantissa_bits=4, bias=3, ieee_like=False)
# E2M5 appears in the related-work discussion (Noune et al., Kuzmin et al.);
# included for completeness / ablations.
E2M5 = FP8Format(name="E2M5", exponent_bits=2, mantissa_bits=5, bias=1, ieee_like=False)

FORMAT_REGISTRY: Dict[str, FP8Format] = {fmt.name: fmt for fmt in (E5M2, E4M3, E3M4, E2M5)}


def get_format(name: str) -> FP8Format:
    """Look up an FP8 format by name (case-insensitive)."""
    key = name.upper()
    if key not in FORMAT_REGISTRY:
        raise KeyError(f"Unknown FP8 format {name!r}; available: {sorted(FORMAT_REGISTRY)}")
    return FORMAT_REGISTRY[key]
