"""Vectorised FP8 rounding, scaled quantize/dequantize and packed 8-bit storage.

The rounding primitive dispatches between two interchangeable kernels (see
:mod:`repro.fp8.kernels`): the default ``fast`` bit-twiddling cast and the
table-based ``reference`` oracle, selectable via ``REPRO_FP8_KERNEL`` or
:func:`repro.fp8.kernels.set_kernel`.

The paper's quantization flow (Section 3.1) uses

* **per-tensor scaling for activations**, ``s = float_max / max_T`` (Eq. 2)
  where ``max_T`` is the calibrated absolute maximum of the tensor, and
* **per-channel scaling for weights**, the same formula applied per output
  channel.

``E5M2`` is used with *direct* quantization (scale = 1) because its dynamic
range is large enough to cover typical activations without calibration;
``E4M3``/``E3M4`` use max scaling.

Memory model: packed at rest, float32 in compute
------------------------------------------------
The emulation computes in FP32 (values are rounded onto the 8-bit grid, not
arithmetically narrowed), but *storage* matches the deployed artifact:
:class:`QuantizedTensor` holds one byte per element — raw FP8 codes
(``uint8``, ``sign<<7 | magnitude``) or INT8 codes (``int8``) — plus a
per-tensor or per-channel scale (and a zero point for asymmetric INT8) in
their reduced ``keepdims`` shape.  ``dequantize()`` re-materialises a float32
tensor on demand; callers that need the dequantized values repeatedly (the
operator wrappers in :mod:`repro.quantization.qmodules`) cache that float32
view and can drop it at any time, because the packed codes remain the storage
of record.  A float32 weight therefore costs ``~0.25x`` its dense bytes at
rest (codes + scales), which is what ``benchmarks/bench_memory_footprint.py``
measures.

Quantizing into and out of packed storage goes through the fused per-axis
kernels (:func:`repro.fp8.kernels.fp8_quantize_channelwise` /
:func:`~repro.fp8.kernels.fp8_dequantize_channelwise`), so
``QuantizedTensor.quantize(x, fmt, axis=a).dequantize()`` is bit-identical to
the Q/DQ round trip ``quantize_dequantize(x, fmt, axis=a)`` — with one
deliberate exception: packed codes keep the sign of a rounded-to-zero
negative value (``-0.0`` decodes as ``-0.0``), while the value-domain round
trip normalises it to ``+0.0``.  NaN encodes to the format's canonical NaN
code and decodes back to NaN; INT8 has no NaN representation, so NaNs land on
the zero-point code (dequantizing to 0.0), as real INT8 storage would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.fp8 import kernels
from repro.fp8.formats import FP8Format, get_format
from repro.fp8.int8 import (
    INT8_SPEC_REGISTRY,
    Int8Spec,
    int8_dequantize_channelwise,
    int8_quantize_channelwise,
)

__all__ = [
    "fp8_round",
    "compute_scale",
    "quantize_to_fp8",
    "quantize_dequantize",
    "QuantizedTensor",
    "is_memory_mapped",
]


def is_memory_mapped(array: Optional[np.ndarray]) -> bool:
    """True if ``array``'s storage is a view into an ``np.memmap`` mapping.

    mmap-loaded checkpoints hand packed codes/scales back as zero-copy views
    into the mapped file; walking the ``base`` chain finds the owning memmap
    regardless of how many slice/``asarray`` views sit on top.  Used by
    :func:`repro.quantization.workflow.resident_report` to count mapped bytes
    (paged on demand by the kernel) separately from materialised resident
    bytes.
    """
    while isinstance(array, np.ndarray):
        if isinstance(array, np.memmap):
            return True
        array = array.base
    return False

FormatLike = Union[str, FP8Format]
StorageFormat = Union[FP8Format, Int8Spec]
AnyFormatLike = Union[str, FP8Format, Int8Spec]


def _resolve(fmt: FormatLike) -> FP8Format:
    if isinstance(fmt, FP8Format):
        return fmt
    return get_format(fmt)


def _resolve_storage(fmt: AnyFormatLike) -> StorageFormat:
    """Resolve a format name to either an FP8 format or an INT8 spec."""
    if isinstance(fmt, (FP8Format, Int8Spec)):
        return fmt
    for spec_name, spec in INT8_SPEC_REGISTRY.items():
        if fmt.lower() == spec_name.lower():
            return spec
    return get_format(fmt)


def fp8_round(x: np.ndarray, fmt: FormatLike) -> np.ndarray:
    """Round ``x`` to the nearest representable value of ``fmt``.

    Implements round-to-nearest, ties-to-even-mantissa, with saturation:
    magnitudes above ``fmt.max_value`` are clamped to ``±max_value`` (this is
    the behaviour the paper relies on, since the scale maps the calibrated
    absmax exactly onto ``max_value``).  NaNs propagate; infinities saturate.

    Parameters
    ----------
    x:
        Input array (any shape, any float dtype).
    fmt:
        Target FP8 format or its name.

    Returns
    -------
    np.ndarray
        Array of the same shape with float32 values lying on the format grid.
    """
    fmt = _resolve(fmt)
    # native shares the fast rounding kernel (see repro.fp8.kernels)
    if kernels.get_active_kernel() != "reference":
        return kernels.fp8_round_fast(x, fmt)
    return kernels.fp8_round_reference(x, fmt)


def compute_scale(
    x: np.ndarray,
    fmt: FormatLike,
    axis: Optional[Union[int, Sequence[int]]] = None,
    absmax: Optional[np.ndarray] = None,
    eps: float = 1e-12,
) -> np.ndarray:
    """Compute the max-scaling factor ``s = float_max / max_T`` (paper Eq. 2).

    The reduction runs on the tensor's native dtype in a single pass (see
    :func:`repro.fp8.kernels.channel_absmax`); only the reduced absmax is
    promoted to float64.  Non-finite absmax entries (an all-NaN channel, inf
    from overflowed calibration) map to scale 1.0 with a warning instead of
    poisoning every element that shares the scale.

    Parameters
    ----------
    x:
        Tensor used for calibration (ignored if ``absmax`` is given).
    fmt:
        Target FP8 format.
    axis:
        ``None`` for per-tensor scaling; otherwise the axes to *reduce over*
        are every axis **except** the listed channel axis/axes (i.e. passing
        ``axis=0`` gives one scale per index along dimension 0).
    absmax:
        Pre-computed calibrated absolute maximum (overrides ``x``).
    eps:
        Lower bound on the absmax to avoid division by zero.

    Returns
    -------
    np.ndarray
        Scale factor(s): scalar array for per-tensor, broadcastable array for
        per-channel.
    """
    fmt = _resolve(fmt)
    if absmax is None:
        absmax = kernels.channel_absmax(x, axis)
    return kernels.absmax_to_scale(absmax, fmt.max_value, eps=eps)


def quantize_to_fp8(
    x: np.ndarray,
    fmt: FormatLike,
    scale: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Quantize ``x`` into the FP8 grid (returns values still scaled by ``scale``).

    ``q = fp8_round(x * scale)``.  Use :func:`quantize_dequantize` for the
    round-trip used by emulated inference, or :meth:`QuantizedTensor.quantize`
    for packed 8-bit storage.
    """
    fmt = _resolve(fmt)
    x = np.asarray(x, dtype=np.float64)
    if scale is None:
        scale = np.asarray(1.0)
    return fp8_round(x * scale, fmt)


def quantize_dequantize(
    x: np.ndarray,
    fmt: FormatLike,
    scale: Optional[np.ndarray] = None,
    axis: Optional[Union[int, Sequence[int]]] = None,
) -> np.ndarray:
    """Emulated FP8 cast: scale, round onto the grid, then rescale back.

    This is the core Q/DQ primitive used by all quantized operators in
    :mod:`repro.quantization`: compute stays in FP32 but the values have been
    forced onto the 8-bit grid, exactly as in the paper's emulation framework.

    When ``scale`` is None the whole absmax → scale → round → rescale chain
    runs as one fused per-axis kernel call
    (:func:`repro.fp8.kernels.quantize_dequantize_axis`).

    Parameters
    ----------
    x:
        Input tensor.
    fmt:
        Target format.
    scale:
        Pre-computed scale; if ``None`` it is computed from ``x`` with max
        scaling (per-tensor if ``axis`` is None, per-channel otherwise).
        E5M2 conventionally uses ``scale=1`` (direct cast) — pass it explicitly.
    axis:
        Channel axis for per-channel scaling when ``scale`` is None.
    """
    fmt = _resolve(fmt)
    if scale is None:
        return kernels.quantize_dequantize_axis(x, fmt, axis=axis)
    scale = np.asarray(scale, dtype=np.float64)
    if kernels.get_active_kernel() != "reference":
        return kernels.quantize_dequantize_fused(x, fmt, scale)
    x = np.asarray(x, dtype=np.float64)
    q = fp8_round(x * scale, fmt)
    return (q / scale).astype(np.float32)


#: first-touch integrity hook for mmap-loaded checkpoint views.  ``None``
#: (a single global check on the decode path) until the serialization layer
#: registers lazily-verified spans, at which point the container module
#: assigns :func:`repro.serialization.container.verify_view` here — this
#: module never imports the serialization package.
_integrity_hook = None


def _verify_touch(*arrays) -> None:
    hook = _integrity_hook
    if hook is None:
        return
    for array in arrays:
        if isinstance(array, np.ndarray):
            hook(array)


@dataclass
class QuantizedTensor:
    """A tensor packed into real 8-bit storage together with its scale.

    ``codes`` holds one byte per element: raw FP8 codes (``uint8``) for FP8
    formats, signed integer codes (``int8``) for INT8 specs.  ``scale`` (and
    ``zero_point`` for asymmetric INT8) keep their reduced per-tensor or
    per-channel ``keepdims`` shape.  ``dequantize()`` re-materialises the
    float32 values through the fused decode → rescale kernel; the packed codes
    stay authoritative, so the float32 view can be recomputed (or dropped) at
    any time.  See the module docstring for the full memory model.
    """

    codes: np.ndarray
    scale: np.ndarray
    fmt: StorageFormat
    zero_point: Optional[np.ndarray] = None

    @property
    def is_fp8(self) -> bool:
        return isinstance(self.fmt, FP8Format)

    # ------------------------------------------------------------------
    # construction / round trip
    # ------------------------------------------------------------------
    @classmethod
    def quantize(
        cls,
        x: np.ndarray,
        fmt: AnyFormatLike,
        axis: Optional[Union[int, Sequence[int]]] = None,
        scale: Optional[np.ndarray] = None,
        absmax: Optional[np.ndarray] = None,
        zero_point: Optional[np.ndarray] = None,
        min_val: Optional[np.ndarray] = None,
        max_val: Optional[np.ndarray] = None,
    ) -> "QuantizedTensor":
        """Pack ``x`` into 8-bit codes through the fused per-axis kernels.

        The input stays in its native float width end to end (no float64 copy
        of the tensor is made) and the encode dispatches through the active
        kernel, consistent with :func:`quantize_dequantize`: for any input,
        ``QuantizedTensor.quantize(x, fmt, axis=a).dequantize()`` equals
        ``quantize_dequantize(x, fmt, axis=a)`` bit for bit (modulo the sign
        of zeros — see the module docstring).

        ``scale``/``absmax`` (FP8) or ``scale``+``zero_point`` /
        ``min_val``/``max_val`` (INT8) inject calibrated parameters; when
        omitted they are computed from ``x`` in the same fused call.
        """
        fmt = _resolve_storage(fmt)
        if isinstance(fmt, Int8Spec):
            codes, scale, zero_point = int8_quantize_channelwise(
                x,
                spec=fmt,
                axis=axis,
                scale=scale,
                zero_point=zero_point,
                min_val=min_val,
                max_val=max_val,
            )
            return cls(codes=codes, scale=scale, fmt=fmt, zero_point=zero_point)
        codes, scale = kernels.fp8_quantize_channelwise(
            x, fmt, axis=axis, absmax=absmax, scale=scale
        )
        return cls(codes=codes, scale=scale, fmt=fmt)

    def dequantize(self) -> np.ndarray:
        """Decode the packed codes back to float32 (fused decode → rescale).

        The first decode of an mmap-loaded tensor verifies its checkpoint
        spans' integrity digests (see
        :func:`repro.serialization.container.verify_view`) and raises
        :class:`~repro.serialization.container.ChecksumError` for a corrupt
        payload instead of silently decoding garbage.
        """
        _verify_touch(self.codes, self.scale, self.zero_point)
        if self.is_fp8:
            return kernels.fp8_dequantize_channelwise(self.codes, self.fmt, self.scale)
        return int8_dequantize_channelwise(self.codes, self.scale, self.zero_point)

    def dequantize_block(self, start: int, stop: int, axis: int = 0) -> np.ndarray:
        """Decode only codes ``[start:stop)`` along ``axis`` to float32.

        This is the streaming-serving primitive: a decode-on-the-fly matmul
        walks the packed weight in channel blocks, so at no point does a full
        dense float32 copy of the tensor exist — only ``stop - start``
        channels' worth of transient decode output.  Per-channel scales (and
        zero points) are sliced alongside the codes when they vary over
        ``axis``; the result is bit-identical to ``dequantize()[start:stop]``
        because decode → rescale is element-wise.
        """
        index = [slice(None)] * self.ndim
        index[axis] = slice(start, stop)
        index = tuple(index)
        codes = self.codes[index]

        def _slice_param(param: Optional[np.ndarray]) -> Optional[np.ndarray]:
            if param is None:
                return None
            param = np.asarray(param)
            if param.ndim == self.ndim and param.shape[axis] != 1:
                return param[index]
            return param

        scale = _slice_param(self.scale)
        zero_point = _slice_param(self.zero_point)
        _verify_touch(codes, scale, zero_point)
        if self.is_fp8:
            return kernels.fp8_dequantize_channelwise(codes, self.fmt, scale)
        return int8_dequantize_channelwise(codes, scale, zero_point)

    # ------------------------------------------------------------------
    # memory-mapped storage
    # ------------------------------------------------------------------
    @property
    def is_mapped(self) -> bool:
        """True if any component is a zero-copy view into an mmap-loaded file.

        Mapped components are read-only: in-place writes raise, and every
        mutation path in the library (re-``quantize``, :meth:`materialize`)
        allocates fresh private storage instead — copy-on-write at the
        granularity of the whole component.
        """
        return (
            is_memory_mapped(self.codes)
            or is_memory_mapped(self.scale)
            or is_memory_mapped(self.zero_point)
        )

    def materialize(self) -> "QuantizedTensor":
        """Replace mapped (or otherwise read-only) components with private copies.

        The explicit copy-on-write escape hatch for mmap-backed tensors: after
        this call every component owns writable RAM storage and the tensor no
        longer pins the checkpoint mapping.  A tensor that is already fully
        materialised is returned unchanged (no copies are made).
        """
        _verify_touch(self.codes, self.scale, self.zero_point)

        def _own(array: Optional[np.ndarray]) -> Optional[np.ndarray]:
            if array is None:
                return None
            array = np.asarray(array)
            if is_memory_mapped(array) or not array.flags.writeable:
                return np.array(array, copy=True)
            return array

        self.codes = _own(self.codes)
        self.scale = _own(self.scale)
        self.zero_point = _own(self.zero_point)
        return self

    # ------------------------------------------------------------------
    # shape / storage introspection
    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self.codes.shape

    @property
    def ndim(self) -> int:
        return self.codes.ndim

    @property
    def size(self) -> int:
        return int(self.codes.size)

    @property
    def dtype(self) -> np.dtype:
        """Storage dtype of the packed codes (uint8 for FP8, int8 for INT8)."""
        return self.codes.dtype

    @property
    def nbytes(self) -> int:
        """Total packed bytes at rest: codes + scale (+ zero point)."""
        total = self.codes.nbytes + np.asarray(self.scale).nbytes
        if self.zero_point is not None:
            total += np.asarray(self.zero_point).nbytes
        return int(total)

    @property
    def nbytes_dense(self) -> int:
        """Bytes the same tensor would occupy as dense float32."""
        return self.size * 4

    @property
    def compression_ratio(self) -> float:
        """Packed bytes as a fraction of dense float32 bytes (~0.25)."""
        return self.nbytes / self.nbytes_dense if self.size else 1.0

    # ------------------------------------------------------------------
    # state-dict round trip
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Serialise to plain numpy arrays (invertible via :meth:`from_state_dict`)."""
        state = {
            "codes": self.codes,
            "scale": np.asarray(self.scale),
            "format": np.asarray(self.fmt.name),
        }
        if self.zero_point is not None:
            state["zero_point"] = np.asarray(self.zero_point)
        return state

    @classmethod
    def from_state_dict(cls, state: Dict[str, np.ndarray]) -> "QuantizedTensor":
        """Rebuild a packed tensor from :meth:`state_dict` output."""
        fmt = _resolve_storage(str(state["format"]))
        codes = np.asarray(state["codes"], dtype=np.int8 if isinstance(fmt, Int8Spec) else np.uint8)
        return cls(
            codes=codes,
            scale=np.asarray(state["scale"], dtype=np.float64),
            fmt=fmt,
            zero_point=(
                np.asarray(state["zero_point"], dtype=np.int8)
                if "zero_point" in state
                else None
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantizedTensor(shape={self.codes.shape}, fmt={self.fmt.name}, "
            f"packed={self.nbytes}B, {self.compression_ratio:.2f}x of fp32)"
        )
