"""Vectorised FP8 rounding and scaled quantize/dequantize.

The rounding primitive dispatches between two interchangeable kernels (see
:mod:`repro.fp8.kernels`): the default ``fast`` bit-twiddling cast and the
table-based ``reference`` oracle, selectable via ``REPRO_FP8_KERNEL`` or
:func:`repro.fp8.kernels.set_kernel`.

The paper's quantization flow (Section 3.1) uses

* **per-tensor scaling for activations**, ``s = float_max / max_T`` (Eq. 2)
  where ``max_T`` is the calibrated absolute maximum of the tensor, and
* **per-channel scaling for weights**, the same formula applied per output
  channel.

``E5M2`` is used with *direct* quantization (scale = 1) because its dynamic
range is large enough to cover typical activations without calibration;
``E4M3``/``E3M4`` use max scaling.

All functions work on numpy arrays and emulate the FP8 cast by rounding the
scaled FP32 values onto the format's representable grid with
round-to-nearest-even and saturation to ``±max_value``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.fp8 import kernels
from repro.fp8.formats import FP8Format, get_format

__all__ = [
    "fp8_round",
    "compute_scale",
    "quantize_to_fp8",
    "quantize_dequantize",
    "QuantizedTensor",
]

FormatLike = Union[str, FP8Format]


def _resolve(fmt: FormatLike) -> FP8Format:
    if isinstance(fmt, FP8Format):
        return fmt
    return get_format(fmt)


def fp8_round(x: np.ndarray, fmt: FormatLike) -> np.ndarray:
    """Round ``x`` to the nearest representable value of ``fmt``.

    Implements round-to-nearest, ties-to-even-mantissa, with saturation:
    magnitudes above ``fmt.max_value`` are clamped to ``±max_value`` (this is
    the behaviour the paper relies on, since the scale maps the calibrated
    absmax exactly onto ``max_value``).  NaNs propagate; infinities saturate.

    Parameters
    ----------
    x:
        Input array (any shape, any float dtype).
    fmt:
        Target FP8 format or its name.

    Returns
    -------
    np.ndarray
        Array of the same shape with float32 values lying on the format grid.
    """
    fmt = _resolve(fmt)
    if kernels.get_active_kernel() == "fast":
        return kernels.fp8_round_fast(x, fmt)
    return kernels.fp8_round_reference(x, fmt)


def compute_scale(
    x: np.ndarray,
    fmt: FormatLike,
    axis: Optional[Union[int, Sequence[int]]] = None,
    absmax: Optional[np.ndarray] = None,
    eps: float = 1e-12,
) -> np.ndarray:
    """Compute the max-scaling factor ``s = float_max / max_T`` (paper Eq. 2).

    Parameters
    ----------
    x:
        Tensor used for calibration (ignored if ``absmax`` is given).
    fmt:
        Target FP8 format.
    axis:
        ``None`` for per-tensor scaling; otherwise the axes to *reduce over*
        are every axis **except** the listed channel axis/axes (i.e. passing
        ``axis=0`` gives one scale per index along dimension 0).
    absmax:
        Pre-computed calibrated absolute maximum (overrides ``x``).
    eps:
        Lower bound on the absmax to avoid division by zero.

    Returns
    -------
    np.ndarray
        Scale factor(s): scalar array for per-tensor, broadcastable array for
        per-channel.
    """
    fmt = _resolve(fmt)
    if absmax is None:
        x = np.asarray(x, dtype=np.float64)
        if axis is None:
            absmax = np.max(np.abs(x)) if x.size else np.asarray(0.0)
        else:
            channel_axes = (axis,) if isinstance(axis, int) else tuple(axis)
            channel_axes = tuple(a % x.ndim for a in channel_axes)
            reduce_axes = tuple(a for a in range(x.ndim) if a not in channel_axes)
            absmax = np.max(np.abs(x), axis=reduce_axes, keepdims=True)
    absmax = np.asarray(absmax, dtype=np.float64)
    absmax = np.maximum(absmax, eps)
    scale = fmt.max_value / absmax
    return scale


def quantize_to_fp8(
    x: np.ndarray,
    fmt: FormatLike,
    scale: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Quantize ``x`` into the FP8 grid (returns values still scaled by ``scale``).

    ``q = fp8_round(x * scale)``.  Use :func:`quantize_dequantize` for the
    round-trip used by emulated inference.
    """
    fmt = _resolve(fmt)
    x = np.asarray(x, dtype=np.float64)
    if scale is None:
        scale = np.asarray(1.0)
    return fp8_round(x * scale, fmt)


def quantize_dequantize(
    x: np.ndarray,
    fmt: FormatLike,
    scale: Optional[np.ndarray] = None,
    axis: Optional[Union[int, Sequence[int]]] = None,
) -> np.ndarray:
    """Emulated FP8 cast: scale, round onto the grid, then rescale back.

    This is the core Q/DQ primitive used by all quantized operators in
    :mod:`repro.quantization`: compute stays in FP32 but the values have been
    forced onto the 8-bit grid, exactly as in the paper's emulation framework.

    Parameters
    ----------
    x:
        Input tensor.
    fmt:
        Target format.
    scale:
        Pre-computed scale; if ``None`` it is computed from ``x`` with max
        scaling (per-tensor if ``axis`` is None, per-channel otherwise).
        E5M2 conventionally uses ``scale=1`` (direct cast) — pass it explicitly.
    axis:
        Channel axis for per-channel scaling when ``scale`` is None.
    """
    fmt = _resolve(fmt)
    if scale is None:
        scale = compute_scale(x, fmt, axis=axis)
    scale = np.asarray(scale, dtype=np.float64)
    if kernels.get_active_kernel() == "fast":
        return kernels.quantize_dequantize_fused(x, fmt, scale)
    x = np.asarray(x, dtype=np.float64)
    q = fp8_round(x * scale, fmt)
    return (q / scale).astype(np.float32)


@dataclass
class QuantizedTensor:
    """A tensor stored on the FP8 grid together with its scale.

    ``dequantize()`` returns ``values / scale``; ``values`` are FP32 numbers
    that lie exactly on the target format's grid (scaled domain).
    """

    values: np.ndarray
    scale: np.ndarray
    fmt: FP8Format

    @classmethod
    def quantize(
        cls,
        x: np.ndarray,
        fmt: FormatLike,
        axis: Optional[Union[int, Sequence[int]]] = None,
        scale: Optional[np.ndarray] = None,
    ) -> "QuantizedTensor":
        fmt = _resolve(fmt)
        if scale is None:
            scale = compute_scale(x, fmt, axis=axis)
        scale = np.asarray(scale, dtype=np.float64)
        values = fp8_round(np.asarray(x, dtype=np.float64) * scale, fmt)
        return cls(values=values, scale=scale, fmt=fmt)

    def dequantize(self) -> np.ndarray:
        return (self.values / self.scale).astype(np.float32)

    @property
    def shape(self):
        return self.values.shape

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QuantizedTensor(shape={self.values.shape}, fmt={self.fmt.name})"
