"""FP8 and INT8 numeric format emulation.

This package provides a bit-exact software emulation of the three 8-bit
floating point formats studied in the paper (E5M2, E4M3, E3M4, Table 1),
together with INT8 affine/symmetric quantization used as the baseline.

The emulation mirrors the approach of the FP8 Emulation Toolkit used by the
paper: *compute* stays in FP32, with values rounded onto the representable
grid of the target 8-bit format (with saturation and round-to-nearest-even)
whenever a tensor is "quantized" — but *storage* is real: the packed
:class:`~repro.fp8.quantize.QuantizedTensor` type holds raw one-byte codes
(uint8 FP8 codes or int8 integer codes) plus per-tensor/per-channel scales,
so a quantized weight costs ~0.25x its float32 bytes at rest (see the memory
model in :mod:`repro.fp8.quantize`).
"""

from repro.fp8.formats import (
    FP8Format,
    E5M2,
    E4M3,
    E3M4,
    E2M5,
    FORMAT_REGISTRY,
    get_format,
)
from repro.fp8.kernels import (
    KERNEL_ENV_VAR,
    VALID_KERNELS,
    channel_absmax,
    get_active_kernel,
    set_kernel,
    use_kernel,
)
from repro.fp8.quantize import (
    quantize_to_fp8,
    fp8_round,
    compute_scale,
    quantize_dequantize,
    QuantizedTensor,
    is_memory_mapped,
)
from repro.fp8.int8 import (
    Int8Spec,
    INT8_SYMMETRIC,
    INT8_ASYMMETRIC,
    INT8_SPEC_REGISTRY,
    int8_quantize_dequantize,
    int8_compute_qparams,
    int8_quantize_channelwise,
    int8_dequantize_channelwise,
)
from repro.fp8.density import (
    format_density,
    density_at,
    representable_count_in_range,
)

__all__ = [
    "FP8Format",
    "E5M2",
    "E4M3",
    "E3M4",
    "E2M5",
    "FORMAT_REGISTRY",
    "get_format",
    "KERNEL_ENV_VAR",
    "VALID_KERNELS",
    "channel_absmax",
    "get_active_kernel",
    "set_kernel",
    "use_kernel",
    "quantize_to_fp8",
    "fp8_round",
    "compute_scale",
    "quantize_dequantize",
    "QuantizedTensor",
    "is_memory_mapped",
    "Int8Spec",
    "INT8_SYMMETRIC",
    "INT8_ASYMMETRIC",
    "INT8_SPEC_REGISTRY",
    "int8_quantize_dequantize",
    "int8_compute_qparams",
    "int8_quantize_channelwise",
    "int8_dequantize_channelwise",
    "format_density",
    "density_at",
    "representable_count_in_range",
]
