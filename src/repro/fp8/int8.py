"""INT8 quantization baseline (symmetric and asymmetric/affine).

The paper compares FP8 against the production INT8 recipe: symmetric
per-channel weights, per-tensor activations (symmetric for CV, with dynamic
quantization for NLP activations).  This module provides the reference INT8
quantize/dequantize used by the INT8 baseline throughout the benchmarks.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Int8Spec",
    "INT8_SYMMETRIC",
    "INT8_ASYMMETRIC",
    "INT8_SPEC_REGISTRY",
    "int8_compute_qparams",
    "int8_quantize",
    "int8_dequantize",
    "int8_quantize_dequantize",
    "int8_quantize_channelwise",
    "int8_dequantize_channelwise",
]


@dataclass(frozen=True)
class Int8Spec:
    """Integer quantization specification.

    Parameters
    ----------
    name:
        Display name.
    symmetric:
        Symmetric (zero_point = 0, range [-127, 127]) or asymmetric/affine
        (zero_point chosen from the data range, range [-128, 127]).
    """

    name: str
    symmetric: bool

    @property
    def qmin(self) -> int:
        return -127 if self.symmetric else -128

    @property
    def qmax(self) -> int:
        return 127

    @property
    def num_levels(self) -> int:
        return self.qmax - self.qmin + 1

    def describe(self) -> dict:
        return {
            "format": self.name,
            "bits": 8,
            "symmetric": self.symmetric,
            "qmin": self.qmin,
            "qmax": self.qmax,
            "levels": self.num_levels,
        }


INT8_SYMMETRIC = Int8Spec(name="INT8", symmetric=True)
INT8_ASYMMETRIC = Int8Spec(name="INT8-asym", symmetric=False)

#: lookup by spec name, used by the packed-tensor state-dict round trip
INT8_SPEC_REGISTRY = {spec.name: spec for spec in (INT8_SYMMETRIC, INT8_ASYMMETRIC)}


def _reduce_axes(x: np.ndarray, axis: Optional[Union[int, Sequence[int]]]):
    # single source of truth for channel-axis inversion, shared with the FP8
    # fused kernels
    from repro.fp8.kernels import _channel_reduce_axes

    return _channel_reduce_axes(x.ndim, axis)


def int8_compute_qparams(
    x: np.ndarray,
    spec: Int8Spec = INT8_SYMMETRIC,
    axis: Optional[Union[int, Sequence[int]]] = None,
    min_val: Optional[np.ndarray] = None,
    max_val: Optional[np.ndarray] = None,
    eps: float = 1e-12,
) -> Tuple[np.ndarray, np.ndarray]:
    """Compute ``(scale, zero_point)`` from data (or calibrated min/max).

    Scale maps real values to the integer grid: ``q = round(x / scale) + zp``.
    For symmetric quantization ``scale = absmax / 127`` and ``zp = 0``.
    """
    x = np.asarray(x)
    reduce_axes = _reduce_axes(x, axis)
    if min_val is None or max_val is None:
        # reduce on the native dtype (min/max are exact in any float width) so
        # no full-size float64 copy of the tensor is ever materialised
        if reduce_axes is None:
            min_val = np.min(x) if x.size else np.asarray(0.0)
            max_val = np.max(x) if x.size else np.asarray(0.0)
        else:
            min_val = np.min(x, axis=reduce_axes, keepdims=True)
            max_val = np.max(x, axis=reduce_axes, keepdims=True)
    min_val = np.asarray(min_val, dtype=np.float64)
    max_val = np.asarray(max_val, dtype=np.float64)

    if spec.symmetric:
        absmax = np.maximum(np.abs(min_val), np.abs(max_val))
        scale = np.maximum(absmax, eps) / spec.qmax
        zero_point = np.zeros_like(scale)
    else:
        # affine: include zero in the range so that exact zeros stay exact.
        min_val = np.minimum(min_val, 0.0)
        max_val = np.maximum(max_val, 0.0)
        scale = np.maximum(max_val - min_val, eps) / (spec.qmax - spec.qmin)
        zero_point = np.round(spec.qmin - min_val / scale)
        zero_point = np.clip(zero_point, spec.qmin, spec.qmax)
    # same guard as the FP8 path (repro.fp8.kernels.absmax_to_scale): an
    # all-NaN channel yields a NaN scale that would poison the whole tensor
    finite = np.isfinite(scale)
    if not np.all(finite):
        warnings.warn(
            "non-finite scale in INT8 qparams (all-NaN or inf channel); "
            "affected scales fall back to 1.0",
            RuntimeWarning,
            stacklevel=2,
        )
        scale = np.where(finite, scale, 1.0)
        zero_point = np.where(finite, zero_point, 0.0)
    return scale, zero_point


def int8_quantize(
    x: np.ndarray,
    scale: np.ndarray,
    zero_point: np.ndarray,
    spec: Int8Spec = INT8_SYMMETRIC,
) -> np.ndarray:
    """Quantize to integer codes in ``[qmin, qmax]`` (round-half-to-even).

    Returns an ``np.int8`` array, as real INT8 storage would.  NaN inputs map
    deterministically to the zero-point code (the code that dequantizes to
    0.0); use :func:`int8_quantize_dequantize` if NaN propagation is needed.
    """
    # single fused pass: divide straight into a float64 buffer, then round,
    # shift and clip in place (the scale/zero_point broadcast — with keepdims
    # shape for per-channel — is never materialised to the tensor's shape)
    q = np.divide(x, scale, dtype=np.float64)
    np.rint(q, out=q)
    np.add(q, zero_point, out=q)
    np.clip(q, spec.qmin, spec.qmax, out=q)
    nan_mask = np.isnan(q)
    if np.any(nan_mask):
        q = np.where(nan_mask, np.broadcast_to(zero_point, q.shape), q)
    return q.astype(np.int8)


def int8_dequantize(
    q: np.ndarray,
    scale: np.ndarray,
    zero_point: np.ndarray,
) -> np.ndarray:
    """Map integer codes back to real values."""
    return ((np.asarray(q, dtype=np.float64) - zero_point) * scale).astype(np.float32)


def int8_quantize_dequantize(
    x: np.ndarray,
    spec: Int8Spec = INT8_SYMMETRIC,
    axis: Optional[Union[int, Sequence[int]]] = None,
    scale: Optional[np.ndarray] = None,
    zero_point: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Round-trip INT8 emulation (the INT8 analogue of FP8 Q/DQ).

    NaNs propagate through the round trip, matching the FP8 Q/DQ path.
    """
    if scale is None or zero_point is None:
        scale, zero_point = int8_compute_qparams(x, spec=spec, axis=axis)
    q = int8_quantize(x, scale, zero_point, spec=spec)
    out = int8_dequantize(q, scale, zero_point)
    nan_mask = np.isnan(x)
    if np.any(nan_mask):
        out = np.where(nan_mask, np.float32(np.nan), out).astype(np.float32)
    return out


def int8_quantize_channelwise(
    x: np.ndarray,
    spec: Int8Spec = INT8_SYMMETRIC,
    axis: Optional[Union[int, Sequence[int]]] = None,
    scale: Optional[np.ndarray] = None,
    zero_point: Optional[np.ndarray] = None,
    min_val: Optional[np.ndarray] = None,
    max_val: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fused min/max → qparams → encode (the INT8 analogue of the FP8 path).

    One reduction pass plus one in-place quantize pass; returns
    ``(codes, scale, zero_point)`` with ``codes`` and ``zero_point`` stored as
    ``np.int8`` (the zero point is integral by construction) and the qparams
    in their reduced ``keepdims`` shape (never broadcast to the tensor's
    shape).  NaN inputs land on the zero-point code, i.e. they dequantize to
    exactly 0.0 — packed storage has no NaN representation.
    """
    if scale is None:
        scale, zero_point = int8_compute_qparams(
            x, spec=spec, axis=axis, min_val=min_val, max_val=max_val
        )
    elif zero_point is None:
        # an injected scale without a zero point means symmetric semantics
        zero_point = np.zeros_like(np.asarray(scale, dtype=np.float64))
    codes = int8_quantize(x, scale, zero_point, spec=spec)
    return (
        codes,
        np.asarray(scale, dtype=np.float64),
        np.asarray(zero_point).astype(np.int8),
    )


def int8_dequantize_channelwise(
    codes: np.ndarray, scale: np.ndarray, zero_point: np.ndarray
) -> np.ndarray:
    """Fused decode → rescale: one widening subtract plus one broadcast multiply."""
    out = np.subtract(codes, zero_point, dtype=np.float64)
    np.multiply(out, scale, out=out)
    return out.astype(np.float32, copy=False)
