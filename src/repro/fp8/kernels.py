"""FP8 cast kernels: bit-twiddling fast path + table-based reference oracle.

The emulated FP8 cast is the innermost primitive of the whole reproduction:
every Q/DQ-wrapped operator, every MSE/KL threshold-search iteration and every
benchmark sweep funnels through :func:`repro.fp8.quantize.fp8_round`.  The
original implementation resolved each element with a ``searchsorted`` against
the 256-entry table of representable values in float64 — correct, but ~10
temporaries and a binary search per element.  This module provides an
O(1)-per-element replacement that manipulates IEEE-754 bit patterns directly,
plus the original table-based implementation kept verbatim as the oracle the
fast path is tested against.

Kernel dispatch
---------------
Three kernels are registered:

``fast`` (default)
    Direct IEEE-754 bit manipulation on float32 (or float64) views: exponent
    clamp + saturation against the format's ``max_value`` bit pattern,
    subnormal flush-to-grid with an explicit leading bit, and mantissa
    round-to-nearest-even implemented as an integer rounding-bias add.
    Decoding uses a 256-entry code→value lookup table.  Bit-exact against the
    reference on every input (including NaN/±inf/±0/subnormals and ties).

``reference``
    The original table-``searchsorted`` implementation — slow but transparent;
    serves as the oracle in ``tests/fp8/test_kernels.py``.

``native``
    Compiled fused C kernels (:mod:`repro.fp8.native`): the decode → rescale
    chain runs as one ``cc``-compiled ctypes call instead of four numpy
    passes, bit-identical to ``fast`` by construction.  Encode/round paths
    are shared with ``fast`` (they are already single fused numpy passes).
    When no C compiler is present :func:`get_active_kernel` resolves
    ``native`` to ``fast`` automatically — one warning, then silence — so
    selecting ``native`` is always safe.

Selection, in precedence order:

1. :func:`set_kernel` / :class:`use_kernel` (programmatic override),
2. the ``REPRO_FP8_KERNEL`` environment variable
   (``fast`` | ``reference`` | ``native``),
3. the default, ``fast``.

The programmatic override is **thread-local**: ``set_kernel``/``use_kernel``
affect only the calling thread, so ``ServingEngine`` worker threads and
concurrent tests can toggle kernels without racing each other.  Threads that
never set an override (including worker threads spawned inside a
``use_kernel`` block — thread-locals do not inherit) fall through to the
environment variable, which is the process-wide switch.  This is safe by
construction: every tier is bit-identical on the decode paths, so a worker
resolving a different tier than its spawner produces the same bits.

``benchmarks/bench_kernel_throughput.py`` records elements/sec for the numpy
kernels and ``benchmarks/bench_native_kernels.py`` gates the native tier.

Bit-twiddling notes
-------------------
For an input float of width ``W`` with ``F`` mantissa bits and exponent bias
``B`` (``F=23, B=127`` for float32; ``F=52, B=1023`` for float64) and a target
format with ``m`` mantissa bits and bias ``b``:

* magnitudes are clamped against the bit pattern of ``max_value`` *before*
  rounding (bit patterns of same-sign IEEE floats order like integers), which
  implements saturation exactly like the reference's pre-round clip and also
  saturates infinities;
* normal results round in place: add ``2**(F-m-1) - 1 + lsb`` to the magnitude
  bits and truncate the low ``F-m`` bits — the carry of a mantissa overflow
  propagates into the exponent field, which is exactly the IEEE rollover to
  the next binade, and the ``lsb`` term turns truncation into
  round-half-to-even;
* subnormal results (input exponent below ``1-b``) make the implicit leading
  one explicit and shift further right so the retained integer counts
  multiples of ``min_subnormal``; the same rounding-bias add applies, and a
  full carry (``2**m``) lands on ``min_normal``'s code automatically;
* the integer adds are exact, so unlike "renormalize by adding min_normal"
  float tricks there is no double rounding anywhere.
"""

from __future__ import annotations

import os
import threading
import warnings
from contextlib import contextmanager
from functools import lru_cache
from typing import Iterator, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

from repro.fp8.formats import FP8Format

__all__ = [
    "KERNEL_ENV_VAR",
    "VALID_KERNELS",
    "get_active_kernel",
    "set_kernel",
    "use_kernel",
    "fp8_round_fast",
    "fp8_round_reference",
    "fp8_encode_fast",
    "fp8_encode_reference",
    "fp8_decode_fast",
    "fp8_decode_reference",
    "quantize_dequantize_fused",
    "channel_absmax",
    "absmax_to_scale",
    "fp8_quantize_channelwise",
    "fp8_dequantize_channelwise",
    "quantize_dequantize_axis",
]

AxisLike = Optional[Union[int, Sequence[int]]]

KERNEL_ENV_VAR = "REPRO_FP8_KERNEL"
VALID_KERNELS = ("fast", "reference", "native")

#: per-thread programmatic override; ``.name`` is unset until the thread calls
#: :func:`set_kernel` / :func:`use_kernel` (thread-locals do not inherit, so a
#: worker thread spawned inside a ``use_kernel`` block sees the env/default)
_kernel_override = threading.local()


def _validate(name: str) -> str:
    name = name.strip().lower()
    if name not in VALID_KERNELS:
        raise ValueError(f"unknown FP8 kernel {name!r}; valid kernels: {', '.join(VALID_KERNELS)}")
    return name


def get_active_kernel() -> str:
    """Return the selected kernel name, resolved to a usable tier.

    Precedence: this thread's programmatic override, then the
    ``REPRO_FP8_KERNEL`` environment variable, then ``"fast"``.  A ``native``
    selection resolves to ``"fast"`` when no C compiler is available (the
    runtime warns once per process), so callers can branch on the returned
    name without re-checking availability.
    """
    name = getattr(_kernel_override, "name", None)
    if name is None:
        env = os.environ.get(KERNEL_ENV_VAR, "").strip()
        name = _validate(env) if env else "fast"
    if name == "native":
        from repro.fp8 import native

        if not native.native_available():
            return "fast"
    return name


def set_kernel(name: Optional[str]) -> None:
    """Override the active kernel for the calling thread (``None`` restores env/default)."""
    _kernel_override.name = None if name is None else _validate(name)


@contextmanager
def use_kernel(name: str) -> Iterator[None]:
    """Context manager that temporarily selects a kernel in the calling thread."""
    previous = getattr(_kernel_override, "name", None)
    _kernel_override.name = _validate(name)
    try:
        yield
    finally:
        _kernel_override.name = previous


# ======================================================================
# Reference kernel (table-based oracle; the original implementation)
# ======================================================================
def fp8_round_reference(x: np.ndarray, fmt: FP8Format) -> np.ndarray:
    """Table-``searchsorted`` round-to-nearest-even onto the format grid."""
    x = np.asarray(x, dtype=np.float64)
    out_shape = x.shape
    flat = x.reshape(-1)

    table = fmt.positive_values
    lsb = fmt.mantissa_lsbs

    sign = np.sign(flat)
    sign = np.where(sign == 0, 1.0, sign)
    mags = np.abs(flat)
    finite = np.isfinite(mags)
    mags_clipped = np.clip(np.where(finite, mags, 0.0), 0.0, fmt.max_value)

    # nearest-value lookup: idx is the insertion point, candidates are idx-1/idx
    idx = np.searchsorted(table, mags_clipped)
    hi = np.clip(idx, 0, table.size - 1)
    lo = np.clip(idx - 1, 0, table.size - 1)
    d_hi = np.abs(table[hi] - mags_clipped)
    d_lo = np.abs(mags_clipped - table[lo])

    take_lo = d_lo < d_hi
    take_hi = d_hi < d_lo
    tie = ~take_lo & ~take_hi
    # ties-to-even: prefer the candidate whose mantissa LSB is 0
    tie_take_lo = tie & (lsb[lo] == 0)
    choose_lo = take_lo | tie_take_lo
    chosen = np.where(choose_lo, table[lo], table[hi])

    result = sign * chosen
    # saturate infinities, propagate NaN
    result = np.where(np.isinf(flat), np.sign(flat) * fmt.max_value, result)
    result = np.where(np.isnan(flat), np.nan, result)
    return result.reshape(out_shape).astype(np.float32)


def fp8_encode_reference(x: np.ndarray, fmt: FP8Format) -> np.ndarray:
    """Reference encoder: reference round, then a ``searchsorted`` code lookup."""
    x = np.asarray(x, dtype=np.float64)
    rounded = fp8_round_reference(x, fmt)
    sign = (np.signbit(rounded) | ((rounded == 0) & np.signbit(x))).astype(np.int64)
    mags = np.abs(rounded)
    table = fmt.positive_values
    idx = np.searchsorted(table, mags)
    idx = np.clip(idx, 0, table.size - 1)
    # searchsorted returns the left insertion point; the rounded value is
    # exactly on the grid so at most one step correction is required.
    mismatch = table[idx] != mags
    idx = np.where(mismatch & (idx > 0) & (table[np.maximum(idx - 1, 0)] == mags), idx - 1, idx)
    codes = fmt.codes[idx]
    out = (sign << 7) | codes
    nan_mask = np.isnan(x)
    if np.any(nan_mask):
        out = np.where(nan_mask, fmt.nan_code, out)
    return out.astype(np.uint8)


def fp8_decode_reference(codes: np.ndarray, fmt: FP8Format) -> np.ndarray:
    """Reference decoder: reconstruct values field-by-field from the raw codes."""
    codes = np.asarray(codes, dtype=np.int64)
    sign = (codes >> 7) & 1
    mag_code = codes & 0x7F
    m = fmt.mantissa_bits
    exp_field = mag_code >> m
    mant_field = mag_code & (2**m - 1)

    subnormal = exp_field == 0
    value = np.where(
        subnormal,
        2.0 ** (1 - fmt.bias) * (mant_field / 2**m),
        2.0 ** (exp_field.astype(np.float64) - fmt.bias) * (1.0 + mant_field / 2**m),
    )
    if fmt.ieee_like:
        special = exp_field == fmt.exponent_all_ones
        inf_mask = special & (mant_field == 0)
        nan_mask = special & (mant_field != 0)
        value = np.where(inf_mask, np.inf, value)
        value = np.where(nan_mask, np.nan, value)
    else:
        nan_mask = (exp_field == fmt.exponent_all_ones) & (mant_field == 2**m - 1)
        value = np.where(nan_mask, np.nan, value)
    value = np.where(sign == 1, -value, value)
    return value.astype(np.float32)


# ======================================================================
# Fast kernel (direct IEEE-754 bit manipulation)
# ======================================================================
class _Consts(NamedTuple):
    """Precomputed per-(format, float width) bit-twiddling constants."""

    float_t: type
    int_t: type
    F: int                # input mantissa bits (23 / 52)
    sign_mask: int        # the sign bit (as a negative python int of the right width)
    abs_mask: int         # clears the sign bit
    inf_bits: int         # magnitude bit pattern of +inf
    m: int                # target mantissa bits
    shift: int            # F - m: bits dropped for normal results
    round_bias: int       # 2**(shift-1) - 1
    drop_mask: int        # clears the dropped low bits
    e_min: int            # smallest biased input exponent with a normal result
    e_off: int            # input bias - target bias (exponent re-bias)
    mant_mask: int        # input mantissa field mask
    implicit: int         # input implicit leading one (1 << F)
    mant_out_mask: int    # target mantissa field mask
    sub_shift_cap: int    # F + 2: beyond this every magnitude rounds to zero
    min_normal_bits: int  # magnitude bit pattern of fmt.min_normal
    max_bits: int         # magnitude bit pattern of fmt.max_value
    min_sub: float        # fmt.min_subnormal in the input float type
    nan_code: int


_WIDTH_PARAMS = {
    32: (np.float32, np.int32, 23, 127, 0x7FFFFFFF, 0x7F800000),
    64: (np.float64, np.int64, 52, 1023, 0x7FFFFFFFFFFFFFFF, 0x7FF0000000000000),
}


@lru_cache(maxsize=None)
def _consts(fmt: FP8Format, width: int) -> _Consts:
    float_t, int_t, F, bias_f, abs_mask, inf_bits = _WIDTH_PARAMS[width]
    m = fmt.mantissa_bits
    shift = F - m
    e_min = bias_f + 1 - fmt.bias
    return _Consts(
        float_t=float_t,
        int_t=int_t,
        F=F,
        sign_mask=~abs_mask,
        abs_mask=abs_mask,
        inf_bits=inf_bits,
        m=m,
        shift=shift,
        round_bias=(1 << (shift - 1)) - 1,
        drop_mask=abs_mask ^ ((1 << shift) - 1),
        e_min=e_min,
        e_off=bias_f - fmt.bias,
        mant_mask=(1 << F) - 1,
        implicit=1 << F,
        mant_out_mask=(1 << m) - 1,
        sub_shift_cap=F + 2,
        min_normal_bits=e_min << F,
        max_bits=int(np.abs(np.asarray(fmt.max_value, dtype=float_t)).view(int_t)),
        min_sub=float_t(fmt.min_subnormal),
        nan_code=fmt.nan_code,
    )


def _as_kernel_input(x: np.ndarray) -> np.ndarray:
    """float32 inputs run through the 32-bit kernel, everything else via float64."""
    x = np.asarray(x)
    if x.dtype == np.float32:
        return x
    return np.asarray(x, dtype=np.float64)


def _clamp_and_round(bits: np.ndarray, c: _Consts):
    """Shared core: clamp magnitudes and RNE-round the normal-result region.

    Returns ``(mag, rounded, nan_mask, sub)``: the clamped magnitude bits, the
    rounded magnitude bits (valid where ``~sub``; normal-path RNE via a
    rounding-bias add whose mantissa carry rolls the exponent), the NaN mask
    and the subnormal-result mask.  All intermediates reuse two buffers.
    """
    mag = bits & c.abs_mask
    nan_mask = mag > c.inf_bits
    np.minimum(mag, c.max_bits, out=mag)  # saturation (+inf incl.): bit patterns order like ints
    sub = mag < c.min_normal_bits
    rounded = np.right_shift(mag, c.shift)
    np.bitwise_and(rounded, 1, out=rounded)          # RNE lsb term
    np.add(rounded, c.round_bias, out=rounded)
    np.add(rounded, mag, out=rounded)
    np.bitwise_and(rounded, c.drop_mask, out=rounded)
    return mag, rounded, nan_mask, sub


def _subnormal_grid(mag_sub: np.ndarray, c: _Consts) -> np.ndarray:
    """Round magnitudes below ``min_normal`` to integer multiples of ``min_subnormal``.

    Makes the implicit leading one explicit and shifts deeper than the normal
    path so the retained integer counts grid steps; the same rounding-bias add
    applies, and a full carry (``2**m``) is exactly ``min_normal``'s code.
    """
    sub_shift = np.minimum(c.shift + (c.e_min - (mag_sub >> c.F)), c.sub_shift_cap)
    sig = (mag_sub & c.mant_mask) | c.implicit
    return (sig + (((1 << (sub_shift - 1)) - 1) + ((sig >> sub_shift) & 1))) >> sub_shift


def _rounded_values(flat: np.ndarray, c: _Consts) -> np.ndarray:
    """Signed rounded values for a flat float array (shared by round and Q/DQ)."""
    bits = flat.view(c.int_t)
    mag, rounded, nan_mask, sub = _clamp_and_round(bits, c)
    value = rounded.view(c.float_t)
    if sub.any():
        value[sub] = _subnormal_grid(mag[sub], c).astype(c.float_t) * c.min_sub
    # reapply the sign in integer space; masking zero magnitudes reproduces the
    # reference's normalisation of -0.0 inputs to +0.0 (negative values that
    # flush to zero keep their sign and come out as -0.0).
    sign = bits & c.sign_mask
    np.multiply(sign, mag != 0, out=sign)
    np.bitwise_or(rounded, sign, out=rounded)
    if nan_mask.any():
        value[nan_mask] = np.nan
    return value


def fp8_round_fast(x: np.ndarray, fmt: FP8Format) -> np.ndarray:
    """Bit-twiddling round-to-nearest-even onto the format grid (fast kernel)."""
    x = _as_kernel_input(x)
    c = _consts(fmt, 32 if x.dtype == np.float32 else 64)
    value = _rounded_values(np.ravel(x), c)
    return value.astype(np.float32, copy=False).reshape(x.shape)


def fp8_encode_fast(x: np.ndarray, fmt: FP8Format) -> np.ndarray:
    """Bit-twiddling encoder to raw 8-bit codes (sign<<7 | magnitude code)."""
    x = _as_kernel_input(x)
    c = _consts(fmt, 32 if x.dtype == np.float32 else 64)
    flat = np.ravel(x)
    bits = flat.view(c.int_t)
    mag, rounded, nan_mask, sub = _clamp_and_round(bits, c)
    code = ((rounded >> c.F) - c.e_off) << c.m
    code |= (rounded >> c.shift) & c.mant_out_mask
    if sub.any():
        code[sub] = _subnormal_grid(mag[sub], c)
    code[bits < 0] |= 0x80
    if nan_mask.any():
        code[nan_mask] = c.nan_code
    return code.astype(np.uint8).reshape(x.shape)


@lru_cache(maxsize=None)
def _decode_lut(fmt: FP8Format) -> np.ndarray:
    """256-entry code→value table, built once from the reference decoder."""
    lut = fp8_decode_reference(np.arange(256, dtype=np.int64), fmt)
    lut.setflags(write=False)
    return lut


def fp8_decode_fast(codes: np.ndarray, fmt: FP8Format) -> np.ndarray:
    """LUT decoder: one gather per element."""
    codes = np.asarray(codes, dtype=np.int64) & 0xFF
    return _decode_lut(fmt)[codes]


def quantize_dequantize_fused(x: np.ndarray, fmt: FP8Format, scale: np.ndarray) -> np.ndarray:
    """Fused scale → bit-round → rescale Q/DQ round trip.

    Bit-identical to the reference ``fp8_round(x * scale) / scale`` pipeline
    (the scaled product and the rescale both stay in float64) but with the
    rounding done by the fast kernel and the rescale applied in place, so the
    whole round trip allocates a handful of buffers instead of the reference
    path's dozen temporaries.
    """
    scaled = np.multiply(x, scale, dtype=np.float64)
    c = _consts(fmt, 64)
    value = _rounded_values(np.ravel(scaled), c).reshape(scaled.shape)
    np.divide(value, scale, out=value)
    return value.astype(np.float32, copy=False)


# ======================================================================
# Fused per-axis (channelwise) kernels
# ======================================================================
# These are the one-call-per-operator entry points used by the packed storage
# subsystem (:class:`repro.fp8.quantize.QuantizedTensor`) and the quantized
# operator wrappers.  Each call performs the whole absmax → scale → encode (or
# decode → rescale) chain in a single pass over the tensor; the per-channel
# scale keeps its reduced ``keepdims`` shape end to end and is only ever
# *broadcast* against the data (numpy broadcasting allocates nothing), never
# materialised into a full-size scale array.


def _channel_reduce_axes(ndim: int, axis: AxisLike) -> Optional[Tuple[int, ...]]:
    """Axes to reduce over so that only the channel axis/axes survive."""
    if axis is None:
        return None
    channel_axes = (axis,) if isinstance(axis, int) else tuple(axis)
    channel_axes = tuple(a % ndim for a in channel_axes)
    return tuple(a for a in range(ndim) if a not in channel_axes)


def channel_absmax(x: np.ndarray, axis: AxisLike = None) -> np.ndarray:
    """Absolute maximum reduced over every axis except the channel axis/axes.

    Per-tensor (``axis=None``) returns a scalar array; per-channel returns a
    ``keepdims`` array broadcastable against ``x``.  The reduction runs on the
    input's native dtype (max of |x| is exact in any float width) and only the
    reduced result is promoted to float64.
    """
    x = np.asarray(x)
    reduce_axes = _channel_reduce_axes(x.ndim, axis)
    if reduce_axes is None and axis is None:
        absmax = np.max(np.abs(x)) if x.size else np.asarray(0.0)
    else:
        absmax = np.max(np.abs(x), axis=reduce_axes, keepdims=True)
    return np.asarray(absmax, dtype=np.float64)


def absmax_to_scale(absmax: np.ndarray, max_value: float, eps: float = 1e-12) -> np.ndarray:
    """Map calibrated absmax values onto scales, ``s = max_value / absmax``.

    The absmax is clamped from below by ``eps`` so all-zero tensors/channels
    get a finite scale.  A *non-finite* absmax (an all-NaN channel, or an inf
    produced by overflowed calibration) would otherwise poison every element
    that shares the scale; those entries map to scale 1.0 with a warning so
    the damage stays confined to the already-broken channel.
    """
    absmax = np.asarray(absmax, dtype=np.float64)
    scale = max_value / np.maximum(absmax, eps)
    finite = np.isfinite(absmax)
    if not np.all(finite):
        warnings.warn(
            "non-finite absmax in scale computation (all-NaN or inf channel); "
            "affected scales fall back to 1.0",
            RuntimeWarning,
            stacklevel=2,
        )
        scale = np.where(finite, scale, 1.0)
    return scale


def fp8_quantize_channelwise(
    x: np.ndarray,
    fmt: FP8Format,
    axis: AxisLike = None,
    absmax: Optional[np.ndarray] = None,
    scale: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fused absmax → scale → encode: one reduction plus one encode pass.

    Returns ``(codes, scale)``: packed uint8 codes of ``x * scale`` and the
    float64 scale actually used (scalar for per-tensor, ``keepdims``-shaped
    for per-channel).  The scaled product is formed in float64 via a single
    broadcast multiply, exactly like :func:`quantize_dequantize_fused`, so
    ``decode(codes) / scale`` is bit-identical to the Q/DQ round trip.
    """
    if scale is None:
        if absmax is None:
            absmax = channel_absmax(x, axis)
        scale = absmax_to_scale(absmax, fmt.max_value)
    else:
        scale = np.asarray(scale, dtype=np.float64)
    scaled = np.multiply(x, scale, dtype=np.float64)
    # the native tier shares the fast encoder (encode is already one fused pass)
    if get_active_kernel() != "reference":
        codes = fp8_encode_fast(scaled, fmt)
    else:
        codes = fp8_encode_reference(scaled, fmt)
    return codes, scale


def fp8_dequantize_channelwise(codes: np.ndarray, fmt: FP8Format, scale: np.ndarray) -> np.ndarray:
    """Fused decode → rescale: one gather plus one broadcast divide.

    Inverse of :func:`fp8_quantize_channelwise`; the divide happens in float64
    against the broadcast (never materialised) scale and the result is cast
    to float32, matching the fused Q/DQ pipeline bit for bit.  Under the
    ``native`` tier the whole chain runs as a single compiled C pass
    (bit-identical by construction); layouts the C kernels do not cover fall
    back to the numpy path transparently.
    """
    kernel = get_active_kernel()
    if kernel == "native":
        from repro.fp8 import native

        out = native.decode_rescale(np.asarray(codes), fmt, np.asarray(scale))
        if out is not None:
            return out
        kernel = "fast"
    if kernel != "reference":
        values = fp8_decode_fast(codes, fmt)
    else:
        values = fp8_decode_reference(codes, fmt)
    out = np.divide(values, scale, dtype=np.float64)
    return out.astype(np.float32, copy=False)


def quantize_dequantize_axis(
    x: np.ndarray,
    fmt: FP8Format,
    axis: AxisLike = None,
    absmax: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Fused absmax → scale → round → rescale in a single call.

    The per-operator activation/weight Q/DQ entry point: replaces the old
    two-step ``compute_scale`` + ``quantize_dequantize`` sequence (which
    re-walked the tensor once per step) with one reduction and one fused
    round-trip, and never materialises a broadcast scale array.  Bit-identical
    to the unfused sequence on both kernels.
    """
    if absmax is None:
        absmax = channel_absmax(x, axis)
    scale = absmax_to_scale(absmax, fmt.max_value)
    # native shares the fast fused round trip (round/rescale is compute-bound
    # in the float64 bit-twiddling, not in temporaries)
    if get_active_kernel() != "reference":
        return quantize_dequantize_fused(x, fmt, scale)
    scaled = np.multiply(x, scale, dtype=np.float64)
    q = fp8_round_reference(scaled, fmt)
    return (q / scale).astype(np.float32)
