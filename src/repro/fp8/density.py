"""Representable-value density analysis (paper Appendix A.1).

The appendix derives the density of representable values of an ``E(e)M(m)``
format around a magnitude ``N``:

    D_{E(e)M(m)}(N) = 2 ** (m - floor(log2 N))          (Eq. 4)

i.e. FP8 grids are denser near zero and geometrically sparser for larger
magnitudes, in contrast to INT8's uniform grid.  These helpers are used by the
Appendix A.1 benchmark and by the mixed-format heuristics.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.fp8.formats import FP8Format, get_format

__all__ = ["density_at", "format_density", "representable_count_in_range", "int8_density"]

FormatLike = Union[str, FP8Format]


def _resolve(fmt: FormatLike) -> FP8Format:
    return fmt if isinstance(fmt, FP8Format) else get_format(fmt)


def density_at(fmt: FormatLike, value: Union[float, np.ndarray]) -> np.ndarray:
    """Analytic density ``2**(m - floor(log2 |N|))`` of ``fmt`` at ``value``.

    The density is the number of representable values per unit interval in the
    binade containing ``value`` (paper Eq. 4).  Values of zero return the
    density of the subnormal range.
    """
    fmt = _resolve(fmt)
    value = np.abs(np.asarray(value, dtype=np.float64))
    value = np.maximum(value, fmt.min_subnormal)
    exponent = np.floor(np.log2(value))
    return 2.0 ** (fmt.mantissa_bits - exponent)


def format_density(fmt: FormatLike, grid: np.ndarray) -> np.ndarray:
    """Empirical density: representable values per unit length around each grid point.

    Computed from the actual value table (including subnormals), as the
    reciprocal of the local spacing of the format grid.  Useful for checking
    the analytic expression of :func:`density_at`.
    """
    fmt = _resolve(fmt)
    grid = np.asarray(grid, dtype=np.float64)
    values = fmt.positive_values
    idx = np.clip(np.searchsorted(values, np.abs(grid)), 1, values.size - 1)
    spacing = values[idx] - values[idx - 1]
    spacing = np.maximum(spacing, np.finfo(np.float64).tiny)
    return 1.0 / spacing


def representable_count_in_range(fmt: FormatLike, lo: float, hi: float) -> int:
    """Number of representable values of ``fmt`` inside ``[lo, hi]``."""
    fmt = _resolve(fmt)
    if hi < lo:
        raise ValueError(f"invalid range [{lo}, {hi}]")
    values = fmt.all_values
    return int(np.count_nonzero((values >= lo) & (values <= hi)))


def int8_density(absmax: float, num_levels: int = 255) -> float:
    """Uniform INT8 grid density for a symmetric range ``[-absmax, absmax]``."""
    if absmax <= 0:
        raise ValueError("absmax must be positive")
    return num_levels / (2.0 * absmax)
