"""Compile and load rendered FP8 kernels (the runtime half of the tier).

The runtime takes C source from :mod:`repro.fp8.native.codegen`, compiles it
with the system C compiler (``cc -O2 -shared -fPIC``), caches the shared
object on disk keyed by a hash of the rendered source (plus the compiler
identity and flags), and loads it through :mod:`ctypes`.  Repeat processes
therefore pay **zero** compile cost: the hash lookup finds the ``.so`` from a
previous run and goes straight to ``CDLL``.

Configuration
-------------
``REPRO_NATIVE_CC``
    Compiler executable (default: ``cc`` found on ``PATH``).  Pointing this
    at a non-existent binary disables the tier — used by CI to prove the
    fallback path.
``REPRO_NATIVE_CACHE``
    Disk cache directory for compiled shared objects (default:
    ``~/.cache/repro/native``).  Entries are keyed by source hash, so the
    cache invalidates itself whenever the renderer, the format tables or the
    compile flags change the rendered source — stale entries are never
    loaded, merely orphaned (safe to delete the directory at any time).

Fallback contract
-----------------
Every public accessor returns ``None`` instead of raising when the tier is
unavailable (no compiler, compile failure, unwritable cache dir): callers
fall back to the numpy ``fast`` path and the process keeps working.  The
first failure warns once per process with the reason; subsequent calls are
silent and cheap (a memoised ``None``).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
import warnings
from typing import Dict, Optional, Tuple

from repro.fp8.formats import FP8Format
from repro.fp8.native.codegen import (
    GENERIC_ROWS,
    KERNEL_SYMBOL,
    render_decode_kernel,
    render_fma_kernel,
)

__all__ = [
    "CC_ENV_VAR",
    "CACHE_ENV_VAR",
    "CFLAGS",
    "native_available",
    "compiler_path",
    "cache_dir",
    "decode_kernel",
    "fma_kernel",
    "reset",
]

CC_ENV_VAR = "REPRO_NATIVE_CC"
CACHE_ENV_VAR = "REPRO_NATIVE_CACHE"

#: compile flags; part of the disk-cache key so flag changes re-compile
CFLAGS = ("-O2", "-shared", "-fPIC")

_lock = threading.RLock()
#: memoised compiler path: unset sentinel -> str path -> or None (unavailable)
_compiler: object = ...
#: loaded kernels keyed by source hash; None entries memoise compile failures
_kernels: Dict[str, Optional[ctypes.CFUNCTYPE]] = {}
_warned: set = set()


def _warn_once(key: str, message: str) -> None:
    if key not in _warned:
        _warned.add(key)
        warnings.warn(message, RuntimeWarning, stacklevel=4)


def compiler_path() -> Optional[str]:
    """The C compiler executable, or ``None`` when the tier is unavailable."""
    global _compiler
    with _lock:
        if _compiler is ...:
            cc = os.environ.get(CC_ENV_VAR, "").strip() or "cc"
            _compiler = shutil.which(cc)
            if _compiler is None:
                _warn_once(
                    "no-compiler",
                    f"no C compiler found ({cc!r}); the native FP8 kernel tier is "
                    "disabled and REPRO_FP8_KERNEL=native falls back to the numpy "
                    "fast kernels",
                )
        return _compiler


def native_available() -> bool:
    """True when a C compiler is present (the native tier can be used)."""
    return compiler_path() is not None


def cache_dir() -> str:
    """The on-disk shared-object cache directory (created on demand)."""
    path = os.environ.get(CACHE_ENV_VAR, "").strip()
    if not path:
        path = os.path.join(
            os.environ.get("XDG_CACHE_HOME") or os.path.expanduser("~/.cache"),
            "repro",
            "native",
        )
    return path


def _source_key(source: str, cc: str) -> str:
    payload = "\0".join([source, cc, " ".join(CFLAGS)])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


def _compile_to_cache(source: str, cc: str, key: str) -> Optional[str]:
    """Compile ``source`` into the disk cache; returns the .so path or None."""
    directory = cache_dir()
    so_path = os.path.join(directory, f"{key}.so")
    if os.path.exists(so_path):
        return so_path
    try:
        os.makedirs(directory, exist_ok=True)
        src_path = os.path.join(directory, f"{key}.c")
        with open(src_path, "w", encoding="utf-8") as fh:
            fh.write(source)
        # compile to a private temp name, then publish atomically so a
        # concurrent process never loads a half-written shared object
        fd, tmp_path = tempfile.mkstemp(suffix=".so", dir=directory)
        os.close(fd)
        try:
            proc = subprocess.run(
                [cc, *CFLAGS, "-o", tmp_path, src_path],
                capture_output=True,
                text=True,
                timeout=120,
            )
            if proc.returncode != 0:
                _warn_once(
                    "compile-failed",
                    "native FP8 kernel compilation failed; falling back to the "
                    f"numpy fast kernels: {proc.stderr.strip()[:500]}",
                )
                return None
            os.replace(tmp_path, so_path)
        finally:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
        return so_path
    except OSError as exc:
        _warn_once(
            "cache-unwritable",
            f"native FP8 kernel cache {directory!r} is unusable ({exc}); falling "
            "back to the numpy fast kernels",
        )
        return None


def _load(source: str):
    """Compile-or-load the kernel for ``source``; memoised, None on failure."""
    cc = compiler_path()
    if cc is None:
        return None
    key = _source_key(source, cc)
    with _lock:
        if key in _kernels:
            return _kernels[key]
        fn = None
        so_path = _compile_to_cache(source, cc, key)
        if so_path is not None:
            try:
                fn = getattr(ctypes.CDLL(so_path), KERNEL_SYMBOL)
            except OSError as exc:
                # a corrupt cache entry must not wedge the process: drop it so
                # the next call re-compiles from source
                try:
                    os.unlink(so_path)
                except OSError:
                    pass
                _warn_once(
                    "load-failed",
                    f"loading a cached native FP8 kernel failed ({exc}); falling "
                    "back to the numpy fast kernels",
                )
        _kernels[key] = fn
        return fn


def decode_kernel(fmt: FP8Format, per_row: bool):
    """The compiled fused decode → rescale kernel, or None when unavailable.

    Call signature (all arrays C-contiguous):
    ``fn(codes_u8_ptr, scale_f64_ptr, out_f32_ptr, rows, cols)``.
    """
    fn = _load(render_decode_kernel(fmt, per_row))
    if fn is not None and not getattr(fn, "_typed", False):
        fn.restype = None
        fn.argtypes = [
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_long,
            ctypes.c_long,
        ]
        fn._typed = True
    return fn


def fma_kernel(fmt: FP8Format, per_row: bool, n: int):
    """The compiled fused decode → rescale → FMA kernel for an ``n``-row batch.

    Batches up to :data:`~repro.fp8.native.codegen.GENERIC_ROWS` rows get a
    register-specialised variant; larger batches share the generic kernel.
    Call signature (all arrays C-contiguous):
    ``fn(x_f32_ptr, codes_u8_ptr, scale_f64_ptr, y_f32_ptr, n, rows, cols)``.
    """
    spec = n if 1 <= n <= GENERIC_ROWS else 0
    fn = _load(render_fma_kernel(fmt, per_row, spec))
    if fn is not None and not getattr(fn, "_typed", False):
        fn.restype = None
        fn.argtypes = [
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_long,
            ctypes.c_long,
            ctypes.c_long,
        ]
        fn._typed = True
    return fn


def reset() -> None:
    """Forget memoised compiler/kernel state (tests toggling the env vars)."""
    global _compiler
    with _lock:
        _compiler = ...
        _kernels.clear()
        _warned.clear()
