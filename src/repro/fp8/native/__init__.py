"""Native fused FP8 kernels: C codegen → ``cc`` → ctypes (the third tier).

This package implements the ``native`` value of ``REPRO_FP8_KERNEL`` as a
renderer/runtime split (:mod:`~repro.fp8.native.codegen` renders one fused C
kernel per (format, granularity, block shape); :mod:`~repro.fp8.native.runtime`
compiles it with the system C compiler, caches shared objects on disk and
loads them via ctypes) plus the numpy-facing dispatch in this module.

Two fusion levels:

* **decode → rescale** (always on under the native tier): one C pass replaces
  the numpy decode chain's four temporaries (int64 code copy, LUT gather,
  float64 divide, float32 narrow) and is **bit-identical** to the numpy
  ``fast`` path by construction, so every consumer — streaming matmul blocks,
  prefetch threads, engine workers, embedding gather-decode, plan replay —
  keeps its exact outputs while the memory-bound decode gets one pass instead
  of four.  :func:`decode_rescale` returns ``None`` for layouts the kernels
  do not cover (INT8 codes, per-channel scales on a non-leading axis) and the
  caller falls back to numpy.

* **decode → rescale → FMA** (opt-in via ``REPRO_NATIVE_FMA=1``): the whole
  ``y = x @ decode(W).T`` runs as a single ctypes call with sequential
  float32 accumulation.  Sequential accumulation cannot be bit-identical to
  numpy's BLAS matmul (the k loop vectorises differently), so this level is
  never silently enabled: with it on, streaming outputs agree with the numpy
  oracle to accumulation tolerance — and exactly where every partial sum is
  exactly representable, which ``benchmarks/bench_native_kernels.py``
  verifies on a constructed workload.  Eager and compiled-plan replay share
  the same kernel, so plan verification against the eager oracle still
  passes bit-for-bit.

When no C compiler is present the tier degrades silently (one warning):
``REPRO_FP8_KERNEL=native`` behaves exactly like ``fast``.
"""

from __future__ import annotations

import ctypes
import os
from typing import Optional, Tuple

import numpy as np

from repro.fp8.formats import FP8Format
from repro.fp8.native.runtime import (
    CACHE_ENV_VAR,
    CC_ENV_VAR,
    cache_dir,
    compiler_path,
    decode_kernel,
    fma_kernel,
    native_available,
    reset,
)

__all__ = [
    "CACHE_ENV_VAR",
    "CC_ENV_VAR",
    "FMA_ENV_VAR",
    "cache_dir",
    "compiler_path",
    "native_available",
    "reset",
    "decode_rescale",
    "fma_enabled",
    "qlinear_fma",
    "plan_qlinear_fma",
]

#: opt-in switch for the fully fused decode→FMA matmul (see module docstring)
FMA_ENV_VAR = "REPRO_NATIVE_FMA"


def fma_enabled() -> bool:
    """True when the fully fused FMA matmul is opted in via the environment."""
    return os.environ.get(FMA_ENV_VAR, "").strip().lower() in ("1", "true", "yes", "on")


def _ptr(array: np.ndarray) -> ctypes.c_void_p:
    return ctypes.c_void_p(array.ctypes.data)


def _scale_layout(codes: np.ndarray, scale: np.ndarray) -> Optional[Tuple[np.ndarray, bool]]:
    """Classify ``scale`` against ``codes``: flat per-tensor or leading-axis rows.

    Returns ``(flat_float64_scale, per_row)`` or ``None`` when the layout is
    not one the rendered kernels cover (e.g. a channel axis other than 0).
    Promoting a narrower scale dtype to float64 is exact, matching numpy's
    ``dtype=np.float64`` divide.
    """
    scale = np.asarray(scale)
    if scale.size == 1:
        return np.ascontiguousarray(scale, dtype=np.float64).reshape(1), False
    if (
        codes.ndim >= 1
        and scale.ndim == codes.ndim
        and scale.shape[0] == codes.shape[0]
        and scale.size == codes.shape[0]
    ):
        return np.ascontiguousarray(scale, dtype=np.float64).reshape(-1), True
    return None


def decode_rescale(codes: np.ndarray, fmt: FP8Format, scale: np.ndarray) -> Optional[np.ndarray]:
    """Fused decode → rescale through one C pass; None when not applicable.

    Bit-identical to ``fp8_decode_fast(codes) / scale`` narrowed to float32
    (the numpy ``fast`` pipeline): the kernel performs the same LUT lookup,
    float64 divide and float32 narrow.  Supported layouts: uint8 codes with a
    per-tensor scale, or a keepdims per-channel scale on the leading axis.
    """
    codes = np.asarray(codes)
    if codes.dtype != np.uint8:
        return None
    layout = _scale_layout(codes, np.asarray(scale))
    if layout is None:
        return None
    flat_scale, per_row = layout
    out = np.empty(codes.shape, dtype=np.float32)
    if codes.size == 0:
        return out
    fn = decode_kernel(fmt, per_row)
    if fn is None:
        return None
    if per_row:
        rows = codes.shape[0]
        cols = codes.size // rows if rows else 0
    else:
        rows, cols = 1, codes.size
    codes = np.ascontiguousarray(codes)
    fn(_ptr(codes), _ptr(flat_scale), _ptr(out), rows, cols)
    return out


# ----------------------------------------------------------------------
# fully fused decode → rescale → FMA matmul (opt-in)
# ----------------------------------------------------------------------
def _fma_layout(wq) -> Optional[Tuple[np.ndarray, np.ndarray, bool]]:
    """Weight-side eligibility for the fused matmul: packed FP8, 2-D, axis-0 scale."""
    if not isinstance(getattr(wq, "fmt", None), FP8Format):
        return None
    if wq.zero_point is not None:
        return None
    codes = np.asarray(wq.codes)
    if codes.dtype != np.uint8 or codes.ndim != 2:
        return None
    layout = _scale_layout(codes, np.asarray(wq.scale))
    if layout is None:
        return None
    flat_scale, per_row = layout
    return np.ascontiguousarray(codes), flat_scale, per_row


def _fma_call(
    fn, x2d: np.ndarray, codes: np.ndarray, flat_scale: np.ndarray, y2d: np.ndarray
) -> None:
    n, _cols = x2d.shape
    rows = codes.shape[0]
    fn(_ptr(x2d), _ptr(codes), _ptr(flat_scale), _ptr(y2d), n, rows, codes.shape[1])


def qlinear_fma(wq, x2d: np.ndarray, y2d: np.ndarray) -> bool:
    """Run ``y2d = x2d @ decode(wq).T`` as one ctypes call; False if unsupported.

    ``x2d`` is ``(n, in_features)`` float32, ``y2d`` a C-contiguous
    ``(n, out_features)`` float32 view the kernel writes in place.
    """
    layout = _fma_layout(wq)
    if layout is None:
        return False
    codes, flat_scale, per_row = layout
    if x2d.shape[1] != codes.shape[1] or not y2d.flags.c_contiguous:
        return False
    if x2d.size == 0 or codes.size == 0:
        y2d[...] = 0.0
        return True
    fn = fma_kernel(wq.fmt, per_row, x2d.shape[0])
    if fn is None:
        return False
    x2d = np.ascontiguousarray(x2d, dtype=np.float32)
    _fma_call(fn, x2d, codes, flat_scale, y2d)
    return True


def plan_qlinear_fma(wq, n: int):
    """Pre-bind the fused matmul for a compiled-plan node; None if unsupported.

    Resolves the batch-specialised kernel and captures the packed buffers
    once at plan-compile time, so each replay is a single ctypes call with
    zero dispatch.  Plan lifetime is bounded by the state epoch (any weight
    mutation drops the plan), which is what makes capturing the buffers safe.
    """
    layout = _fma_layout(wq)
    if layout is None or n < 1:
        return None
    codes, flat_scale, per_row = layout
    fn = fma_kernel(wq.fmt, per_row, n)
    if fn is None:
        return None

    def call(x2d: np.ndarray, y2d: np.ndarray) -> None:
        x2d = np.ascontiguousarray(x2d, dtype=np.float32)
        _fma_call(fn, x2d, codes, flat_scale, y2d)

    return call
