"""Render fused FP8 decode kernels to C source (the codegen half of the tier).

This module is the *renderer* of the renderer/runtime split (in the style of
tinygrad's ``cstyle.py`` / ``ops_clang.py``): it turns an FP8 format table
plus a scale granularity and a block shape into one self-contained C
translation unit, and :mod:`repro.fp8.native.runtime` compiles and loads it.
Nothing here touches a compiler — rendering is pure string work, so it is
cheap, deterministic and directly testable.

Two kernel families are rendered:

``decode`` (:func:`render_decode_kernel`)
    Fused decode → rescale: ``out[r, c] = float32(float64(LUT[code]) / s_r)``
    over a ``rows x cols`` block of packed codes, with ``s_r`` either one
    per-tensor scalar or a per-row (channel) scale.  This is **bit-identical**
    to the numpy ``fast`` path by construction: the 256-entry LUT is baked
    into the source as the exact float32 bit patterns of the numpy LUT, the
    divide happens in float64 and the result is narrowed to float32 — the
    same three IEEE-754 operations numpy performs, in the same order.  For
    wide rows the kernel first folds the row scale into a rescaled 256-entry
    float32 LUT (256 divides amortised over the row) and decodes by pure
    gather; the memoisation is bit-safe because each table entry is produced
    by the identical divide+narrow the direct path would perform per element.

``fma`` (:func:`render_fma_kernel`)
    Fully fused decode → rescale → FMA matmul:
    ``y[n, r] = sum_k x[n, k] * w[r, k]`` with ``w`` decoded on the fly from
    the packed codes and accumulated sequentially over ``k`` in float32.
    Sequential accumulation is *not* bit-identical to numpy's BLAS matmul
    (BLAS vectorises the k loop), which is why this kernel is an explicit
    opt-in at the dispatch layer — see :mod:`repro.fp8.native.runtime` and
    the ``REPRO_NATIVE_FMA`` switch.  The kernel is specialised on the
    number of input rows (the batch block shape): for small ``n`` the
    accumulators live in registers across the whole k loop.

Both renderers key their specialisation on ``(format, granularity, block
shape)``; the runtime caches one compiled shared object per distinct rendered
source.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.fp8.formats import FP8Format

__all__ = [
    "KERNEL_SYMBOL",
    "GENERIC_ROWS",
    "render_decode_kernel",
    "render_fma_kernel",
]

#: every rendered translation unit exports exactly this symbol
KERNEL_SYMBOL = "repro_kernel"

#: x-row specialisations above this count share one generic-n kernel
GENERIC_ROWS = 8

#: below this many columns a per-row rescaled LUT costs more than it saves
#: (256 divides per row vs one divide per element), so the decode kernel
#: switches to the direct per-element divide — both branches are bit-identical
LUT_MIN_COLS = 192


def _lut_initializer(fmt: FP8Format) -> str:
    """The 256-entry code→float32 value table as exact bit patterns.

    Baking bit patterns (not decimal literals) guarantees the C LUT is
    byte-for-byte the numpy LUT, including the quiet-NaN payloads the
    reference decoder produces for NaN codes and the signed infinities of
    IEEE-like formats.
    """
    from repro.fp8.kernels import _decode_lut

    bits = _decode_lut(fmt).view(np.uint32)
    rows = []
    for start in range(0, 256, 8):
        chunk = ", ".join(f"0x{int(b):08x}u" for b in bits[start : start + 8])
        rows.append(f"    {chunk},")
    return "\n".join(rows)


def _header(fmt: FP8Format, kind: str, detail: str) -> str:
    return (
        "/* repro native FP8 kernel (generated - do not edit)\n"
        f" * family: {kind}  format: {fmt.name} (e={fmt.exponent_bits}, "
        f"m={fmt.mantissa_bits}, bias={fmt.bias}, ieee_like={fmt.ieee_like})\n"
        f" * {detail}\n"
        " */\n"
        "#include <stdint.h>\n"
        "\n"
        "typedef union { uint32_t u; float f; } f32bits;\n"
        "\n"
        "static const uint32_t LUT_BITS[256] = {\n"
        f"{_lut_initializer(fmt)}\n"
        "};\n"
    )


@lru_cache(maxsize=None)
def render_decode_kernel(fmt: FP8Format, per_row: bool) -> str:
    """C source for the fused decode → rescale kernel (exact numpy mirror).

    Signature of the exported symbol::

        void repro_kernel(const uint8_t *codes, const double *scale,
                          float *out, long rows, long cols);

    ``scale`` points at one float64 for per-tensor granularity or at ``rows``
    float64 values (the flattened keepdims channel scale) for per-row.
    """
    detail = "granularity: per-row channel scale" if per_row else "granularity: per-tensor scale"
    src = [_header(fmt, "decode", detail)]
    src.append(
        f"""
void {KERNEL_SYMBOL}(const uint8_t *codes, const double *scale,
                     float *out, long rows, long cols)
{{
    f32bits v;
"""
    )
    if per_row:
        # Wide rows: fold the row scale into a rescaled 256-entry LUT and
        # decode by pure gather.  Each table entry is the identical
        # float64-divide + float32-narrow the direct branch performs per
        # element, so both branches (and numpy) agree bit for bit.
        src.append(
            f"""    float row_lut[256];
    for (long r = 0; r < rows; r++) {{
        const double s = scale[r];
        const uint8_t *src = codes + r * cols;
        float *dst = out + r * cols;
        if (cols >= {LUT_MIN_COLS}) {{
            for (int c = 0; c < 256; c++) {{
                v.u = LUT_BITS[c];
                row_lut[c] = (float)((double)v.f / s);
            }}
            for (long i = 0; i < cols; i++)
                dst[i] = row_lut[src[i]];
        }} else {{
            for (long i = 0; i < cols; i++) {{
                v.u = LUT_BITS[src[i]];
                dst[i] = (float)((double)v.f / s);
            }}
        }}
    }}
}}
"""
        )
    else:
        src.append(
            """    float flat_lut[256];
    const double s = scale[0];
    for (int c = 0; c < 256; c++) {
        v.u = LUT_BITS[c];
        flat_lut[c] = (float)((double)v.f / s);
    }
    const long n = rows * cols;
    for (long i = 0; i < n; i++)
        out[i] = flat_lut[codes[i]];
}
"""
        )
    return "".join(src)


@lru_cache(maxsize=None)
def render_fma_kernel(fmt: FP8Format, per_row: bool, n_rows: int) -> str:
    """C source for the fully fused decode → rescale → FMA matmul kernel.

    Signature of the exported symbol::

        void repro_kernel(const float *x, const uint8_t *codes,
                          const double *scale, float *y,
                          long n, long rows, long cols);

    computing ``y[i, r] = sum_k x[i, k] * w[r, k]`` for the ``n x cols``
    activation block against the ``rows x cols`` packed weight, with ``w``
    decoded through a per-row rescaled LUT.  ``n_rows`` in ``1..GENERIC_ROWS``
    renders a batch-specialised variant whose accumulators are compile-time
    unrolled (the block-shape axis of the specialisation key); ``0`` renders
    the generic runtime-``n`` fallback.
    """
    if not 0 <= n_rows <= GENERIC_ROWS:
        raise ValueError(f"n_rows must be in 0..{GENERIC_ROWS}, got {n_rows}")
    detail = (
        f"granularity: {'per-row' if per_row else 'per-tensor'} scale; "
        f"batch block: {'generic' if n_rows == 0 else n_rows}"
    )
    src = [_header(fmt, "fma", detail)]
    if per_row:
        rescale = """    float row_lut[256];
    for (long r = 0; r < rows; r++) {
        const double s = scale[r];
        for (int c = 0; c < 256; c++) {
            v.u = LUT_BITS[c];
            row_lut[c] = (float)((double)v.f / s);
        }
"""
    else:
        # one scale for the whole weight: fold it into the LUT exactly once
        rescale = """    float row_lut[256];
    const double s = scale[0];
    for (int c = 0; c < 256; c++) {
        v.u = LUT_BITS[c];
        row_lut[c] = (float)((double)v.f / s);
    }
    for (long r = 0; r < rows; r++) {
"""
    src.append(
        f"""
void {KERNEL_SYMBOL}(const float *x, const uint8_t *codes, const double *scale,
                     float *y, long n, long rows, long cols)
{{
    f32bits v;
{rescale}        const uint8_t *w = codes + r * cols;
"""
    )
    if n_rows == 0:
        src.append(
            """        for (long i = 0; i < n; i++) {
            const float *xi = x + i * cols;
            float acc = 0.0f;
            for (long k = 0; k < cols; k++)
                acc += xi[k] * row_lut[w[k]];
            y[i * rows + r] = acc;
        }
    }
}
"""
        )
    else:
        accs = "\n".join(f"        float acc{i} = 0.0f;" for i in range(n_rows))
        ptrs = "\n".join(f"        const float *x{i} = x + {i} * cols;" for i in range(n_rows))
        fmas = "\n".join(f"            acc{i} += x{i}[k] * wk;" for i in range(n_rows))
        stores = "\n".join(f"        y[{i} * rows + r] = acc{i};" for i in range(n_rows))
        src.append(
            f"""{accs}
{ptrs}
        for (long k = 0; k < cols; k++) {{
            const float wk = row_lut[w[k]];
{fmas}
        }}
{stores}
    }}
}}
"""
        )
    return "".join(src)
