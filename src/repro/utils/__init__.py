"""Shared utilities: seeding, logging and small numeric helpers."""

from repro.utils.seeding import set_seed, seeded_rng, temp_seed
from repro.utils.logging import get_logger

__all__ = ["set_seed", "seeded_rng", "temp_seed", "get_logger"]
