"""Deterministic seeding helpers.

Every stochastic component of the library (data generation, weight
initialisation, training, calibration sampling) accepts either a seed or a
:class:`numpy.random.Generator`; these helpers centralise how seeds become
generators so results are reproducible across runs.
"""

from __future__ import annotations

import contextlib
import random
from typing import Iterator, Union

import numpy as np

__all__ = ["set_seed", "seeded_rng", "temp_seed", "RngLike"]

RngLike = Union[int, np.random.Generator, None]

_DEFAULT_SEED = 0


def set_seed(seed: int) -> None:
    """Seed Python's and numpy's global RNGs (legacy API compatibility)."""
    random.seed(seed)
    np.random.seed(seed % (2**32 - 1))


def seeded_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed, generator or None."""
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = _DEFAULT_SEED
    return np.random.default_rng(seed)


@contextlib.contextmanager
def temp_seed(seed: int) -> Iterator[None]:
    """Temporarily seed the global numpy RNG inside a ``with`` block."""
    state = np.random.get_state()
    np.random.seed(seed % (2**32 - 1))
    try:
        yield
    finally:
        np.random.set_state(state)
