"""Minimal logging configuration used across the library."""

from __future__ import annotations

import logging

__all__ = ["get_logger"]

_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"


def get_logger(name: str, level: int = logging.INFO) -> logging.Logger:
    """Return a configured logger under the ``repro`` namespace."""
    logger = logging.getLogger(name if name.startswith("repro") else f"repro.{name}")
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(handler)
        logger.setLevel(level)
        logger.propagate = False
    return logger
