"""BatchNorm calibration (paper Section 3 / Figure 7).

Quantizing the convolutions that feed a BatchNorm shifts the distribution of
its inputs, so the running mean/variance collected during FP32 training no
longer match.  The fix (following Sun et al., 2019) is to *recompute* the
running statistics on calibration data after conversion — without touching the
learnable affine parameters.  The paper additionally studies how the number of
calibration samples and the choice of data augmentation (training-style vs
inference-style transforms) affect the recovered accuracy; both knobs are
exposed here and swept by ``benchmarks/bench_figure7_bn_calibration.py``.
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.data.augmentation import get_transform
from repro.data.synthetic import ArrayDataset
from repro.nn.module import Module, bump_state_epoch
from repro.nn.norm import _BatchNorm
from repro.utils.logging import get_logger
from repro.utils.seeding import seeded_rng

__all__ = ["calibrate_batchnorm"]

logger = get_logger("quantization.bn_calibration")


def calibrate_batchnorm(
    model: Module,
    calibration_data: Union[ArrayDataset, np.ndarray],
    prepare_inputs: Callable[[np.ndarray], object] = lambda x: Tensor(x),
    num_samples: int = 3000,
    transform: str = "training",
    batch_size: int = 32,
    reset_stats: bool = True,
    seed: int = 0,
) -> int:
    """Recompute BatchNorm running statistics on (augmented) calibration data.

    Parameters
    ----------
    model:
        A (typically already quantized) model containing BatchNorm modules.
    calibration_data:
        Source images; sampled with replacement up to ``num_samples`` so the
        paper's 300 / 3000 / 10000 sample-size sweep works even from a small
        calibration pool.
    transform:
        ``"training"`` (random shift/flip/noise, the paper's recommendation) or
        ``"inference"`` (no augmentation).
    reset_stats:
        Reset the running statistics first so the result is a clean cumulative
        average over the calibration batches.

    Returns
    -------
    int
        The number of BatchNorm modules that were recalibrated (0 means the
        model has none and nothing was done).
    """
    bn_modules = [m for _, m in model.named_modules() if isinstance(m, _BatchNorm)]
    if not bn_modules:
        return 0

    if isinstance(calibration_data, ArrayDataset):
        pool = calibration_data.inputs
    else:
        pool = np.asarray(calibration_data)

    rng = seeded_rng(seed)
    idx = rng.choice(len(pool), size=num_samples, replace=num_samples > len(pool))
    samples = pool[idx]
    transform_fn = get_transform(transform)

    for bn in bn_modules:
        if reset_stats:
            bn.reset_running_stats()
        bn.calibrating = True

    model.eval()
    try:
        with no_grad():
            for start in range(0, len(samples), batch_size):
                batch = transform_fn(samples[start : start + batch_size], rng)
                model(prepare_inputs(batch))
    finally:
        for bn in bn_modules:
            bn.calibrating = False
        # running stats changed under any compiled plans — invalidate them
        bump_state_epoch()

    logger.debug(
        "recalibrated %d BatchNorm modules on %d samples (%s transform)",
        len(bn_modules),
        len(samples),
        transform,
    )
    return len(bn_modules)
