"""Post-training quantization framework (the paper's core contribution).

The public entry point is :func:`repro.quantization.workflow.quantize_model`,
which implements the Figure 2 workflow:

1. build a recipe (:class:`~repro.quantization.qconfig.QuantizationRecipe`) —
   either the *standard scheme* (Conv/Linear/Embedding, per-channel weights,
   per-tensor activations, max calibration, first & last convolution-network
   operators kept in FP32) or the *extended scheme* (adds LayerNorm, BatchNorm,
   MatMul/BMM and element-wise operators, mixed FP8 formats, dynamic
   quantization);
2. optionally apply SmoothQuant to NLP models;
3. insert observers, run calibration data, convert modules to quantized
   emulation;
4. optionally recalibrate BatchNorm statistics on augmented data;
5. evaluate, and (via :mod:`repro.quantization.tuning`) iterate recipes until
   the accuracy target is met.
"""

from repro.quantization.qconfig import (
    QuantFormat,
    Granularity,
    Approach,
    TensorQuantConfig,
    OperatorQuantConfig,
    QuantizationRecipe,
    standard_recipe,
    extended_recipe,
    int8_recipe,
)
from repro.quantization.observers import (
    Observer,
    MinMaxObserver,
    MovingAverageMinMaxObserver,
    PercentileObserver,
    MSEObserver,
    KLObserver,
    build_observer,
)
from repro.quantization.qmodules import (
    QuantizedModule,
    QuantizedLinear,
    QuantizedConv2d,
    QuantizedEmbedding,
    QuantizedLayerNorm,
    QuantizedBatchNorm2d,
    QuantizedBatchMatMul,
    QuantizedAdd,
    QuantizedMul,
)
from repro.quantization.workflow import (
    QuantizationResult,
    prepare_model,
    calibrate_model,
    convert_model,
    quantize_model,
    deploy_model,
    compile_model,
    set_serving_mode,
    storage_report,
    resident_report,
    clone_module,
)
from repro.quantization.bn_calibration import calibrate_batchnorm
from repro.quantization.smoothquant import apply_smoothquant
from repro.quantization.mixed import assign_mixed_formats, classify_tensor
from repro.quantization.tuning import AutoTuner, TuningResult
from repro.quantization.metrics import (
    mse,
    sqnr,
    relative_accuracy_loss,
    meets_accuracy_target,
)

__all__ = [
    "QuantFormat",
    "Granularity",
    "Approach",
    "TensorQuantConfig",
    "OperatorQuantConfig",
    "QuantizationRecipe",
    "standard_recipe",
    "extended_recipe",
    "int8_recipe",
    "Observer",
    "MinMaxObserver",
    "MovingAverageMinMaxObserver",
    "PercentileObserver",
    "MSEObserver",
    "KLObserver",
    "build_observer",
    "QuantizedModule",
    "QuantizedLinear",
    "QuantizedConv2d",
    "QuantizedEmbedding",
    "QuantizedLayerNorm",
    "QuantizedBatchNorm2d",
    "QuantizedBatchMatMul",
    "QuantizedAdd",
    "QuantizedMul",
    "QuantizationResult",
    "prepare_model",
    "calibrate_model",
    "convert_model",
    "quantize_model",
    "deploy_model",
    "compile_model",
    "set_serving_mode",
    "storage_report",
    "resident_report",
    "clone_module",
    "calibrate_batchnorm",
    "apply_smoothquant",
    "assign_mixed_formats",
    "classify_tensor",
    "AutoTuner",
    "TuningResult",
    "mse",
    "sqnr",
    "relative_accuracy_loss",
    "meets_accuracy_target",
]
