"""Mixed FP8 format assignment (paper Section 3.2, Figure 8, Table 5).

The paper observes that tensors fall into two classes:

* **range-bound** tensors — NLP activations with outliers — need the wider
  dynamic range of E4M3 (or E5M2);
* **precision-bound** tensors — weights, and most CV activations — benefit from
  the extra mantissa bit of E3M4.

The best NLP accuracy came from mixing: E4M3 for activations, E3M4 for weights.
:func:`classify_tensor` implements the range/precision-bound heuristic and
:func:`assign_mixed_formats` builds the per-operator overrides for a recipe.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

import numpy as np

from repro.quantization.qconfig import (
    OperatorQuantConfig,
    QuantFormat,
    QuantizationRecipe,
)

__all__ = ["classify_tensor", "assign_mixed_formats", "MIXED_NLP_FORMATS", "kurtosis"]

#: the paper's recommended mixed assignment for NLP models
MIXED_NLP_FORMATS = {"activation": QuantFormat.E4M3, "weight": QuantFormat.E3M4}


def kurtosis(x: np.ndarray) -> float:
    """Excess kurtosis — long-tailed (outlier-heavy) tensors have large positive values."""
    x = np.asarray(x, dtype=np.float64).reshape(-1)
    std = x.std()
    if std == 0:
        return 0.0
    z = (x - x.mean()) / std
    return float(np.mean(z**4) - 3.0)


def classify_tensor(
    x: np.ndarray,
    outlier_ratio_threshold: float = 8.0,
    kurtosis_threshold: float = 20.0,
) -> str:
    """Classify a tensor as ``"range-bound"`` or ``"precision-bound"``.

    A tensor is range-bound when its absolute maximum is much larger than its
    99th-percentile magnitude (isolated outliers stretch the range) or when its
    kurtosis is very large; otherwise it is precision-bound.
    """
    x = np.asarray(x, dtype=np.float64).reshape(-1)
    if x.size == 0:
        return "precision-bound"
    absmax = np.max(np.abs(x))
    p99 = np.percentile(np.abs(x), 99.0)
    ratio = absmax / max(p99, 1e-12)
    if ratio >= outlier_ratio_threshold or kurtosis(x) >= kurtosis_threshold:
        return "range-bound"
    return "precision-bound"


def format_for_tensor(x: np.ndarray) -> QuantFormat:
    """Pick E4M3 for range-bound tensors and E3M4 for precision-bound ones."""
    return QuantFormat.E4M3 if classify_tensor(x) == "range-bound" else QuantFormat.E3M4


def assign_mixed_formats(
    recipe: QuantizationRecipe,
    activation_stats: Optional[Dict[str, np.ndarray]] = None,
) -> QuantizationRecipe:
    """Return a copy of ``recipe`` using the paper's mixed FP8 assignment.

    By default the static rule is applied (E4M3 activations, E3M4 weights).
    If ``activation_stats`` (module name -> captured activations) is provided,
    each module's activation format is chosen from its own distribution via
    :func:`classify_tensor`, which is the data-driven variant of the recipe.
    """
    base = replace(
        recipe,
        name=f"{recipe.name}+mixed",
        activation_fmt=MIXED_NLP_FORMATS["activation"],
        weight_fmt=MIXED_NLP_FORMATS["weight"],
    )
    if not activation_stats:
        return base

    overrides: Dict[str, OperatorQuantConfig] = dict(base.module_overrides)
    defaults = base.tensor_configs()
    for module_name, activations in activation_stats.items():
        act_fmt = format_for_tensor(activations)
        overrides[module_name] = OperatorQuantConfig(
            activation=replace(defaults.activation, fmt=act_fmt),
            weight=defaults.weight,
        )
    return replace(base, module_overrides=overrides)
