"""Range-calibration observers.

Observers watch tensors during the calibration pass and produce the calibrated
range (absolute maximum, or min/max for asymmetric INT8) that the quantizers
turn into scale factors.  The paper's finding (Section 3 and Appendix A.1) is
that *simple max scaling* is sufficient for FP8 — KL / MSE / percentile
clipping, which help INT8, bring no benefit and can hurt because the FP8 grid
is already dense near zero.  All of them are implemented here so the Appendix
A.1 benchmark can reproduce that comparison.

Granularity support: :class:`MinMaxObserver` and
:class:`MovingAverageMinMaxObserver` support per-channel calibration; the
sample-pooling observers (:class:`PercentileObserver`, :class:`MSEObserver`,
:class:`KLObserver`) are **per-tensor only** and warn explicitly when handed a
per-channel configuration instead of silently degrading.
"""

from __future__ import annotations

import warnings
from typing import Optional, Tuple

import numpy as np

from repro.quantization.qconfig import Granularity, TensorQuantConfig

__all__ = [
    "Observer",
    "MinMaxObserver",
    "MovingAverageMinMaxObserver",
    "PercentileObserver",
    "MSEObserver",
    "KLObserver",
    "build_observer",
]


class Observer:
    """Base class: accumulate statistics over calibration batches."""

    def __init__(self, config: TensorQuantConfig, channel_axis: Optional[int] = None) -> None:
        self.config = config
        self.channel_axis = channel_axis if config.granularity is Granularity.PER_CHANNEL else None
        self.num_batches = 0

    # -- interface ------------------------------------------------------
    def observe(self, x: np.ndarray) -> None:
        raise NotImplementedError

    def calibrated_range(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return (min_val, max_val) of the calibrated range."""
        raise NotImplementedError

    # -- helpers --------------------------------------------------------
    def _reduce_axes(self, x: np.ndarray) -> Optional[Tuple[int, ...]]:
        if self.channel_axis is None:
            return None
        axis = self.channel_axis % x.ndim
        return tuple(a for a in range(x.ndim) if a != axis)

    def calibrated_absmax(self) -> np.ndarray:
        lo, hi = self.calibrated_range()
        return np.maximum(np.abs(lo), np.abs(hi))

    @property
    def ready(self) -> bool:
        return self.num_batches > 0


class MinMaxObserver(Observer):
    """Track the running min / max (the paper's default "max scaling")."""

    def __init__(self, config: TensorQuantConfig, channel_axis: Optional[int] = None) -> None:
        super().__init__(config, channel_axis)
        self._min: Optional[np.ndarray] = None
        self._max: Optional[np.ndarray] = None

    def observe(self, x: np.ndarray) -> None:
        x = np.asarray(x, dtype=np.float64)
        axes = self._reduce_axes(x)
        if axes is None:
            mn, mx = np.min(x), np.max(x)
        else:
            mn = np.min(x, axis=axes)
            mx = np.max(x, axis=axes)
        if self._min is None:
            self._min, self._max = np.asarray(mn), np.asarray(mx)
        else:
            self._min = np.minimum(self._min, mn)
            self._max = np.maximum(self._max, mx)
        self.num_batches += 1

    def calibrated_range(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._min is None:
            raise RuntimeError("observer has not seen any data")
        return self._min, self._max


class MovingAverageMinMaxObserver(Observer):
    """Exponential moving average of per-batch min / max (smoother than raw min/max)."""

    def __init__(
        self,
        config: TensorQuantConfig,
        channel_axis: Optional[int] = None,
        momentum: float = 0.9,
    ) -> None:
        super().__init__(config, channel_axis)
        self.momentum = momentum
        self._min: Optional[np.ndarray] = None
        self._max: Optional[np.ndarray] = None

    def observe(self, x: np.ndarray) -> None:
        x = np.asarray(x, dtype=np.float64)
        axes = self._reduce_axes(x)
        if axes is None:
            mn, mx = np.min(x), np.max(x)
        else:
            mn = np.min(x, axis=axes)
            mx = np.max(x, axis=axes)
        if self._min is None:
            self._min, self._max = np.asarray(mn, dtype=np.float64), np.asarray(
                mx, dtype=np.float64
            )
        else:
            m = self.momentum
            self._min = m * self._min + (1 - m) * mn
            self._max = m * self._max + (1 - m) * mx
        self.num_batches += 1

    def calibrated_range(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._min is None:
            raise RuntimeError("observer has not seen any data")
        return self._min, self._max


def _warn_per_tensor_only(observer: Observer, channel_axis: Optional[int]) -> None:
    """Warn loudly when a per-channel config reaches a per-tensor-only observer.

    Percentile / MSE / KL calibration pools samples across the whole tensor,
    so a ``PER_CHANNEL`` config silently degrading to per-tensor would skew
    every channel's scale.  The degradation still happens (these observers
    have no per-channel mode), but it is now explicit.
    """
    if channel_axis is not None or observer.config.granularity is Granularity.PER_CHANNEL:
        warnings.warn(
            f"{type(observer).__name__} only supports per-tensor calibration; "
            f"the per-channel configuration (channel_axis={channel_axis}) is "
            "ignored and ranges are pooled over the whole tensor. Use the "
            "'minmax' or 'moving_average' observer for per-channel scaling.",
            UserWarning,
            stacklevel=3,
        )


class _ReservoirMixin:
    """Deterministic, globally bounded sample reservoir shared by sample-pooling observers.

    Each batch is evenly strided down to at most ``reservoir_size`` elements,
    and whenever the pooled total exceeds the bound the whole pool is
    compacted back to ``reservoir_size`` evenly spaced samples, so memory is
    bounded by ``2 * reservoir_size`` floats no matter how long calibration
    runs.  Striding (rather than random sampling) keeps calibration
    deterministic for a given data order.
    """

    reservoir_size: int
    _samples: list
    _stored: int

    def _init_reservoir(self, reservoir_size: int) -> None:
        self.reservoir_size = int(reservoir_size)
        if self.reservoir_size <= 0:
            raise ValueError(f"reservoir_size must be positive, got {reservoir_size}")
        self._samples = []
        self._stored = 0

    @staticmethod
    def _evenly_strided(flat: np.ndarray, size: int) -> np.ndarray:
        if flat.size <= size:
            return flat
        idx = np.linspace(0, flat.size - 1, size).astype(np.int64)
        return flat[idx]

    def _add_samples(self, x: np.ndarray) -> None:
        flat = np.asarray(x, dtype=np.float64).reshape(-1)
        flat = self._evenly_strided(flat, self.reservoir_size)
        self._samples.append(flat)
        self._stored += flat.size
        if self._stored > self.reservoir_size:
            pooled = np.concatenate(self._samples)
            pooled = self._evenly_strided(pooled, self.reservoir_size)
            self._samples = [pooled]
            self._stored = pooled.size

    def _data(self) -> np.ndarray:
        if not self._samples:
            raise RuntimeError("observer has not seen any data")
        return np.concatenate(self._samples)


class PercentileObserver(_ReservoirMixin, Observer):
    """Clip the range to a percentile of the observed magnitudes.

    Per-tensor only (a per-channel config triggers an explicit warning and is
    pooled over the whole tensor).  At most ``max_samples`` calibration samples
    are retained globally across all observed batches, via a deterministic
    evenly-strided reservoir.
    """

    def __init__(
        self,
        config: TensorQuantConfig,
        channel_axis: Optional[int] = None,
        percentile: float = 99.9,
        max_samples: int = 1_000_000,
    ) -> None:
        super().__init__(config, channel_axis=None)
        _warn_per_tensor_only(self, channel_axis)
        self.percentile = percentile
        self.max_samples = int(max_samples)
        self._init_reservoir(self.max_samples)

    def observe(self, x: np.ndarray) -> None:
        self._add_samples(x)
        self.num_batches += 1

    def calibrated_range(self) -> Tuple[np.ndarray, np.ndarray]:
        data = self._data()
        lo = np.percentile(data, 100.0 - self.percentile)
        hi = np.percentile(data, self.percentile)
        return np.asarray(lo), np.asarray(hi)


class _SearchObserver(_ReservoirMixin, Observer):
    """Shared machinery for observers that search for the best clipping threshold.

    Per-tensor only (a per-channel config triggers an explicit warning), with
    the same globally bounded deterministic reservoir as
    :class:`PercentileObserver`.
    """

    #: global bound on retained calibration samples (threshold search is
    #: quadratic-ish in practice, so the default is much smaller than the
    #: percentile observer's)
    reservoir_size = 65536

    def __init__(self, config: TensorQuantConfig, channel_axis: Optional[int] = None) -> None:
        super().__init__(config, channel_axis=None)
        _warn_per_tensor_only(self, channel_axis)
        self._init_reservoir(type(self).reservoir_size)

    def observe(self, x: np.ndarray) -> None:
        self._add_samples(x)
        self.num_batches += 1

    def _quant_error(self, data: np.ndarray, absmax: float) -> float:
        """Mean-squared quantization error if the range is clipped at ``absmax``."""
        from repro.fp8.int8 import int8_quantize_dequantize
        from repro.fp8.quantize import quantize_dequantize

        clipped = np.clip(data, -absmax, absmax)
        if self.config.fmt.is_fp8:
            fmt = self.config.fmt.fp8_format()
            scale = fmt.max_value / max(absmax, 1e-12)
            deq = quantize_dequantize(clipped, fmt, scale=np.asarray(scale))
        else:
            spec = self.config.fmt.int8_spec()
            scale = max(absmax, 1e-12) / spec.qmax
            deq = int8_quantize_dequantize(
                clipped, spec=spec, scale=np.asarray(scale), zero_point=np.asarray(0.0)
            )
        return float(np.mean((deq - data) ** 2))


class MSEObserver(_SearchObserver):
    """Pick the clipping threshold minimising quantization MSE over a grid of candidates."""

    def __init__(
        self,
        config: TensorQuantConfig,
        channel_axis: Optional[int] = None,
        num_candidates: int = 20,
    ) -> None:
        super().__init__(config, channel_axis)
        self.num_candidates = num_candidates

    def calibrated_range(self) -> Tuple[np.ndarray, np.ndarray]:
        data = self._data()
        absmax = float(np.max(np.abs(data))) or 1e-12
        candidates = absmax * np.linspace(0.3, 1.0, self.num_candidates)
        errors = [self._quant_error(data, c) for c in candidates]
        best = float(candidates[int(np.argmin(errors))])
        return np.asarray(-best), np.asarray(best)


class KLObserver(_SearchObserver):
    """TensorRT-style KL-divergence clipping threshold search over a histogram."""

    def __init__(
        self,
        config: TensorQuantConfig,
        channel_axis: Optional[int] = None,
        num_bins: int = 2048,
        num_quant_bins: int = 255,
        num_candidates: int = 32,
    ) -> None:
        super().__init__(config, channel_axis)
        self.num_bins = num_bins
        self.num_quant_bins = num_quant_bins
        self.num_candidates = num_candidates

    @staticmethod
    def _kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
        p = p / max(p.sum(), 1e-12)
        q = q / max(q.sum(), 1e-12)
        mask = p > 0
        q = np.where(q > 0, q, 1e-12)
        return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))

    def calibrated_range(self) -> Tuple[np.ndarray, np.ndarray]:
        data = np.abs(self._data())
        absmax = float(np.max(data)) or 1e-12
        hist, edges = np.histogram(data, bins=self.num_bins, range=(0.0, absmax))
        hist = hist.astype(np.float64)

        best_threshold = absmax
        best_kl = np.inf
        start = max(self.num_quant_bins, self.num_bins // self.num_candidates)
        for cut in np.linspace(start, self.num_bins, self.num_candidates).astype(int):
            p = hist[:cut].copy()
            p[-1] += hist[cut:].sum()  # clipped mass collapses into the last bin
            # quantize the distribution into num_quant_bins buckets and expand back
            chunks = np.array_split(np.arange(cut), self.num_quant_bins)
            q = np.zeros(cut)
            for chunk in chunks:
                if len(chunk) == 0:
                    continue
                total = hist[chunk].sum()
                nonzero = np.count_nonzero(hist[chunk])
                if nonzero:
                    q[chunk] = np.where(hist[chunk] > 0, total / nonzero, 0.0)
            kl = self._kl_divergence(p, q)
            if kl < best_kl:
                best_kl = kl
                best_threshold = edges[cut]
        return np.asarray(-best_threshold), np.asarray(best_threshold)


_OBSERVERS = {
    "minmax": MinMaxObserver,
    "moving_average": MovingAverageMinMaxObserver,
    "percentile": PercentileObserver,
    "mse": MSEObserver,
    "kl": KLObserver,
}


def build_observer(
    config: TensorQuantConfig, channel_axis: Optional[int] = None, **kwargs
) -> Observer:
    """Instantiate the observer named in ``config.observer``."""
    if config.observer not in _OBSERVERS:
        raise KeyError(f"unknown observer {config.observer!r}; available: {sorted(_OBSERVERS)}")
    return _OBSERVERS[config.observer](config, channel_axis=channel_axis, **kwargs)
