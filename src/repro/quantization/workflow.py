"""The post-training quantization workflow (paper Figure 2).

``quantize_model`` is the top-level API: it takes a trained FP32 model, a
:class:`~repro.quantization.qconfig.QuantizationRecipe` and calibration data,
and returns a quantized (Q/DQ-emulated) copy of the model plus a report of
what was quantized.  The stages map one-to-one onto the paper's flow diagram:

``SmoothQuant`` (optional, NLP) → ``prepare`` (insert observers) →
``calibrate`` (range calibration on calibration data; skipped for E5M2 direct
and for dynamic quantization) → ``convert`` (swap in quantized operators,
quantize weights) → ``BatchNorm calibration`` (optional, CV).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.data.synthetic import ArrayDataset, DataLoader
from repro.fp8.quantize import is_memory_mapped
from repro.nn.layers import Conv2d, Linear
from repro.nn.module import Module
from repro.quantization.bn_calibration import calibrate_batchnorm
from repro.quantization.qconfig import Approach, QuantizationRecipe
from repro.quantization.qmodules import QUANTIZED_MODULE_MAP, QuantizedModule, wrap_module
from repro.quantization.smoothquant import apply_smoothquant
from repro.utils.logging import get_logger

__all__ = [
    "QuantizationResult",
    "prepare_model",
    "calibrate_model",
    "convert_model",
    "quantize_model",
    "deploy_model",
    "set_serving_mode",
    "compile_model",
    "storage_report",
    "resident_report",
    "find_first_last_operators",
    "clone_module",
]

logger = get_logger("quantization.workflow")

CalibrationData = Union[ArrayDataset, Sequence[np.ndarray], None]
PrepareFn = Callable[[np.ndarray], object]


def clone_module(model: Module) -> Module:
    """Deep-copy a module tree (parameters, buffers and structure)."""
    return copy.deepcopy(model)


def find_first_last_operators(model: Module) -> tuple:
    """Return the names of the first Conv2d and the last Linear leaf modules.

    The paper keeps these two operators of convolutional networks in higher
    precision under the standard scheme (they are <1% of compute but are the
    most quantization-sensitive).  Module definition order is used as a proxy
    for execution order, which holds for every model in the zoo.
    """
    conv_names = [name for name, m in model.named_modules() if isinstance(m, Conv2d)]
    linear_names = [name for name, m in model.named_modules() if isinstance(m, Linear)]
    first_conv = conv_names[0] if conv_names else None
    last_linear = linear_names[-1] if linear_names else None
    return first_conv, last_linear


@dataclass
class QuantizationResult:
    """Outcome of a quantization run."""

    model: Module
    recipe: QuantizationRecipe
    quantized_modules: List[str] = field(default_factory=list)
    skipped_modules: List[str] = field(default_factory=list)
    smoothquant_applied: bool = False
    batchnorm_calibrated: bool = False
    #: bytes of packed 8-bit weight storage (codes + scales) across all wrappers
    weight_bytes_packed: int = 0
    #: bytes the same weights occupy as dense float32
    weight_bytes_fp32: int = 0

    @property
    def num_quantized(self) -> int:
        return len(self.quantized_modules)

    @property
    def weight_compression_ratio(self) -> Optional[float]:
        """Packed weight bytes as a fraction of float32 bytes (None if nothing packed)."""
        if not self.weight_bytes_fp32:
            return None
        return self.weight_bytes_packed / self.weight_bytes_fp32

    def summary(self) -> str:
        lines = [
            f"recipe: {self.recipe.name}",
            f"quantized operators: {self.num_quantized}",
            f"fp32 fallbacks: {len(self.skipped_modules)}",
            f"smoothquant: {self.smoothquant_applied}",
            f"batchnorm calibration: {self.batchnorm_calibrated}",
        ]
        ratio = self.weight_compression_ratio
        if ratio is not None:
            lines.append(
                f"packed weight storage: {self.weight_bytes_packed / 1024:.1f} KiB "
                f"({ratio:.2f}x of {self.weight_bytes_fp32 / 1024:.1f} KiB fp32)"
            )
        return "\n".join(lines)


def _iter_target_modules(model: Module, recipe: QuantizationRecipe):
    """Yield (name, type_name, module) for every leaf operator the recipe may quantize."""
    wrapped_parents = set()
    for name, module in model.named_modules():
        if isinstance(module, QuantizedModule):
            wrapped_parents.add(name)
            continue
        if any(name.startswith(f"{p}.") for p in wrapped_parents):
            continue  # the float module inside an existing wrapper
        for type_name, (module_cls, _) in QUANTIZED_MODULE_MAP.items():
            if type(module) is module_cls:
                yield name, type_name, module
                break


def prepare_model(
    model: Module,
    recipe: QuantizationRecipe,
    is_convolutional: bool = False,
) -> QuantizationResult:
    """Insert quantization wrappers (in observation mode) according to the recipe.

    The model is modified in place; use :func:`clone_module` first if the
    original must stay untouched (``quantize_model`` does this for you).
    """
    fallbacks = set(recipe.fallback_modules)
    if is_convolutional:
        first_conv, last_linear = find_first_last_operators(model)
        if recipe.skip_first_operator and first_conv:
            fallbacks.add(first_conv)
        if recipe.skip_last_operator and last_linear:
            fallbacks.add(last_linear)

    result = QuantizationResult(model=model, recipe=recipe)
    targets = list(_iter_target_modules(model, recipe))
    for name, type_name, module in targets:
        if name in fallbacks:
            result.skipped_modules.append(name)
            continue
        config = recipe.config_for(type_name, name)
        if config is None:
            result.skipped_modules.append(name)
            continue
        wrapper = wrap_module(type_name, module, config, name=name)
        wrapper.start_observing()
        model.set_submodule(name, wrapper)
        result.quantized_modules.append(name)
    return result


def _iter_calibration_batches(
    calibration_data: CalibrationData,
    prepare_inputs: PrepareFn,
    batch_size: int,
    max_batches: Optional[int] = None,
) -> Iterable[object]:
    if calibration_data is None:
        return
    if isinstance(calibration_data, ArrayDataset):
        loader = DataLoader(calibration_data, batch_size=batch_size, shuffle=False)
        for idx, (inputs, _) in enumerate(loader):
            if max_batches is not None and idx >= max_batches:
                break
            yield prepare_inputs(inputs)
    else:
        for idx, inputs in enumerate(calibration_data):
            if max_batches is not None and idx >= max_batches:
                break
            yield prepare_inputs(inputs) if isinstance(inputs, np.ndarray) else inputs


def calibrate_model(
    model: Module,
    calibration_data: CalibrationData,
    prepare_inputs: PrepareFn = lambda x: Tensor(x),
    batch_size: int = 32,
    max_batches: Optional[int] = None,
) -> int:
    """Run calibration data through a prepared model so observers record ranges.

    Returns the number of calibration batches used.
    """
    model.eval()
    count = 0
    with no_grad():
        for batch in _iter_calibration_batches(
            calibration_data, prepare_inputs, batch_size, max_batches
        ):
            model(batch)
            count += 1
    return count


def convert_model(model: Module) -> List[str]:
    """Freeze observers and switch every wrapper into quantized mode."""
    converted = []
    for name, module in model.named_modules():
        if isinstance(module, QuantizedModule):
            module.convert()
            converted.append(name)
    return converted


def storage_report(model: Module) -> List[dict]:
    """Per-module packed weight storage for a converted model.

    One row per quantized wrapper holding a packed weight: module name,
    storage format, packed bytes (codes + scales), dense float32 bytes and
    their ratio.  Feeds the workflow summary and
    ``benchmarks/bench_memory_footprint.py``.
    """
    rows = []
    for name, module in model.named_modules():
        if isinstance(module, QuantizedModule) and module.weight_q is not None:
            stats = module.weight_storage_nbytes()
            rows.append(
                {
                    "module": name,
                    "format": module.weight_q.fmt.name,
                    "packed_bytes": stats["packed_bytes"],
                    "fp32_bytes": stats["fp32_bytes"],
                    "ratio": stats["ratio"],
                }
            )
    return rows


def deploy_model(model: Module, serving_mode: Optional[str] = None) -> int:
    """Switch every converted wrapper into restore-free deployment mode.

    Drops the pristine float32 originals and the dequant caches so resident
    weight bytes approach the packed footprint; ``restore()`` raises from now
    on.  Optionally sets the serving mode in the same pass.  Returns the
    number of wrappers deployed.
    """
    count = 0
    for _, module in model.named_modules():
        if isinstance(module, QuantizedModule):
            if serving_mode is not None:
                module.set_serving_mode(serving_mode)
            module.drop_originals()
            count += 1
    return count


def set_serving_mode(
    model: Module,
    mode: str,
    block_channels: Optional[int] = None,
    prefetch: Union[bool, str, None] = None,
) -> int:
    """Set the serving mode (``"cached"`` / ``"streaming"``) on every wrapper.

    ``block_channels`` pins the streaming block size on every wrapper (the
    per-module equivalent of the ``REPRO_STREAM_BLOCK`` environment variable);
    ``prefetch`` selects block prefetch on operators with a blocked streaming
    kernel: ``True`` for per-layer double buffering, ``"pipeline"`` for
    cross-layer pipelined decode — this is where the model-level wiring
    happens: one shared :class:`~repro.serving.prefetch.PipelinePrefetcher`
    is built over the model's blocked streaming wrappers in module definition
    order (the workflow's usual proxy for execution order) and attached to
    each of them, so layer *k+1*'s first blocks decode while layer *k*
    finishes.  ``None`` leaves either setting untouched.
    """
    count = 0
    wrappers = []
    for _, module in model.named_modules():
        if isinstance(module, QuantizedModule):
            module.set_serving_mode(mode, block_channels=block_channels, prefetch=prefetch)
            wrappers.append(module)
            count += 1
    if prefetch == "pipeline" and mode == "streaming":
        # lazy import: the quantization layer must stay importable without
        # the serving package in the loop
        from repro.serving.prefetch import PipelinePrefetcher

        targets = [
            module
            for module in wrappers
            if module.streaming_prefetch == "pipeline"
            and module.weight_q is not None
            and hasattr(module, "_iter_weight_blocks")
        ]
        if targets:
            pipeline = PipelinePrefetcher(targets)
            for module in targets:
                module._pipeline = pipeline
    return count


def _storage_base(array: np.ndarray) -> np.ndarray:
    """Walk views back to the array that owns the bytes (broadcasts → their base)."""
    while isinstance(array, np.ndarray) and isinstance(array.base, np.ndarray):
        array = array.base
    return array


def resident_report(model: Union[Module, Sequence[Module]]) -> dict:
    """Actual bytes resident for the model's weights, deduplicated by storage.

    Unlike :func:`storage_report` (packed bytes *at rest*), this counts what
    is really held in memory right now: parameter/buffer storage (views share
    their base, so a deployment placeholder costs its 4 real bytes, not its
    dense shape), packed codes/scales, materialised dequant caches and any
    retained float32 originals.  ``fp32_bytes`` is what the same model costs
    with every parameter dense float32 — the serving benchmark's baseline.

    mmap-loaded storage is counted separately: arrays backed by an
    ``np.memmap`` view of the checkpoint file (``load_quantized(...,
    mmap=True)``) occupy address space, not committed memory — the kernel
    pages them in on first touch and may drop them again under pressure.
    They land in ``mapped_bytes`` (deduplicated per mapping, so one mapped
    checkpoint counts its file size once no matter how many views alias it),
    while ``resident_bytes``/``ratio`` cover only materialised private
    storage.  A cold mmap load therefore reports near-zero resident bytes
    until a forward touches the codes.

    ``model`` may also be a sequence of modules — e.g. serving-engine
    replicas.  Deduplication then spans the whole fleet: replicas loaded with
    ``load_quantized(..., mmap=True, share_views=True)`` alias one file
    mapping, so their shared checkpoint bytes are counted exactly once while
    ``fp32_bytes`` still sums every replica's dense cost.
    """
    models = list(model) if isinstance(model, (list, tuple)) else [model]
    storages = {}
    mapped = {}
    fp32_bytes = 0

    def _tally(array: np.ndarray) -> None:
        base = _storage_base(array)
        if is_memory_mapped(base):
            mapped[id(base)] = base.nbytes
        else:
            storages[id(base)] = base.nbytes

    for entry in models:
        for _, param in entry.named_parameters():
            _tally(param.data)
            fp32_bytes += param.data.size * 4
        for _, buf in entry.named_buffers():
            _tally(buf)
            fp32_bytes += np.asarray(buf).size * 4
        for _, module in entry.named_modules():
            if isinstance(module, QuantizedModule):
                for array in module.weight_resident_arrays():
                    _tally(array)
    resident = int(sum(storages.values()))
    report = {
        "resident_bytes": resident,
        "mapped_bytes": int(sum(mapped.values())),
        "fp32_bytes": int(fp32_bytes),
        "ratio": resident / fp32_bytes if fp32_bytes else 1.0,
    }
    plan_stats = _aggregate_plan_stats(models)
    if plan_stats is not None:
        report["plan_cache"] = plan_stats
    return report


def _aggregate_plan_stats(models: Sequence[Module]) -> Optional[dict]:
    """Summed plan-cache counters across every model carrying a cache, or None."""
    from repro.graph import plan_cache_of

    totals: Optional[dict] = None
    for entry in models:
        cache = plan_cache_of(entry)
        if cache is None:
            continue
        stats = cache.stats()
        if totals is None:
            totals = dict(stats)
        else:
            for key, value in stats.items():
                totals[key] += value
    return totals


def compile_model(model: Module, example_inputs, max_plans: int = 32):
    """Install a plan cache on ``model`` and warm it with example inputs.

    ``example_inputs`` is one argument tuple (or a sequence of argument
    tuples) of ``Tensor``/ndarray values representative of serving traffic.
    Each tuple is traced, fused and compiled under ``no_grad`` exactly as the
    first live forward for its key would be; shapes not warmed here still
    compile lazily on first sight.  The model is put in ``eval()`` mode —
    compiled plans only ever dispatch for inference forwards.

    Returns the installed :class:`~repro.graph.cache.PlanCache` (also
    reachable afterwards via :func:`repro.graph.plan_cache_of`; counters show
    up in :func:`resident_report` under ``"plan_cache"``).
    """
    from repro.graph import install_plan_cache

    model.eval()
    cache = install_plan_cache(model, max_plans=max_plans)
    if example_inputs is None:
        batches = []
    elif isinstance(example_inputs, (list,)) and all(
        isinstance(item, tuple) for item in example_inputs
    ):
        batches = example_inputs
    elif isinstance(example_inputs, tuple):
        batches = [example_inputs]
    else:
        batches = [(example_inputs,)]
    with no_grad():
        for batch in batches:
            model(*batch)
    return cache


def quantize_model(
    model: Module,
    recipe: QuantizationRecipe,
    calibration_data: CalibrationData = None,
    prepare_inputs: PrepareFn = lambda x: Tensor(x),
    is_convolutional: bool = False,
    calibration_batch_size: int = 32,
    bn_calibration_data: CalibrationData = None,
    inplace: bool = False,
    deploy: bool = False,
    serving_mode: Optional[str] = None,
) -> QuantizationResult:
    """Quantize a trained FP32 model following the paper's workflow (Figure 2).

    Parameters
    ----------
    model:
        Trained FP32 model (left untouched unless ``inplace=True``).
    recipe:
        The quantization recipe (standard / extended / INT8 baseline).
    calibration_data:
        Calibration samples for static range calibration (an
        :class:`~repro.data.synthetic.ArrayDataset` or a sequence of input
        batches).  Not needed for purely dynamic or E5M2-direct recipes.
    prepare_inputs:
        How to turn a raw numpy batch into model inputs (matches the task).
    is_convolutional:
        Enables the convolution-network first/last-operator exception.
    bn_calibration_data:
        Data used for BatchNorm re-calibration when the recipe requests it
        (falls back to ``calibration_data``).
    deploy:
        Enter restore-free deployment mode after conversion (see
        :func:`deploy_model`): originals and caches dropped, resident weight
        bytes ≈ the packed footprint, ``restore()`` raises.
    serving_mode:
        Optionally set ``"cached"`` / ``"streaming"`` on every wrapper.
    """
    target = model if inplace else clone_module(model)
    target.eval()

    smoothquant_applied = False
    if recipe.smoothquant:
        smoothquant_applied = apply_smoothquant(
            target,
            calibration_data,
            prepare_inputs=prepare_inputs,
            alpha=recipe.smoothquant_alpha,
            batch_size=calibration_batch_size,
        ) > 0

    result = prepare_model(target, recipe, is_convolutional=is_convolutional)
    result.smoothquant_applied = smoothquant_applied

    # Gate on the per-quantizer configs alone: a mixed recipe whose top-level
    # approach is dynamic can still contain static per-module overrides, and
    # those would otherwise be converted with unobserved ranges.
    needs_calibration = any(
        q.config.approach is Approach.STATIC and q.config.enabled
        for _, m in target.named_modules()
        if isinstance(m, QuantizedModule)
        for q in m.input_quantizers
    )
    if needs_calibration:
        if calibration_data is None:
            raise ValueError(
                f"recipe {recipe.name!r} uses static quantization and requires calibration_data"
            )
        used = calibrate_model(
            target,
            calibration_data,
            prepare_inputs=prepare_inputs,
            batch_size=calibration_batch_size,
        )
        logger.debug("calibrated %s on %d batches", recipe.name, used)

    for _, module in target.named_modules():
        if isinstance(module, QuantizedModule):
            module.stop_observing()
    convert_model(target)

    for row in storage_report(target):
        result.weight_bytes_packed += row["packed_bytes"]
        result.weight_bytes_fp32 += row["fp32_bytes"]

    if recipe.batchnorm_calibration:
        data = bn_calibration_data if bn_calibration_data is not None else calibration_data
        if data is not None:
            calibrate_batchnorm(
                target,
                data,
                prepare_inputs=prepare_inputs,
                num_samples=recipe.bn_calibration_samples,
                transform=recipe.bn_calibration_transform,
                batch_size=calibration_batch_size,
            )
            result.batchnorm_calibrated = True

    # Deployment last: BN calibration runs forwards that would re-materialise
    # the caches deploy just dropped.
    if serving_mode is not None:
        set_serving_mode(target, serving_mode)
    if deploy:
        deploy_model(target)

    return result
