"""Accuracy-driven automatic tuning (paper Section 3 and Appendix A.1).

The tuner searches the recipe space for the configuration that meets the
accuracy target (1% relative loss by default) while quantizing as much of the
model as possible.  The search order follows the paper's workflow: start from
the standard scheme in the preferred format, then incrementally apply the
extended-scheme options (mixed formats, dynamic quantization, operator
fallbacks) in a feedback loop until the target is met or the search space is
exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence

from repro.nn.module import Module
from repro.quantization.metrics import (
    DEFAULT_RELATIVE_LOSS_TARGET,
    meets_accuracy_target,
    relative_accuracy_loss,
)
from repro.quantization.qconfig import (
    Approach,
    QuantFormat,
    QuantizationRecipe,
    extended_recipe,
    standard_recipe,
)
from repro.quantization.workflow import QuantizationResult, quantize_model
from repro.utils.logging import get_logger

__all__ = ["TuningTrial", "TuningResult", "AutoTuner", "default_search_space"]

logger = get_logger("quantization.tuning")


@dataclass
class TuningTrial:
    """One evaluated point of the search space."""

    recipe: QuantizationRecipe
    metric: float
    relative_loss: float
    passed: bool
    num_quantized: int


@dataclass
class TuningResult:
    """Outcome of a tuning run: the best trial plus the full history."""

    best: Optional[TuningTrial]
    trials: List[TuningTrial] = field(default_factory=list)
    fp32_metric: float = 0.0

    @property
    def succeeded(self) -> bool:
        return self.best is not None and self.best.passed

    def summary(self) -> str:
        lines = [f"fp32 metric: {self.fp32_metric:.4f}", f"trials: {len(self.trials)}"]
        for trial in self.trials:
            flag = "PASS" if trial.passed else "fail"
            lines.append(
                f"  [{flag}] {trial.recipe.name}: metric={trial.metric:.4f} "
                f"rel-loss={trial.relative_loss * 100:.2f}% ops={trial.num_quantized}"
            )
        if self.best is not None:
            lines.append(f"best: {self.best.recipe.name}")
        return "\n".join(lines)


def default_search_space(
    domain: str = "nlp",
    fmt: QuantFormat = QuantFormat.E4M3,
) -> List[QuantizationRecipe]:
    """The paper's default tuning order for a workload domain.

    NLP: standard static -> mixed FP8 formats -> dynamic -> SmoothQuant+mixed.
    CV:  standard static (first/last skipped) -> extended with BN calibration ->
    E3M4 fallback -> quantize-first/last variant last (it is an accuracy risk).
    """
    if domain == "nlp":
        return [
            standard_recipe(fmt, name=f"standard-{fmt.value}"),
            extended_recipe(fmt, mixed_formats=True, name="extended-mixed"),
            standard_recipe(fmt, approach=Approach.DYNAMIC, name=f"dynamic-{fmt.value}"),
            extended_recipe(
                fmt, mixed_formats=True, smoothquant=True, name="extended-mixed-smoothquant"
            ),
        ]
    return [
        standard_recipe(fmt, name=f"standard-{fmt.value}"),
        extended_recipe(fmt, batchnorm_calibration=True, name=f"extended-{fmt.value}-bncal"),
        standard_recipe(QuantFormat.E3M4, name="standard-E3M4"),
        extended_recipe(QuantFormat.E3M4, batchnorm_calibration=True, name="extended-E3M4-bncal"),
    ]


class AutoTuner:
    """Accuracy-driven recipe search.

    Parameters
    ----------
    evaluate_fn:
        Callable mapping a quantized model to its task metric (higher better).
    fp32_metric:
        The FP32 baseline metric the relative-loss criterion compares against.
    relative_loss_target:
        Pass threshold (default: the paper's 1%).
    objective:
        ``"accuracy"`` stops at the first passing recipe in search order
        (maximum-coverage-first ordering); ``"best"`` evaluates the whole space
        and returns the recipe with the smallest loss.
    """

    def __init__(
        self,
        evaluate_fn: Callable[[Module], float],
        fp32_metric: float,
        relative_loss_target: float = DEFAULT_RELATIVE_LOSS_TARGET,
        objective: str = "accuracy",
    ) -> None:
        if objective not in ("accuracy", "best"):
            raise ValueError("objective must be 'accuracy' or 'best'")
        self.evaluate_fn = evaluate_fn
        self.fp32_metric = fp32_metric
        self.relative_loss_target = relative_loss_target
        self.objective = objective

    def evaluate_recipe(
        self,
        model: Module,
        recipe: QuantizationRecipe,
        **quantize_kwargs,
    ) -> TuningTrial:
        """Quantize with one recipe and evaluate it."""
        result: QuantizationResult = quantize_model(model, recipe, **quantize_kwargs)
        metric = self.evaluate_fn(result.model)
        rel_loss = relative_accuracy_loss(self.fp32_metric, metric)
        passed = meets_accuracy_target(self.fp32_metric, metric, self.relative_loss_target)
        return TuningTrial(
            recipe=recipe,
            metric=metric,
            relative_loss=rel_loss,
            passed=passed,
            num_quantized=result.num_quantized,
        )

    def tune(
        self,
        model: Module,
        search_space: Sequence[QuantizationRecipe],
        fallback_candidates: Sequence[str] = (),
        max_fallback_rounds: int = 2,
        **quantize_kwargs,
    ) -> TuningResult:
        """Search ``search_space`` (plus operator-fallback refinements) for a passing recipe.

        ``fallback_candidates`` are module names (most-sensitive first) that may
        be pushed back to FP32 if no recipe in the base space passes — this is
        the "operator level fallback" loop described in Appendix A.1.
        """
        result = TuningResult(best=None, fp32_metric=self.fp32_metric)
        best_trial: Optional[TuningTrial] = None

        def consider(trial: TuningTrial) -> None:
            nonlocal best_trial
            result.trials.append(trial)
            if best_trial is None or trial.relative_loss < best_trial.relative_loss:
                best_trial = trial

        for recipe in search_space:
            trial = self.evaluate_recipe(model, recipe, **quantize_kwargs)
            logger.info(
                "tuning trial %s: metric=%.4f rel-loss=%.2f%% %s",
                recipe.name,
                trial.metric,
                trial.relative_loss * 100,
                "PASS" if trial.passed else "fail",
            )
            consider(trial)
            if trial.passed and self.objective == "accuracy":
                result.best = trial
                return result

        # operator-level fallback refinement on the best recipe so far
        if best_trial is not None and not best_trial.passed and fallback_candidates:
            base = best_trial.recipe
            fallbacks: List[str] = list(base.fallback_modules)
            for round_idx in range(max_fallback_rounds):
                next_candidates = [c for c in fallback_candidates if c not in fallbacks]
                if not next_candidates:
                    break
                fallbacks.append(next_candidates[0])
                refined = replace(
                    base,
                    name=f"{base.name}+fallback{round_idx + 1}",
                    fallback_modules=tuple(fallbacks),
                )
                trial = self.evaluate_recipe(model, refined, **quantize_kwargs)
                consider(trial)
                if trial.passed and self.objective == "accuracy":
                    result.best = trial
                    return result

        result.best = best_trial
        return result
