"""SmoothQuant (Xiao et al., 2022) — activation-outlier smoothing for NLP models.

The paper enables SmoothQuant with its default smoothing strength (alpha = 0.5)
on NLP models before quantization.  The transformation migrates quantization
difficulty from activations to weights: for every (LayerNorm -> Linear) pair it
computes a per-channel factor

    s_j = max|X_j|^alpha / max|W_j|^(1-alpha)

then divides the LayerNorm affine parameters by ``s`` (activations shrink) and
multiplies the consuming Linear's input columns by ``s`` (weights absorb the
range).  In exact arithmetic the network function is unchanged; under
quantization the activation tensor no longer has extreme outlier channels.
This is the exact inverse of the outlier injection in
:mod:`repro.models.outliers`, which is why it restores INT8 accuracy on the
outlier-injected NLP zoo models.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.data.synthetic import ArrayDataset, DataLoader
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.norm import LayerNorm
from repro.utils.logging import get_logger

__all__ = ["apply_smoothquant", "find_smoothable_pairs", "collect_channel_absmax"]

logger = get_logger("quantization.smoothquant")


def find_smoothable_pairs(model: Module) -> List[Tuple[str, LayerNorm, str, Linear]]:
    """Find (LayerNorm, Linear) pairs where the norm output feeds the linear directly.

    The zoo's pre-LN transformer blocks expose this as the attribute pair
    ``ln2``/``fc1`` (FFN input) and ``ln1``/attention query projection; any
    module that has both attributes with the right types is picked up.
    """
    pairs: List[Tuple[str, LayerNorm, str, Linear]] = []
    for parent_name, parent in model.named_modules():
        # Only (norm, linear) pairs where the norm output feeds a *single*
        # linear can be rescaled without changing the FP32 function; in the
        # zoo's pre-LN blocks that is the FFN input pair ln2 -> fc1 (ln1 feeds
        # all three attention projections, so it is left untouched).
        candidates = [("ln2", "fc1")]
        for ln_attr, linear_path in candidates:
            ln = getattr(parent, ln_attr, None)
            if not isinstance(ln, LayerNorm):
                continue
            linear: Optional[Module] = parent
            for part in linear_path.split("."):
                linear = getattr(linear, part, None)
                if linear is None:
                    break
            if not isinstance(linear, Linear):
                continue
            ln_name = f"{parent_name}.{ln_attr}" if parent_name else ln_attr
            linear_name = f"{parent_name}.{linear_path}" if parent_name else linear_path
            pairs.append((ln_name, ln, linear_name, linear))
    return pairs


def collect_channel_absmax(
    model: Module,
    modules: List[Module],
    calibration_data: Union[ArrayDataset, list, None],
    prepare_inputs: Callable[[np.ndarray], object],
    batch_size: int = 32,
    max_batches: int = 8,
) -> Dict[int, np.ndarray]:
    """Run calibration batches and record per-channel absolute maxima of module outputs."""
    stats: Dict[int, np.ndarray] = {}
    handles = []

    def make_hook(key: int):
        def hook(_module, _inputs, output) -> None:
            data = output.data if isinstance(output, Tensor) else np.asarray(output)
            absmax = np.abs(data.reshape(-1, data.shape[-1])).max(axis=0)
            if key in stats:
                stats[key] = np.maximum(stats[key], absmax)
            else:
                stats[key] = absmax

        return hook

    for module in modules:
        handles.append(module.register_forward_hook(make_hook(id(module))))

    try:
        if isinstance(calibration_data, ArrayDataset):
            loader = DataLoader(calibration_data, batch_size=batch_size, shuffle=False)
            batches = (inputs for inputs, _ in loader)
        else:
            batches = iter(calibration_data or [])
        model.eval()
        with no_grad():
            for idx, inputs in enumerate(batches):
                if idx >= max_batches:
                    break
                model(prepare_inputs(inputs) if isinstance(inputs, np.ndarray) else inputs)
    finally:
        for handle in handles:
            handle.remove()
    return stats


def apply_smoothquant(
    model: Module,
    calibration_data: Union[ArrayDataset, list, None],
    prepare_inputs: Callable[[np.ndarray], object] = lambda x: Tensor(x),
    alpha: float = 0.5,
    batch_size: int = 32,
    eps: float = 1e-5,
) -> int:
    """Apply SmoothQuant in place; returns the number of smoothed (LayerNorm, Linear) pairs.

    Requires calibration data to measure per-channel activation ranges; if none
    is provided (or the model has no smoothable pairs) the model is returned
    unchanged and 0 is reported.
    """
    if calibration_data is None:
        logger.debug("smoothquant skipped: no calibration data")
        return 0
    pairs = find_smoothable_pairs(model)
    if not pairs:
        return 0

    ln_modules = [ln for _, ln, _, _ in pairs]
    stats = collect_channel_absmax(
        model, ln_modules, calibration_data, prepare_inputs, batch_size=batch_size
    )

    smoothed = 0
    for ln_name, ln, linear_name, linear in pairs:
        act_absmax = stats.get(id(ln))
        if act_absmax is None:
            continue
        weight_absmax = np.abs(linear.weight.data).max(axis=0)  # per input channel
        act_absmax = np.maximum(act_absmax, eps)
        weight_absmax = np.maximum(weight_absmax, eps)
        scale = act_absmax**alpha / weight_absmax ** (1.0 - alpha)
        scale = np.maximum(scale, eps).astype(np.float32)
        # normalise so channels without outliers are barely affected
        scale = scale / np.median(scale)
        scale = np.maximum(scale, 1.0)

        ln.weight.data /= scale
        ln.bias.data /= scale
        linear.weight.data *= scale[None, :]
        smoothed += 1
        logger.debug(
            "smoothquant %s -> %s: max scale %.2f", ln_name, linear_name, float(scale.max())
        )
    return smoothed
