"""Quantization configuration: formats, granularity, approach, per-operator configs and recipes.

A :class:`QuantizationRecipe` is the declarative description of everything the
workflow in :mod:`repro.quantization.workflow` does to a model.  The two
factory functions :func:`standard_recipe` and :func:`extended_recipe` encode
the paper's Section 3.1 / 3.2 schemes; :func:`int8_recipe` builds the INT8
baseline used throughout the evaluation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple, Union

from repro.fp8.formats import FP8Format, get_format
from repro.fp8.int8 import INT8_ASYMMETRIC, INT8_SYMMETRIC, Int8Spec

__all__ = [
    "QuantFormat",
    "Granularity",
    "Approach",
    "TensorQuantConfig",
    "OperatorQuantConfig",
    "QuantizationRecipe",
    "standard_recipe",
    "extended_recipe",
    "int8_recipe",
    "STANDARD_OPERATORS",
    "EXTENDED_OPERATORS",
]


class QuantFormat(str, enum.Enum):
    """Numeric formats supported by the framework."""

    E5M2 = "E5M2"
    E4M3 = "E4M3"
    E3M4 = "E3M4"
    E2M5 = "E2M5"
    INT8 = "INT8"
    INT8_ASYM = "INT8-asym"
    FP32 = "FP32"

    @property
    def is_fp8(self) -> bool:
        return self in (QuantFormat.E5M2, QuantFormat.E4M3, QuantFormat.E3M4, QuantFormat.E2M5)

    @property
    def is_int8(self) -> bool:
        return self in (QuantFormat.INT8, QuantFormat.INT8_ASYM)

    def fp8_format(self) -> FP8Format:
        if not self.is_fp8:
            raise ValueError(f"{self.value} is not an FP8 format")
        return get_format(self.value)

    def int8_spec(self) -> Int8Spec:
        if not self.is_int8:
            raise ValueError(f"{self.value} is not an INT8 format")
        return INT8_SYMMETRIC if self is QuantFormat.INT8 else INT8_ASYMMETRIC


class Granularity(str, enum.Enum):
    """Scaling granularity."""

    PER_TENSOR = "per_tensor"
    PER_CHANNEL = "per_channel"


class Approach(str, enum.Enum):
    """When activation ranges are determined.

    ``STATIC``  — ranges calibrated offline on calibration data (paper default).
    ``DYNAMIC`` — ranges computed from each batch at inference time.
    ``DIRECT``  — no range calibration at all (scale = 1); used by E5M2, whose
    dynamic range covers typical activations without rescaling.
    """

    STATIC = "static"
    DYNAMIC = "dynamic"
    DIRECT = "direct"


@dataclass(frozen=True)
class TensorQuantConfig:
    """How a single tensor role (weight or activation) is quantized."""

    fmt: QuantFormat
    granularity: Granularity = Granularity.PER_TENSOR
    approach: Approach = Approach.STATIC
    observer: str = "minmax"

    @property
    def enabled(self) -> bool:
        return self.fmt is not QuantFormat.FP32

    def to_dict(self) -> Dict[str, str]:
        """JSON-safe form (inverted by :meth:`from_dict`); used by checkpoints."""
        return {
            "fmt": self.fmt.value,
            "granularity": self.granularity.value,
            "approach": self.approach.value,
            "observer": self.observer,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "TensorQuantConfig":
        return cls(
            fmt=QuantFormat(data["fmt"]),
            granularity=Granularity(data["granularity"]),
            approach=Approach(data["approach"]),
            observer=data.get("observer", "minmax"),
        )


@dataclass(frozen=True)
class OperatorQuantConfig:
    """Weight + activation configuration for one operator type (or one named operator)."""

    activation: TensorQuantConfig
    weight: Optional[TensorQuantConfig] = None

    def with_format(
        self, activation_fmt: QuantFormat, weight_fmt: Optional[QuantFormat] = None
    ) -> "OperatorQuantConfig":
        weight = self.weight
        if weight is not None and weight_fmt is not None:
            weight = replace(weight, fmt=weight_fmt)
        return OperatorQuantConfig(
            activation=replace(self.activation, fmt=activation_fmt), weight=weight
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (inverted by :meth:`from_dict`); used by checkpoints."""
        return {
            "activation": self.activation.to_dict(),
            "weight": None if self.weight is None else self.weight.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "OperatorQuantConfig":
        weight = data.get("weight")
        return cls(
            activation=TensorQuantConfig.from_dict(data["activation"]),
            weight=None if weight is None else TensorQuantConfig.from_dict(weight),
        )


# Operator-type names used by recipes (they map onto module classes in qmodules).
STANDARD_OPERATORS: Tuple[str, ...] = ("Conv2d", "Linear", "Embedding", "EmbeddingBag")
EXTENDED_OPERATORS: Tuple[str, ...] = STANDARD_OPERATORS + (
    "BatchMatMul",
    "LayerNorm",
    "BatchNorm2d",
    "BatchNorm1d",
    "Add",
    "Mul",
)


@dataclass
class QuantizationRecipe:
    """Full declarative description of a quantization run (one point in the tuning space)."""

    name: str
    activation_fmt: QuantFormat
    weight_fmt: QuantFormat
    approach: Approach = Approach.STATIC
    operators: Tuple[str, ...] = STANDARD_OPERATORS
    weight_granularity: Granularity = Granularity.PER_CHANNEL
    activation_granularity: Granularity = Granularity.PER_TENSOR
    observer: str = "minmax"
    # convolutional-network handling of the first conv / last linear (paper §3.1)
    skip_first_operator: bool = True
    skip_last_operator: bool = True
    # extended-scheme options
    smoothquant: bool = False
    smoothquant_alpha: float = 0.5
    batchnorm_calibration: bool = False
    bn_calibration_samples: int = 3000
    bn_calibration_transform: str = "training"
    # per-operator-type or per-module-name overrides
    operator_overrides: Dict[str, OperatorQuantConfig] = field(default_factory=dict)
    module_overrides: Dict[str, OperatorQuantConfig] = field(default_factory=dict)
    # modules that must stay in FP32 (accuracy-driven fallback list)
    fallback_modules: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    def tensor_configs(self) -> OperatorQuantConfig:
        """Default per-operator config derived from the recipe-level settings."""
        approach = self.approach
        if self.activation_fmt is QuantFormat.E5M2 and approach is Approach.STATIC:
            # E5M2 uses direct quantization: its dynamic range needs no calibration.
            approach = Approach.DIRECT
        activation = TensorQuantConfig(
            fmt=self.activation_fmt,
            granularity=self.activation_granularity,
            approach=approach,
            observer=self.observer,
        )
        weight = TensorQuantConfig(
            fmt=self.weight_fmt,
            granularity=self.weight_granularity,
            approach=Approach.STATIC,
            observer="minmax",
        )
        return OperatorQuantConfig(activation=activation, weight=weight)

    def config_for(self, type_name: str, module_name: str) -> Optional[OperatorQuantConfig]:
        """Resolve the config for a module (or None if it should stay FP32)."""
        if module_name in self.fallback_modules:
            return None
        if module_name in self.module_overrides:
            return self.module_overrides[module_name]
        if type_name in self.operator_overrides:
            return self.operator_overrides[type_name]
        if type_name not in self.operators:
            return None
        return self.tensor_configs()

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "activation_fmt": self.activation_fmt.value,
            "weight_fmt": self.weight_fmt.value,
            "approach": self.approach.value,
            "operators": list(self.operators),
            "skip_first_operator": self.skip_first_operator,
            "skip_last_operator": self.skip_last_operator,
            "smoothquant": self.smoothquant,
            "batchnorm_calibration": self.batchnorm_calibration,
            "fallback_modules": list(self.fallback_modules),
        }

    def to_dict(self) -> Dict[str, object]:
        """Full JSON-safe form of the recipe, invertible via :meth:`from_dict`.

        Unlike :meth:`describe` (a human-oriented summary), this covers every
        field — granularities, observers, SmoothQuant/BN-calibration settings
        and the per-operator/per-module override tables — so a checkpoint can
        embed the exact recipe that produced it.
        """
        return {
            "name": self.name,
            "activation_fmt": self.activation_fmt.value,
            "weight_fmt": self.weight_fmt.value,
            "approach": self.approach.value,
            "operators": list(self.operators),
            "weight_granularity": self.weight_granularity.value,
            "activation_granularity": self.activation_granularity.value,
            "observer": self.observer,
            "skip_first_operator": self.skip_first_operator,
            "skip_last_operator": self.skip_last_operator,
            "smoothquant": self.smoothquant,
            "smoothquant_alpha": self.smoothquant_alpha,
            "batchnorm_calibration": self.batchnorm_calibration,
            "bn_calibration_samples": self.bn_calibration_samples,
            "bn_calibration_transform": self.bn_calibration_transform,
            "operator_overrides": {k: v.to_dict() for k, v in self.operator_overrides.items()},
            "module_overrides": {k: v.to_dict() for k, v in self.module_overrides.items()},
            "fallback_modules": list(self.fallback_modules),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "QuantizationRecipe":
        return cls(
            name=data["name"],
            activation_fmt=QuantFormat(data["activation_fmt"]),
            weight_fmt=QuantFormat(data["weight_fmt"]),
            approach=Approach(data["approach"]),
            operators=tuple(data.get("operators", STANDARD_OPERATORS)),
            weight_granularity=Granularity(data.get("weight_granularity", "per_channel")),
            activation_granularity=Granularity(data.get("activation_granularity", "per_tensor")),
            observer=data.get("observer", "minmax"),
            skip_first_operator=data.get("skip_first_operator", True),
            skip_last_operator=data.get("skip_last_operator", True),
            smoothquant=data.get("smoothquant", False),
            smoothquant_alpha=data.get("smoothquant_alpha", 0.5),
            batchnorm_calibration=data.get("batchnorm_calibration", False),
            bn_calibration_samples=data.get("bn_calibration_samples", 3000),
            bn_calibration_transform=data.get("bn_calibration_transform", "training"),
            operator_overrides={
                k: OperatorQuantConfig.from_dict(v)
                for k, v in data.get("operator_overrides", {}).items()
            },
            module_overrides={
                k: OperatorQuantConfig.from_dict(v)
                for k, v in data.get("module_overrides", {}).items()
            },
            fallback_modules=tuple(data.get("fallback_modules", ())),
        )


FormatLike = Union[str, QuantFormat]


def _fmt(fmt: FormatLike) -> QuantFormat:
    return fmt if isinstance(fmt, QuantFormat) else QuantFormat(
        str(fmt).upper() if str(fmt).lower() != "int8-asym" else "INT8-asym"
    )


def standard_recipe(
    fmt: FormatLike = QuantFormat.E4M3,
    approach: Approach = Approach.STATIC,
    weight_fmt: Optional[FormatLike] = None,
    **kwargs,
) -> QuantizationRecipe:
    """The paper's *standard quantization scheme* (Section 3.1).

    Conv / Linear / Embedding operators, per-channel weight scaling, per-tensor
    activation scaling with max calibration, first & last operators of
    convolutional networks kept in FP32.
    """
    fmt = _fmt(fmt)
    weight_fmt = _fmt(weight_fmt) if weight_fmt is not None else fmt
    return QuantizationRecipe(
        name=kwargs.pop("name", f"standard-{fmt.value}-{approach.value}"),
        activation_fmt=fmt,
        weight_fmt=weight_fmt,
        approach=approach,
        operators=STANDARD_OPERATORS,
        **kwargs,
    )


def extended_recipe(
    fmt: FormatLike = QuantFormat.E4M3,
    approach: Approach = Approach.STATIC,
    weight_fmt: Optional[FormatLike] = None,
    mixed_formats: bool = False,
    smoothquant: bool = False,
    batchnorm_calibration: bool = True,
    **kwargs,
) -> QuantizationRecipe:
    """The paper's *extended quantization scheme* (Section 3.2).

    Adds LayerNorm / BatchNorm / BatchMatMul / element-wise operator coverage,
    optional mixed FP8 formats (E4M3 activations + E3M4 weights) and BatchNorm
    calibration for CV models.
    """
    fmt = _fmt(fmt)
    if mixed_formats:
        activation_fmt, weight_fmt = QuantFormat.E4M3, QuantFormat.E3M4
    else:
        activation_fmt = fmt
        weight_fmt = _fmt(weight_fmt) if weight_fmt is not None else fmt
    return QuantizationRecipe(
        name=kwargs.pop(
            "name",
            f"extended-{activation_fmt.value}a-{weight_fmt.value}w-{approach.value}",
        ),
        activation_fmt=activation_fmt,
        weight_fmt=weight_fmt,
        approach=approach,
        operators=EXTENDED_OPERATORS,
        smoothquant=smoothquant,
        batchnorm_calibration=batchnorm_calibration,
        **kwargs,
    )


def int8_recipe(
    approach: Approach = Approach.STATIC,
    asymmetric_activations: bool = False,
    **kwargs,
) -> QuantizationRecipe:
    """The INT8 baseline: per-channel symmetric INT8 weights, per-tensor INT8 activations.

    The paper's Table 2 row uses static INT8 for CV models and dynamic INT8 for
    NLP models; pass the appropriate ``approach`` per workload.
    """
    act_fmt = QuantFormat.INT8_ASYM if asymmetric_activations else QuantFormat.INT8
    return QuantizationRecipe(
        name=kwargs.pop("name", f"int8-{approach.value}"),
        activation_fmt=act_fmt,
        weight_fmt=QuantFormat.INT8,
        approach=approach,
        operators=STANDARD_OPERATORS,
        **kwargs,
    )
