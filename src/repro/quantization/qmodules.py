"""Quantized operator wrappers (Q/DQ emulation over packed 8-bit storage).

Quantization is emulated exactly as in the paper's framework: the wrapped
operator still computes in FP32, but its weights are rounded onto the 8-bit
grid once at convert time and its activation inputs are rounded on every
forward call (with a scale that is either calibrated offline — *static* — or
computed from the batch — *dynamic*).  Each wrapper keeps the original float
module as a submodule, so parameter traversal, state dicts and repr all keep
working after conversion.

Weight storage follows the packed memory model of :mod:`repro.fp8.quantize`:
``convert()`` packs the weight **once** into a
:class:`~repro.fp8.quantize.QuantizedTensor` (one byte per element plus
per-channel scales) and never writes into the original float32 array.  The
float32 view the wrapped operator computes with is dequantized from the
packed codes and cached; :meth:`QuantizedModule.drop_weight_cache` releases
it again (the packed codes stay authoritative and the next forward
re-materialises it), and ``restore()`` re-binds the pristine original.  Activation Q/DQ routes through the
fused per-axis kernels (one absmax → scale → round → rescale call per tensor,
no materialised broadcast scale arrays).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.autograd.tensor import Tensor
from repro.fp8.int8 import int8_compute_qparams, int8_quantize_dequantize
from repro.fp8.quantize import QuantizedTensor, compute_scale, quantize_dequantize
from repro.nn.attention import BatchMatMul
from repro.nn.elementwise import Add, Mul
from repro.nn.layers import Conv2d, Embedding, EmbeddingBag, Linear
from repro.nn.module import Module
from repro.nn.norm import BatchNorm1d, BatchNorm2d, LayerNorm
from repro.quantization.observers import Observer, build_observer
from repro.quantization.qconfig import (
    Approach,
    Granularity,
    OperatorQuantConfig,
    QuantFormat,
    TensorQuantConfig,
)

__all__ = [
    "TensorQuantizer",
    "QuantizedModule",
    "QuantizedLinear",
    "QuantizedConv2d",
    "QuantizedEmbedding",
    "QuantizedLayerNorm",
    "QuantizedBatchNorm2d",
    "QuantizedBatchMatMul",
    "QuantizedAdd",
    "QuantizedMul",
    "QUANTIZED_MODULE_MAP",
    "wrap_module",
]


class TensorQuantizer:
    """Quantize/dequantize one tensor role (a weight or an activation input).

    The quantizer owns an :class:`~repro.quantization.observers.Observer` used
    during calibration and, after :meth:`freeze`, the calibrated range it needs
    at inference time.
    """

    def __init__(self, config: TensorQuantConfig, channel_axis: Optional[int] = None) -> None:
        self.config = config
        self.channel_axis = channel_axis if config.granularity is Granularity.PER_CHANNEL else None
        self.observer: Observer = build_observer(config, channel_axis=self.channel_axis)
        self.frozen = False
        self._absmax: Optional[np.ndarray] = None
        self._min: Optional[np.ndarray] = None
        self._max: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def observe(self, x: np.ndarray) -> None:
        if self.config.approach is Approach.STATIC and self.config.enabled:
            self.observer.observe(x)

    def freeze(self, fallback: Optional[np.ndarray] = None) -> None:
        """Fix the calibrated range.  ``fallback`` is used when no data was observed."""
        if not self.config.enabled or self.config.approach is not Approach.STATIC:
            self.frozen = True
            return
        if self.observer.ready:
            self._min, self._max = self.observer.calibrated_range()
            self._absmax = self.observer.calibrated_absmax()
        elif fallback is not None:
            self._absmax = np.asarray(np.max(np.abs(fallback)))
            self._min = np.asarray(np.min(fallback))
            self._max = np.asarray(np.max(fallback))
        else:
            raise RuntimeError(
                "static quantizer frozen without calibration data; run calibrate_model() first"
            )
        self.frozen = True

    # ------------------------------------------------------------------
    def _reshape_channelwise(self, values: np.ndarray, ndim: int) -> np.ndarray:
        if self.channel_axis is None or values.ndim == 0:
            return values
        shape = [1] * ndim
        shape[self.channel_axis] = -1
        return values.reshape(shape)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round ``x`` onto the configured 8-bit grid (returns float32)."""
        if not self.config.enabled:
            return np.asarray(x, dtype=np.float32)
        x = np.asarray(x, dtype=np.float32)
        fmt = self.config.fmt

        if fmt.is_fp8:
            fp8 = fmt.fp8_format()
            if self.config.approach is Approach.DIRECT:
                return quantize_dequantize(x, fp8, scale=np.asarray(1.0))
            if self.config.approach is Approach.DYNAMIC or not self.frozen:
                # one fused absmax→scale→round→rescale kernel call per tensor
                return quantize_dequantize(x, fp8, axis=self.channel_axis)
            absmax = self._reshape_channelwise(np.asarray(self._absmax), x.ndim)
            scale = compute_scale(x, fp8, absmax=absmax)
            return quantize_dequantize(x, fp8, scale=scale)

        # INT8 path
        spec = fmt.int8_spec()
        if self.config.approach is Approach.DYNAMIC or not self.frozen or self._min is None:
            scale, zero_point = int8_compute_qparams(x, spec=spec, axis=self.channel_axis)
        else:
            min_val = self._reshape_channelwise(np.asarray(self._min), x.ndim)
            max_val = self._reshape_channelwise(np.asarray(self._max), x.ndim)
            scale, zero_point = int8_compute_qparams(
                x, spec=spec, axis=self.channel_axis, min_val=min_val, max_val=max_val
            )
        return int8_quantize_dequantize(x, spec=spec, scale=scale, zero_point=zero_point)

    def quantize_packed(self, x: np.ndarray) -> Optional[QuantizedTensor]:
        """Pack ``x`` into real 8-bit storage (codes + scales) — the weight path.

        Returns ``None`` for a disabled (FP32) config.  Calibrated parameters
        are honoured exactly like :meth:`quantize`, and the resulting packed
        tensor dequantizes bit-identically to the values :meth:`quantize`
        produces, so swapping storage does not move any benchmark number.
        """
        if not self.config.enabled:
            return None
        x = np.asarray(x, dtype=np.float32)
        fmt = self.config.fmt

        if fmt.is_fp8:
            fp8 = fmt.fp8_format()
            if self.config.approach is Approach.DIRECT:
                return QuantizedTensor.quantize(x, fp8, scale=np.asarray(1.0))
            if self.config.approach is Approach.DYNAMIC or not self.frozen or self._absmax is None:
                return QuantizedTensor.quantize(x, fp8, axis=self.channel_axis)
            absmax = self._reshape_channelwise(np.asarray(self._absmax), x.ndim)
            return QuantizedTensor.quantize(x, fp8, absmax=absmax)

        spec = fmt.int8_spec()
        if self.config.approach is Approach.DYNAMIC or not self.frozen or self._min is None:
            return QuantizedTensor.quantize(x, spec, axis=self.channel_axis)
        min_val = self._reshape_channelwise(np.asarray(self._min), x.ndim)
        max_val = self._reshape_channelwise(np.asarray(self._max), x.ndim)
        return QuantizedTensor.quantize(
            x, spec, axis=self.channel_axis, min_val=min_val, max_val=max_val
        )

    def describe(self) -> dict:
        return {
            "format": self.config.fmt.value,
            "approach": self.config.approach.value,
            "granularity": self.config.granularity.value,
            "frozen": self.frozen,
            "absmax": None if self._absmax is None else np.asarray(self._absmax).tolist(),
        }


class QuantizedModule(Module):
    """Base wrapper: observes activations during calibration, Q/DQs them after conversion."""

    #: number of quantizable tensor inputs the wrapped operator takes
    num_inputs = 1
    #: whether the wrapped operator has a weight parameter to quantize
    has_weight = True
    #: axis of the weight tensor that indexes output channels
    weight_channel_axis = 0

    def __init__(self, inner: Module, config: OperatorQuantConfig, name: str = "") -> None:
        super().__init__()
        self.inner = inner
        self.config = config
        self.module_name = name
        self.observing = False
        self.quantizing = False
        self.input_quantizers = [
            TensorQuantizer(config.activation) for _ in range(self.num_inputs)
        ]
        self.weight_quantizer: Optional[TensorQuantizer] = None
        if self.has_weight and config.weight is not None and hasattr(inner, "weight"):
            self.weight_quantizer = TensorQuantizer(
                config.weight, channel_axis=self.weight_channel_axis
            )
        #: packed 8-bit storage of record for the quantized weight
        self.weight_q: Optional[QuantizedTensor] = None
        #: lazily dequantized float32 compute view of ``weight_q``
        self._weight_cache: Optional[np.ndarray] = None
        #: the pristine original float32 weight array (never written to)
        self._original_weight: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # calibration / conversion lifecycle
    # ------------------------------------------------------------------
    def start_observing(self) -> None:
        self.observing = True

    def stop_observing(self) -> None:
        self.observing = False

    def convert(self) -> None:
        """Freeze activation ranges and pack the weight into 8-bit storage.

        Idempotent: a second ``convert()`` on an already-converted module is a
        no-op.  (It used to re-snapshot ``inner.weight`` — by then already
        quantized — clobbering the original and turning ``restore()`` into a
        no-op.)  ``convert()`` after ``restore()`` re-converts from the
        restored original as before.
        """
        if self.quantizing:
            self.observing = False
            return
        for quantizer, fallback in zip(self.input_quantizers, self._calibration_fallbacks()):
            quantizer.freeze(fallback=fallback)
        if self.weight_quantizer is not None:
            weight = self.inner.weight.data
            self.weight_q = self.weight_quantizer.quantize_packed(weight)
            if self.weight_q is not None:
                # Snapshot by copy: external in-place writes to the bound
                # weight (e.g. load_state_dict) must not corrupt the pristine
                # original that restore() hands back.
                self._original_weight = weight.copy()
                self._weight_cache = None
        self.observing = False
        self.quantizing = True
        # Bind the dequantized view now so the module's visible weights (repr,
        # state_dict) are the quantized ones from the moment of conversion;
        # drop_weight_cache() returns to the packed-at-rest state.
        self._bind_weight()

    def restore(self) -> None:
        """Undo weight quantization (used by the tuning loop when falling back to FP32)."""
        if self._original_weight is not None:
            self.inner.weight.data = self._original_weight
        self._original_weight = None
        self._weight_cache = None
        self.weight_q = None
        self.quantizing = False

    def _calibration_fallbacks(self) -> Sequence[Optional[np.ndarray]]:
        """Per-input fallback data for freezing without calibration (weights only)."""
        return [None] * self.num_inputs

    # ------------------------------------------------------------------
    # packed weight plumbing
    # ------------------------------------------------------------------
    def quantized_weight(self) -> Optional[np.ndarray]:
        """The float32 compute view of the packed weight (dequantized on demand, cached)."""
        if self.weight_q is None:
            return None
        if self._weight_cache is None:
            self._weight_cache = self.weight_q.dequantize()
        return self._weight_cache

    def _bind_weight(self) -> None:
        """Point ``inner.weight`` at the dequantized view while quantizing."""
        if not self.quantizing or self.weight_q is None:
            return
        cache = self.quantized_weight()
        if self.inner.weight.data is not cache:
            self.inner.weight.data = cache

    def drop_weight_cache(self) -> None:
        """Release the float32 weight view; packed codes stay authoritative.

        The next quantized forward re-materialises it.  Between the drop and
        that forward the wrapper holds only the packed bytes (plus the
        original float32 array, until/unless ``restore()`` gives it back).
        """
        if self._weight_cache is not None and self._original_weight is not None:
            self.inner.weight.data = self._original_weight
        self._weight_cache = None

    def weight_storage_nbytes(self) -> Optional[dict]:
        """Packed vs dense byte counts for the quantized weight (None if unquantized)."""
        if self.weight_q is None:
            return None
        return {
            "packed_bytes": self.weight_q.nbytes,
            "fp32_bytes": self.weight_q.nbytes_dense,
            "ratio": self.weight_q.compression_ratio,
        }

    # ------------------------------------------------------------------
    def _process_inputs(self, inputs):
        processed = []
        for idx, value in enumerate(inputs):
            if isinstance(value, Tensor) and idx < len(self.input_quantizers):
                if self.observing:
                    self.input_quantizers[idx].observe(value.data)
                if self.quantizing:
                    value = Tensor(self.input_quantizers[idx].quantize(value.data))
            processed.append(value)
        return processed

    def forward(self, *inputs, **kwargs):
        self._bind_weight()
        return self.inner(*self._process_inputs(inputs), **kwargs)

    def extra_repr(self) -> str:
        act = self.config.activation
        w = self.config.weight
        parts = [f"activation={act.fmt.value}/{act.approach.value}"]
        if w is not None and self.has_weight:
            parts.append(f"weight={w.fmt.value}/{w.granularity.value}")
        return ", ".join(parts)


class QuantizedLinear(QuantizedModule):
    """Quantized fully-connected layer (per-channel weights, per-tensor activations)."""

    num_inputs = 1
    has_weight = True


class QuantizedConv2d(QuantizedModule):
    """Quantized 2D convolution."""

    num_inputs = 1
    has_weight = True


class QuantizedEmbedding(QuantizedModule):
    """Quantized embedding table: only the weight is quantized (indices are integers)."""

    num_inputs = 0
    has_weight = True

    def forward(self, indices, **kwargs):
        self._bind_weight()
        return self.inner(indices, **kwargs)


class QuantizedLayerNorm(QuantizedModule):
    """LayerNorm with quantized input activations (extended scheme operator)."""

    num_inputs = 1
    has_weight = False


class QuantizedBatchNorm2d(QuantizedModule):
    """BatchNorm with quantized input activations (extended scheme operator)."""

    num_inputs = 1
    has_weight = False


class QuantizedBatchMatMul(QuantizedModule):
    """Batched matmul with both inputs quantized (attention QK^T and probs-V products)."""

    num_inputs = 2
    has_weight = False


class QuantizedAdd(QuantizedModule):
    """Element-wise addition with both inputs quantized (residual connections)."""

    num_inputs = 2
    has_weight = False


class QuantizedMul(QuantizedModule):
    """Element-wise multiplication with both inputs quantized (gating)."""

    num_inputs = 2
    has_weight = False


#: maps operator type names (as used in recipes) to (module class, wrapper class)
QUANTIZED_MODULE_MAP = {
    "Linear": (Linear, QuantizedLinear),
    "Conv2d": (Conv2d, QuantizedConv2d),
    "Embedding": (Embedding, QuantizedEmbedding),
    "EmbeddingBag": (EmbeddingBag, QuantizedEmbedding),
    "LayerNorm": (LayerNorm, QuantizedLayerNorm),
    "BatchNorm2d": (BatchNorm2d, QuantizedBatchNorm2d),
    "BatchNorm1d": (BatchNorm1d, QuantizedBatchNorm2d),
    "BatchMatMul": (BatchMatMul, QuantizedBatchMatMul),
    "Add": (Add, QuantizedAdd),
    "Mul": (Mul, QuantizedMul),
}


def wrap_module(type_name: str, module: Module, config: OperatorQuantConfig, name: str = "") -> QuantizedModule:
    """Wrap ``module`` with the quantized wrapper registered for ``type_name``."""
    if type_name not in QUANTIZED_MODULE_MAP:
        raise KeyError(f"no quantized wrapper registered for operator type {type_name!r}")
    _, wrapper_cls = QUANTIZED_MODULE_MAP[type_name]
    return wrapper_cls(module, config, name=name)
