"""Quantized operator wrappers (Q/DQ emulation over packed 8-bit storage).

Quantization is emulated exactly as in the paper's framework: the wrapped
operator still computes in FP32, but its weights are rounded onto the 8-bit
grid once at convert time and its activation inputs are rounded on every
forward call (with a scale that is either calibrated offline — *static* — or
computed from the batch — *dynamic*).  Each wrapper keeps the original float
module as a submodule, so parameter traversal, state dicts and repr all keep
working after conversion.

Weight storage follows the packed memory model of :mod:`repro.fp8.quantize`:
``convert()`` packs the weight **once** into a
:class:`~repro.fp8.quantize.QuantizedTensor` (one byte per element plus
per-channel scales) and never writes into the original float32 array.  The
float32 view the wrapped operator computes with is dequantized from the
packed codes and cached; :meth:`QuantizedModule.drop_weight_cache` releases
it again (the packed codes stay authoritative and the next forward
re-materialises it), and ``restore()`` re-binds the pristine original.  Activation Q/DQ routes through the
fused per-axis kernels (one absmax → scale → round → rescale call per tensor,
no materialised broadcast scale arrays).

Serving modes and deployment
----------------------------
After conversion a wrapper serves in one of two modes
(:meth:`QuantizedModule.set_serving_mode`):

* ``"cached"`` (default) — the float32 weight view is dequantized once and
  kept; fastest, resident bytes ≈ packed + dense float32.
* ``"streaming"`` — packed codes are decoded on the fly inside each forward
  call and no persistent float32 view is kept.  :class:`QuantizedLinear`
  streams the matmul in output-channel blocks
  (:meth:`~repro.fp8.quantize.QuantizedTensor.dequantize_block`), and
  :class:`QuantizedEmbedding` decodes only the gathered rows, so the dense
  weight is never materialised at all; other operators decode transiently
  and drop the view when the call returns.

:meth:`QuantizedModule.drop_originals` enters *deployment* (restore-free)
mode: the pristine original float32 weight is discarded, ``restore()``
raises, and whenever the dequant cache is dropped the bound weight becomes a
4-byte broadcast placeholder — resident weight bytes approach the packed
footprint.  ``quantize_model(..., deploy=True)`` and
``repro.serialization.load_quantized`` produce models in this mode.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional, Sequence, Union

import numpy as np

from repro.autograd.tensor import Tensor
from repro.fp8.int8 import int8_compute_qparams, int8_quantize_dequantize
from repro.fp8.quantize import QuantizedTensor, compute_scale, quantize_dequantize
from repro.nn.attention import BatchMatMul
from repro.nn.elementwise import Add, Mul
from repro.nn.layers import Conv2d, Embedding, EmbeddingBag, Linear
from repro.nn.module import Module, bump_state_epoch, trace_leaf_emitter
from repro.nn.norm import BatchNorm1d, BatchNorm2d, LayerNorm
from repro.quantization.observers import Observer, build_observer
from repro.quantization.qconfig import (
    Approach,
    Granularity,
    OperatorQuantConfig,
    TensorQuantConfig,
)

__all__ = [
    "SERVING_MODES",
    "PREFETCH_MODES",
    "STREAM_BLOCK_ENV",
    "DEFAULT_STREAM_BLOCK",
    "TensorQuantizer",
    "QuantizedModule",
    "QuantizedLinear",
    "QuantizedConv2d",
    "QuantizedEmbedding",
    "QuantizedLayerNorm",
    "QuantizedBatchNorm2d",
    "QuantizedBatchMatMul",
    "QuantizedAdd",
    "QuantizedMul",
    "QUANTIZED_MODULE_MAP",
    "wrap_module",
]

#: valid post-conversion serving modes (see the module docstring)
SERVING_MODES = ("cached", "streaming")

#: valid streaming prefetch settings: off, per-layer double buffering, or
#: cross-layer pipelined decode (see serving/prefetch.py)
PREFETCH_MODES = (False, True, "pipeline")

#: environment variable overriding the default streaming block size for every
#: wrapper that has no explicit per-module setting
STREAM_BLOCK_ENV = "REPRO_STREAM_BLOCK"

#: fallback output channels decoded per block in streaming mode when neither a
#: per-module setting nor the environment variable is present
DEFAULT_STREAM_BLOCK = 64

#: invalid REPRO_STREAM_BLOCK values already warned about (warn once per value,
#: not once per streaming forward)
_STREAM_BLOCK_ENV_WARNED: set = set()


def _stream_block_from_env() -> Optional[int]:
    """The ``REPRO_STREAM_BLOCK`` override, or None when unset or invalid.

    An env var is ambient configuration that may be set far from any forward
    call, so an invalid value (non-integer, or < 1) must not explode deep
    inside the streaming matmul: it warns once per distinct value and the
    caller falls back to the class default instead.
    """
    env = os.environ.get(STREAM_BLOCK_ENV, "").strip()
    if not env:
        return None
    try:
        block = int(env)
    except ValueError:
        block = None
    if block is None or block < 1:
        if env not in _STREAM_BLOCK_ENV_WARNED:
            _STREAM_BLOCK_ENV_WARNED.add(env)
            warnings.warn(
                f"ignoring {STREAM_BLOCK_ENV}={env!r}: must be a positive integer; "
                f"falling back to the default streaming block size",
                RuntimeWarning,
                stacklevel=3,
            )
        return None
    return block


class TensorQuantizer:
    """Quantize/dequantize one tensor role (a weight or an activation input).

    The quantizer owns an :class:`~repro.quantization.observers.Observer` used
    during calibration and, after :meth:`freeze`, the calibrated range it needs
    at inference time.
    """

    def __init__(self, config: TensorQuantConfig, channel_axis: Optional[int] = None) -> None:
        self.config = config
        self.channel_axis = channel_axis if config.granularity is Granularity.PER_CHANNEL else None
        self.observer: Observer = build_observer(config, channel_axis=self.channel_axis)
        self.frozen = False
        self._absmax: Optional[np.ndarray] = None
        self._min: Optional[np.ndarray] = None
        self._max: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def observe(self, x: np.ndarray) -> None:
        if self.config.approach is Approach.STATIC and self.config.enabled:
            self.observer.observe(x)

    def freeze(self, fallback: Optional[np.ndarray] = None) -> None:
        """Fix the calibrated range.  ``fallback`` is used when no data was observed."""
        if not self.config.enabled or self.config.approach is not Approach.STATIC:
            self.frozen = True
            return
        if self.observer.ready:
            self._min, self._max = self.observer.calibrated_range()
            self._absmax = self.observer.calibrated_absmax()
        elif fallback is not None:
            self._absmax = np.asarray(np.max(np.abs(fallback)))
            self._min = np.asarray(np.min(fallback))
            self._max = np.asarray(np.max(fallback))
        else:
            raise RuntimeError(
                "static quantizer frozen without calibration data; run calibrate_model() first"
            )
        self.frozen = True

    # ------------------------------------------------------------------
    def _reshape_channelwise(self, values: np.ndarray, ndim: int) -> np.ndarray:
        if self.channel_axis is None or values.ndim == 0:
            return values
        shape = [1] * ndim
        shape[self.channel_axis] = -1
        return values.reshape(shape)

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round ``x`` onto the configured 8-bit grid (returns float32)."""
        if not self.config.enabled:
            return np.asarray(x, dtype=np.float32)
        x = np.asarray(x, dtype=np.float32)
        fmt = self.config.fmt

        if fmt.is_fp8:
            fp8 = fmt.fp8_format()
            if self.config.approach is Approach.DIRECT:
                return quantize_dequantize(x, fp8, scale=np.asarray(1.0))
            if self.config.approach is Approach.DYNAMIC or not self.frozen:
                # one fused absmax→scale→round→rescale kernel call per tensor
                return quantize_dequantize(x, fp8, axis=self.channel_axis)
            absmax = self._reshape_channelwise(np.asarray(self._absmax), x.ndim)
            scale = compute_scale(x, fp8, absmax=absmax)
            return quantize_dequantize(x, fp8, scale=scale)

        # INT8 path
        spec = fmt.int8_spec()
        if self.config.approach is Approach.DYNAMIC or not self.frozen or self._min is None:
            scale, zero_point = int8_compute_qparams(x, spec=spec, axis=self.channel_axis)
        else:
            min_val = self._reshape_channelwise(np.asarray(self._min), x.ndim)
            max_val = self._reshape_channelwise(np.asarray(self._max), x.ndim)
            scale, zero_point = int8_compute_qparams(
                x, spec=spec, axis=self.channel_axis, min_val=min_val, max_val=max_val
            )
        return int8_quantize_dequantize(x, spec=spec, scale=scale, zero_point=zero_point)

    def quantize_packed(self, x: np.ndarray) -> Optional[QuantizedTensor]:
        """Pack ``x`` into real 8-bit storage (codes + scales) — the weight path.

        Returns ``None`` for a disabled (FP32) config.  Calibrated parameters
        are honoured exactly like :meth:`quantize`, and the resulting packed
        tensor dequantizes bit-identically to the values :meth:`quantize`
        produces, so swapping storage does not move any benchmark number.
        """
        if not self.config.enabled:
            return None
        x = np.asarray(x, dtype=np.float32)
        fmt = self.config.fmt

        if fmt.is_fp8:
            fp8 = fmt.fp8_format()
            if self.config.approach is Approach.DIRECT:
                return QuantizedTensor.quantize(x, fp8, scale=np.asarray(1.0))
            if self.config.approach is Approach.DYNAMIC or not self.frozen or self._absmax is None:
                return QuantizedTensor.quantize(x, fp8, axis=self.channel_axis)
            absmax = self._reshape_channelwise(np.asarray(self._absmax), x.ndim)
            return QuantizedTensor.quantize(x, fp8, absmax=absmax)

        spec = fmt.int8_spec()
        if self.config.approach is Approach.DYNAMIC or not self.frozen or self._min is None:
            return QuantizedTensor.quantize(x, spec, axis=self.channel_axis)
        min_val = self._reshape_channelwise(np.asarray(self._min), x.ndim)
        max_val = self._reshape_channelwise(np.asarray(self._max), x.ndim)
        return QuantizedTensor.quantize(
            x, spec, axis=self.channel_axis, min_val=min_val, max_val=max_val
        )

    def describe(self) -> dict:
        return {
            "format": self.config.fmt.value,
            "approach": self.config.approach.value,
            "granularity": self.config.granularity.value,
            "frozen": self.frozen,
            "absmax": None if self._absmax is None else np.asarray(self._absmax).tolist(),
        }

    # ------------------------------------------------------------------
    # calibration-state round trip (checkpointing)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot of the frozen calibration state (None entries = uncalibrated)."""

        def _copy(value: Optional[np.ndarray]) -> Optional[np.ndarray]:
            return None if value is None else np.array(value, copy=True)

        return {
            "frozen": self.frozen,
            "absmax": _copy(self._absmax),
            "min": _copy(self._min),
            "max": _copy(self._max),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (the observer is left untouched)."""

        def _load(value) -> Optional[np.ndarray]:
            return None if value is None else np.asarray(value)

        self.frozen = bool(state.get("frozen", False))
        self._absmax = _load(state.get("absmax"))
        self._min = _load(state.get("min"))
        self._max = _load(state.get("max"))


class QuantizedModule(Module):
    """Base wrapper: observes activations during calibration, Q/DQs them after conversion."""

    #: number of quantizable tensor inputs the wrapped operator takes
    num_inputs = 1
    #: whether the wrapped operator has a weight parameter to quantize
    has_weight = True
    #: axis of the weight tensor that indexes output channels
    weight_channel_axis = 0
    #: streaming block prefetch setting (one of PREFETCH_MODES; honoured by
    #: operators with a blocked streaming kernel; see serving/prefetch.py)
    streaming_prefetch: Union[bool, str] = False
    #: cross-layer pipeline coordinator wired by the workflow when
    #: ``streaming_prefetch == "pipeline"`` (see workflow.set_serving_mode)
    _pipeline = None

    def __init__(self, inner: Module, config: OperatorQuantConfig, name: str = "") -> None:
        super().__init__()
        self.inner = inner
        self.config = config
        self.module_name = name
        self.observing = False
        self.quantizing = False
        self.input_quantizers = [TensorQuantizer(config.activation) for _ in range(self.num_inputs)]
        self.weight_quantizer: Optional[TensorQuantizer] = None
        if self.has_weight and config.weight is not None and hasattr(inner, "weight"):
            self.weight_quantizer = TensorQuantizer(
                config.weight, channel_axis=self.weight_channel_axis
            )
        #: packed 8-bit storage of record for the quantized weight
        self.weight_q: Optional[QuantizedTensor] = None
        #: lazily dequantized float32 compute view of ``weight_q``
        self._weight_cache: Optional[np.ndarray] = None
        #: the pristine original float32 weight array (never written to)
        self._original_weight: Optional[np.ndarray] = None
        #: restore-free deployment mode: original dropped, restore() raises
        self.deployed = False
        #: how the packed weight is served after conversion (see SERVING_MODES)
        self.serving_mode = "cached"

    # ------------------------------------------------------------------
    # calibration / conversion lifecycle
    # ------------------------------------------------------------------
    def start_observing(self) -> None:
        self.observing = True
        bump_state_epoch()

    def stop_observing(self) -> None:
        self.observing = False
        bump_state_epoch()

    def convert(self) -> None:
        """Freeze activation ranges and pack the weight into 8-bit storage.

        Idempotent: a second ``convert()`` on an already-converted module is a
        no-op.  (It used to re-snapshot ``inner.weight`` — by then already
        quantized — clobbering the original and turning ``restore()`` into a
        no-op.)  ``convert()`` after ``restore()`` re-converts from the
        restored original as before.
        """
        if self.quantizing:
            self.observing = False
            bump_state_epoch()
            return
        for quantizer, fallback in zip(self.input_quantizers, self._calibration_fallbacks()):
            quantizer.freeze(fallback=fallback)
        if self.weight_quantizer is not None:
            weight = self.inner.weight.data
            self.weight_q = self.weight_quantizer.quantize_packed(weight)
            if self.weight_q is not None:
                # Snapshot by copy: external in-place writes to the bound
                # weight (e.g. load_state_dict) must not corrupt the pristine
                # original that restore() hands back.
                self._original_weight = weight.copy()
                self._weight_cache = None
        self.observing = False
        self.quantizing = True
        if self.serving_mode == "streaming":
            # Streaming's no-persistent-float32 contract holds from the first
            # forward: never materialise the dequant cache at convert time.
            self.drop_weight_cache()
        else:
            # Bind the dequantized view now so the module's visible weights
            # (repr, forward) are the quantized ones from the moment of
            # conversion; drop_weight_cache() returns to packed-at-rest.
            self._bind_weight()
        bump_state_epoch()

    def restore(self) -> None:
        """Undo weight quantization (used by the tuning loop when falling back to FP32)."""
        if self.deployed:
            raise RuntimeError(
                f"cannot restore {self.module_name or type(self).__name__}: the original "
                "float32 weights were dropped (restore-free deployment mode); re-quantize "
                "from the unquantized source model instead"
            )
        if self._original_weight is not None:
            self.inner.weight.data = self._original_weight
        self._original_weight = None
        self._weight_cache = None
        self.weight_q = None
        self.quantizing = False
        bump_state_epoch()

    def drop_originals(self) -> None:
        """Enter restore-free deployment mode: discard the pristine float32 original.

        After this call the packed codes are the only storage of record for
        the weight — ``restore()`` raises, and dropping the dequant cache
        leaves a 4-byte broadcast placeholder bound as ``inner.weight`` so the
        wrapper's resident weight bytes equal the packed footprint.
        """
        self.deployed = True
        self._original_weight = None
        self.drop_weight_cache()
        bump_state_epoch()

    def set_serving_mode(
        self,
        mode: str,
        block_channels: Optional[int] = None,
        prefetch: Union[bool, str, None] = None,
    ) -> None:
        """Select how the packed weight is served: ``"cached"`` or ``"streaming"``.

        ``block_channels`` pins this module's streaming block size (output
        channels decoded per block); when left ``None`` the module falls back
        to the ``REPRO_STREAM_BLOCK`` environment variable, then to the class
        default (see :meth:`streaming_block_size`).  ``prefetch`` selects the
        block prefetch strategy for operators with a blocked streaming
        kernel: ``True`` enables the per-layer double-buffered prefetcher (a
        background thread decodes block *k+1* while block *k*'s matmul runs),
        ``"pipeline"`` additionally pipelines decode across consecutive
        streaming layers via a shared pool (the model-level wiring lives in
        :func:`repro.quantization.workflow.set_serving_mode`; without a wired
        coordinator the module falls back to per-layer prefetch).  ``None``
        leaves either setting unchanged.
        """
        if mode not in SERVING_MODES:
            raise ValueError(f"unknown serving mode {mode!r}; expected one of {SERVING_MODES}")
        if block_channels is not None:
            if int(block_channels) < 1:
                raise ValueError(f"block_channels must be >= 1, got {block_channels!r}")
            self.streaming_block_channels = int(block_channels)
        if prefetch is not None:
            if prefetch is not True and prefetch is not False and prefetch != "pipeline":
                raise ValueError(
                    f"unknown prefetch setting {prefetch!r}; expected one of {PREFETCH_MODES}"
                )
            self.streaming_prefetch = prefetch
            if prefetch != "pipeline":
                # a stale cross-layer coordinator must not outlive the setting
                self._pipeline = None
        self.serving_mode = mode
        if mode == "streaming":
            self.drop_weight_cache()
        # any serving-mode/prefetch change reshapes the traced forward:
        # invalidate every compiled plan (see repro.graph.cache)
        bump_state_epoch()

    def streaming_block_size(self) -> int:
        """Resolve the streaming block size for this module.

        Priority: an explicit per-module setting
        (``set_serving_mode(..., block_channels=)`` or direct assignment to
        ``streaming_block_channels``), then the ``REPRO_STREAM_BLOCK``
        environment variable (invalid values warn once and are ignored), then
        the class default.
        """
        block = self.__dict__.get("streaming_block_channels")
        if block is None:
            block = _stream_block_from_env()
        if block is None:
            block = getattr(type(self), "streaming_block_channels", DEFAULT_STREAM_BLOCK)
        return max(1, int(block))

    def _calibration_fallbacks(self) -> Sequence[Optional[np.ndarray]]:
        """Per-input fallback data for freezing without calibration (weights only)."""
        return [None] * self.num_inputs

    # ------------------------------------------------------------------
    # packed weight plumbing
    # ------------------------------------------------------------------
    def quantized_weight(self) -> Optional[np.ndarray]:
        """The float32 compute view of the packed weight (dequantized on demand, cached)."""
        if self.weight_q is None:
            return None
        if self._weight_cache is None:
            self._weight_cache = self.weight_q.dequantize()
        return self._weight_cache

    def _bind_weight(self) -> None:
        """Point ``inner.weight`` at the dequantized view while quantizing."""
        if not self.quantizing or self.weight_q is None:
            return
        cache = self.quantized_weight()
        if self.inner.weight.data is not cache:
            self.inner.weight.data = cache

    def _weight_placeholder(self) -> np.ndarray:
        """A read-only, 4-bytes-of-storage stand-in with the weight's shape.

        Bound as ``inner.weight.data`` in deployment mode while the dequant
        cache is dropped: shape/size introspection keeps working but no dense
        float32 array is resident (``np.broadcast_to`` shares one zero).
        """
        return np.broadcast_to(np.zeros(1, dtype=np.float32), self.weight_q.shape)

    def drop_weight_cache(self) -> None:
        """Release the float32 weight view; packed codes stay authoritative.

        The next quantized forward re-materialises it.  Between the drop and
        that forward the wrapper holds only the packed bytes (plus the
        original float32 array, until/unless ``restore()`` gives it back).

        In restore-free deployment mode there is no original to fall back to;
        the bound weight becomes a broadcast placeholder instead, so the
        dropped cache is genuinely freed rather than staying reachable (and
        silently resident) through ``inner.weight``.  Any rebuild can then
        only come from the packed codes.
        """
        if self.weight_q is not None:
            if self.deployed:
                self.inner.weight.data = self._weight_placeholder()
            elif self._weight_cache is not None and self._original_weight is not None:
                self.inner.weight.data = self._original_weight
        self._weight_cache = None

    def weight_resident_arrays(self) -> Sequence[np.ndarray]:
        """Arrays this wrapper keeps alive for its weight beyond ``inner.weight``.

        Used by :func:`repro.quantization.workflow.resident_report` to tally
        actual resident bytes: the packed codes/scales, the dequant cache (if
        materialised) and the pristine original (if not yet dropped).
        """
        arrays = []
        if self.weight_q is not None:
            arrays.append(self.weight_q.codes)
            arrays.append(np.asarray(self.weight_q.scale))
            if self.weight_q.zero_point is not None:
                arrays.append(np.asarray(self.weight_q.zero_point))
        if self._weight_cache is not None:
            arrays.append(self._weight_cache)
        if self._original_weight is not None:
            arrays.append(self._original_weight)
        return arrays

    def weight_storage_nbytes(self) -> Optional[dict]:
        """Packed vs dense byte counts for the quantized weight (None if unquantized)."""
        if self.weight_q is None:
            return None
        return {
            "packed_bytes": self.weight_q.nbytes,
            "fp32_bytes": self.weight_q.nbytes_dense,
            "ratio": self.weight_q.compression_ratio,
        }

    # ------------------------------------------------------------------
    def _process_inputs(self, inputs):
        processed = []
        for idx, value in enumerate(inputs):
            if isinstance(value, Tensor) and idx < len(self.input_quantizers):
                if self.observing:
                    self.input_quantizers[idx].observe(value.data)
                if self.quantizing:
                    value = Tensor(self.input_quantizers[idx].quantize(value.data))
            processed.append(value)
        return processed

    def forward(self, *inputs, **kwargs):
        if self._is_streaming():
            return self._forward_streaming(*inputs, **kwargs)
        self._bind_weight()
        return self.inner(*self._process_inputs(inputs), **kwargs)

    def _is_streaming(self) -> bool:
        return self.serving_mode == "streaming" and self.quantizing and self.weight_q is not None

    def _forward_streaming(self, *inputs, **kwargs):
        """Decode-on-the-fly fallback: transient dequant → compute → drop.

        Operators with a structured streaming kernel (Linear's blocked matmul,
        Embedding's gather-decode) override this; the fallback still honours
        the no-persistent-cache contract — the float32 view only lives for the
        duration of the call.
        """
        try:
            self._bind_weight()
            return self.inner(*self._process_inputs(inputs), **kwargs)
        finally:
            self.drop_weight_cache()

    # ------------------------------------------------------------------
    # tracing integration (see repro.graph)
    # ------------------------------------------------------------------
    def trace_emit(self, tracer, args, kwargs):
        """Describe this wrapper's forward to an active tracer as graph nodes.

        Emits symbolic ``qdq`` nodes for the activation Q/DQ of each Tensor
        input (skipped for disabled configs, whose quantize is a pass-through)
        and then hands the quantized values to the wrapped operator's own leaf
        emitter.  Weight-bearing wrappers without a structured decomposition
        (Conv2d) record one opaque node over the whole wrapper instead, so
        replay re-binds the dequant cache inside ``forward()``.  Returns the
        real output of the call, or ``None`` to decline — the trace then falls
        back to eager for this input key.  Only consulted while
        ``quantizing``; generic transient-decode streaming declines (only
        operators with a structured streaming kernel — Linear, Embedding —
        override this with a streaming emitter).
        """
        if kwargs:
            return None
        if self._is_streaming():
            return None
        if self.has_weight and self.weight_q is not None:
            return self._trace_emit_opaque(tracer, args, kwargs)
        processed = self._trace_emit_qdq(tracer, args)
        inner = self.inner
        tracer.touch(inner)
        emitter = trace_leaf_emitter(inner)
        if emitter is None:
            return None
        self._bind_weight()
        return emitter(tracer, inner, tuple(processed), {})

    def _trace_emit_qdq(self, tracer, args):
        """Emit one ``qdq`` node per quantized Tensor input; mirrors _process_inputs."""
        processed = []
        for idx, value in enumerate(args):
            if (
                isinstance(value, Tensor)
                and idx < len(self.input_quantizers)
                and self.input_quantizers[idx].config.enabled
            ):
                slot = tracer.slot_of(value)
                q = Tensor(self.input_quantizers[idx].quantize(value.data))
                tracer.record("qdq", (slot,), q, module=self, index=idx)
                processed.append(q)
            else:
                if isinstance(value, (Tensor, np.ndarray)):
                    tracer.slot_of(value)
                processed.append(value)
        return processed

    def _trace_emit_opaque(self, tracer, args, kwargs):
        """Record the whole wrapper call as one ``call_module`` node."""
        for key, value in kwargs.items():
            if isinstance(value, (Tensor, np.ndarray)):
                return None
        tracer.touch_tree(self)
        slots = tuple(tracer.slot_of(arg) for arg in args)
        wrapped = tuple(isinstance(arg, Tensor) for arg in args)
        output = self.forward(*args, **kwargs)
        tracer.record(
            "call_module", slots, output, module=self, wrapped=wrapped, kwargs=dict(kwargs)
        )
        return output

    # ------------------------------------------------------------------
    # state-dict composition (packed checkpointing)
    # ------------------------------------------------------------------
    def state_dict_excluded_keys(self):
        # Once the weight is packed, the codes in the extra state are the
        # storage of record and the bound float32 array is a derived view (a
        # dequant cache, or a placeholder in deployment mode) — snapshotting
        # it would copy a dense array that load_state_dict/set_extra_state
        # immediately supersedes from the packed payload.
        if self.weight_q is not None:
            return ("inner.weight",)
        return ()

    def get_extra_state(self) -> dict:
        """Everything beyond params/buffers needed to rebuild this wrapper.

        Composed into ``Module.state_dict()`` under ``<name>._extra_state``
        and written verbatim into packed checkpoints: the operator config, the
        conversion/deployment flags, the frozen calibration state of every
        quantizer and — crucially — the packed weight codes/scales, so a
        checkpoint round trip never materialises the float32 weight.
        """
        state = {
            "config": self.config.to_dict(),
            "inner_type": type(self.inner).__name__,
            "quantizing": self.quantizing,
            "deployed": self.deployed,
            "serving_mode": self.serving_mode,
            "input_quantizers": [q.state_dict() for q in self.input_quantizers],
            "weight_quantizer": (
                None if self.weight_quantizer is None else self.weight_quantizer.state_dict()
            ),
        }
        if self.weight_q is not None:
            weight_state = {
                "codes": self.weight_q.codes.copy(),
                "scale": np.array(self.weight_q.scale, copy=True),
                "format": self.weight_q.fmt.name,
            }
            if self.weight_q.zero_point is not None:
                weight_state["zero_point"] = np.array(self.weight_q.zero_point, copy=True)
            state["weight_q"] = weight_state
        return state

    def set_extra_state(self, state: dict) -> None:
        """Rebuild quantizers, packed weight and lifecycle flags from :meth:`get_extra_state`.

        The float32 weight view is *not* materialised here: in deployment mode
        a placeholder is bound immediately, otherwise the dequant cache is
        rebuilt lazily by the next forward.
        """
        inner_type = state.get("inner_type")
        if inner_type is not None and inner_type != type(self.inner).__name__:
            raise ValueError(
                f"extra state for {self.module_name or 'wrapper'} was saved for inner module "
                f"type {inner_type}, but this wrapper holds {type(self.inner).__name__}"
            )
        self.config = OperatorQuantConfig.from_dict(state["config"])
        self.input_quantizers = [
            TensorQuantizer(self.config.activation) for _ in range(self.num_inputs)
        ]
        for quantizer, qstate in zip(self.input_quantizers, state.get("input_quantizers", [])):
            quantizer.load_state_dict(qstate)
        self.weight_quantizer = None
        if self.has_weight and self.config.weight is not None and hasattr(self.inner, "weight"):
            self.weight_quantizer = TensorQuantizer(
                self.config.weight, channel_axis=self.weight_channel_axis
            )
            if state.get("weight_quantizer") is not None:
                self.weight_quantizer.load_state_dict(state["weight_quantizer"])
        weight_state = state.get("weight_q")
        self.weight_q = (
            None if weight_state is None else QuantizedTensor.from_state_dict(weight_state)
        )
        self._weight_cache = None
        self.observing = False
        self.quantizing = bool(state.get("quantizing", False))
        self.set_serving_mode(state.get("serving_mode", "cached"))
        if state.get("deployed", False):
            self.drop_originals()

    def extra_repr(self) -> str:
        act = self.config.activation
        w = self.config.weight
        parts = [f"activation={act.fmt.value}/{act.approach.value}"]
        if w is not None and self.has_weight:
            parts.append(f"weight={w.fmt.value}/{w.granularity.value}")
        if self.quantizing and self.serving_mode != "cached":
            parts.append(f"serving={self.serving_mode}")
        if self.deployed:
            parts.append("deployed")
        return ", ".join(parts)


class QuantizedLinear(QuantizedModule):
    """Quantized fully-connected layer (per-channel weights, per-tensor activations)."""

    num_inputs = 1
    has_weight = True

    #: class-default output channels decoded per block in streaming mode;
    #: bounds the transient float32 working set to ``block * in_features * 4``
    #: bytes.  Resolution order for the effective size is per-module setting →
    #: ``REPRO_STREAM_BLOCK`` → this default (see ``streaming_block_size()``).
    streaming_block_channels = DEFAULT_STREAM_BLOCK

    def _forward_streaming(self, x, **kwargs):
        """Decode-on-the-fly matmul: stream packed weight rows through the kernel.

        ``y[..., s:e] = x @ W[s:e].T`` with each block of ``W`` dequantized
        from the packed codes (one fused decode → rescale call per block) and
        discarded immediately — the dense float32 weight never exists, which
        is what makes the memory-bound serving path genuinely packed-resident.
        ``x`` may carry any number of leading batch dimensions; the whole
        batch shares each decoded block, which is what the serving engine's
        request batching amortises.  With ``streaming_prefetch`` enabled the
        blocks arrive from a background decode thread (double-buffered), so
        block *k+1*'s dequantize overlaps block *k*'s matmul.  Inference only
        (no autograd tape is recorded).
        """
        (x,) = self._process_inputs((x,))
        x_np = x.data if isinstance(x, Tensor) else np.asarray(x, dtype=np.float32)
        return Tensor(self._stream_matmul(x_np))

    def _stream_matmul(self, x_np: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """The blocked streaming matmul on an already-processed float32 input.

        Shared by the eager forward and the compiled-plan executor
        (:mod:`repro.graph.plan`), which is what keeps plan replay
        structurally bit-identical to eager in streaming mode.
        """
        wq = self.weight_q
        out_features = wq.shape[0]
        y = out
        if y is None:
            y = np.empty(x_np.shape[:-1] + (out_features,), dtype=np.float32)
        if not self._native_fma_matmul(x_np, y):
            for start, stop, w_block in self._iter_weight_blocks():
                np.matmul(x_np, w_block.T, out=y[..., start:stop])
        bias = getattr(self.inner, "bias", None)
        if bias is not None:
            np.add(y, bias.data, out=y)
        return y

    def _native_fma_matmul(self, x_np: np.ndarray, y: np.ndarray) -> bool:
        """Opt-in fully fused decode → rescale → FMA matmul (one ctypes call).

        Replaces the whole blocked decode/matmul loop when the native kernel
        tier is active *and* ``REPRO_NATIVE_FMA=1``: the packed weight is
        decoded and accumulated inside a single compiled kernel, so neither
        the dense float32 weight nor any per-block temporary ever exists.
        Sequential C accumulation is not bit-identical to BLAS (which is why
        the fusion is opt-in rather than implied by the tier — see
        :mod:`repro.fp8.native`); returns False to keep the exact blocked
        path whenever the fusion is off or the layout is unsupported.
        """
        from repro.fp8 import kernels, native

        if not native.fma_enabled() or kernels.get_active_kernel() != "native":
            return False
        if not y.flags.c_contiguous:
            return False
        in_features = x_np.shape[-1] if x_np.ndim else 0
        x2d = x_np.reshape(-1, in_features)
        return native.qlinear_fma(self.weight_q, x2d, y.reshape(x2d.shape[0], -1))

    def trace_emit(self, tracer, args, kwargs):
        """Emit ``qdq`` + ``qlinear_(stream_)mm`` nodes (fused downstream).

        The fusion pass collapses the pair into one ``qlinear`` /
        ``qlinear_stream`` node whose executor runs the activation Q/DQ
        through the fused per-axis kernel and feeds the matmul directly.
        """
        if kwargs:
            return None
        (x,) = args
        if not isinstance(x, (Tensor, np.ndarray)):
            return None
        x_slot = tracer.slot_of(x)
        mm_in = x
        if (
            isinstance(x, Tensor)
            and self.input_quantizers
            and self.input_quantizers[0].config.enabled
        ):
            mm_in = Tensor(self.input_quantizers[0].quantize(x.data))
            x_slot = tracer.record("qdq", (x_slot,), mm_in, module=self, index=0)
        if self._is_streaming():
            x_np = mm_in.data if isinstance(mm_in, Tensor) else np.asarray(mm_in, np.float32)
            output = Tensor(self._stream_matmul(x_np))
            tracer.record("qlinear_stream_mm", (x_slot,), output, module=self)
        else:
            self._bind_weight()
            output = self.inner(mm_in)
            tracer.record("qlinear_mm", (x_slot,), output, module=self)
        return output

    def _iter_weight_blocks(self):
        """Yield ``(start, stop, float32 block)`` over the packed weight's axis 0.

        Decode schedule by ``streaming_prefetch``: ``"pipeline"`` with a wired
        coordinator streams from the model's shared cross-layer decode window
        (layer k+1's head blocks decode while this layer's tail is consumed);
        otherwise any truthy setting uses the per-layer double-buffered
        prefetcher; ``False`` decodes inline.  All three produce bit-identical
        blocks — only the schedule differs.
        """
        block = self.streaming_block_size()
        if self.streaming_prefetch == "pipeline" and self._pipeline is not None:
            return self._pipeline.iter_blocks(self)
        if self.streaming_prefetch:
            # lazy import: the quantization layer must stay importable (and
            # fully functional) without the serving package in the loop
            from repro.serving.prefetch import BlockPrefetcher

            return BlockPrefetcher(self.weight_q, block_channels=block, axis=0)
        return self._decode_blocks_sequential(block)

    def _decode_blocks_sequential(self, block: int):
        wq = self.weight_q
        out_features = wq.shape[0]
        for start in range(0, out_features, block):
            stop = min(start + block, out_features)
            yield start, stop, wq.dequantize_block(start, stop, axis=0)


class QuantizedConv2d(QuantizedModule):
    """Quantized 2D convolution."""

    num_inputs = 1
    has_weight = True


class QuantizedEmbedding(QuantizedModule):
    """Quantized embedding table: only the weight is quantized (indices are integers)."""

    num_inputs = 0
    has_weight = True

    def forward(self, indices, **kwargs):
        if self._is_streaming():
            return self._forward_streaming(indices, **kwargs)
        self._bind_weight()
        return self.inner(indices, **kwargs)

    def trace_emit(self, tracer, args, kwargs):
        """Emit one ``qembed`` node; replay calls ``forward`` (cached or
        gather-decode, resolved at replay time — serving-mode flips invalidate
        the plan through the state epoch anyway)."""
        if kwargs:
            return None
        (indices,) = args
        idx_slot = tracer.slot_of(indices)
        output = self.forward(indices)
        tracer.record(
            "qembed", (idx_slot,), output, module=self, wrapped=isinstance(indices, Tensor)
        )
        return output

    def _forward_streaming(self, indices, **kwargs):
        """Gather-decode: pull only the looked-up rows out of packed storage.

        The classic memory-bound serving win — bytes moved scale with the
        batch's vocabulary footprint (1 byte/element + its row scale), not the
        table size.  Indices are deduplicated first, so a batch that looks the
        same token up many times (padding, stop words, repeated prompts)
        decodes each distinct row exactly once and fans the result back out
        with the inverse permutation.  ``EmbeddingBag`` reductions fall back
        to the generic transient-decode path.  Inference only.
        """
        if type(self.inner) is not Embedding:
            return super()._forward_streaming(indices, **kwargs)
        idx = np.asarray(indices, dtype=np.int64)
        wq = self.weight_q
        unique, inverse = np.unique(idx, return_inverse=True)
        gathered = QuantizedTensor(
            codes=wq.codes[unique],
            scale=self._gather_param(np.asarray(wq.scale), unique, wq.ndim),
            fmt=wq.fmt,
            zero_point=(
                None
                if wq.zero_point is None
                else self._gather_param(np.asarray(wq.zero_point), unique, wq.ndim)
            ),
        )
        # numpy < 2.0 returns a flat inverse; reshape is a no-op on >= 2.0
        return Tensor(gathered.dequantize()[inverse.reshape(idx.shape)])

    @staticmethod
    def _gather_param(param: np.ndarray, idx: np.ndarray, weight_ndim: int) -> np.ndarray:
        """Gather per-row scales/zero-points along axis 0 (per-tensor pass through)."""
        if param.ndim == weight_ndim and param.shape[0] != 1:
            return param[idx]
        return param


class QuantizedLayerNorm(QuantizedModule):
    """LayerNorm with quantized input activations (extended scheme operator)."""

    num_inputs = 1
    has_weight = False


class QuantizedBatchNorm2d(QuantizedModule):
    """BatchNorm with quantized input activations (extended scheme operator)."""

    num_inputs = 1
    has_weight = False


class QuantizedBatchMatMul(QuantizedModule):
    """Batched matmul with both inputs quantized (attention QK^T and probs-V products)."""

    num_inputs = 2
    has_weight = False


class QuantizedAdd(QuantizedModule):
    """Element-wise addition with both inputs quantized (residual connections)."""

    num_inputs = 2
    has_weight = False


class QuantizedMul(QuantizedModule):
    """Element-wise multiplication with both inputs quantized (gating)."""

    num_inputs = 2
    has_weight = False


#: maps operator type names (as used in recipes) to (module class, wrapper class)
QUANTIZED_MODULE_MAP = {
    "Linear": (Linear, QuantizedLinear),
    "Conv2d": (Conv2d, QuantizedConv2d),
    "Embedding": (Embedding, QuantizedEmbedding),
    "EmbeddingBag": (EmbeddingBag, QuantizedEmbedding),
    "LayerNorm": (LayerNorm, QuantizedLayerNorm),
    "BatchNorm2d": (BatchNorm2d, QuantizedBatchNorm2d),
    "BatchNorm1d": (BatchNorm1d, QuantizedBatchNorm2d),
    "BatchMatMul": (BatchMatMul, QuantizedBatchMatMul),
    "Add": (Add, QuantizedAdd),
    "Mul": (Mul, QuantizedMul),
}


def wrap_module(
    type_name: str, module: Module, config: OperatorQuantConfig, name: str = ""
) -> QuantizedModule:
    """Wrap ``module`` with the quantized wrapper registered for ``type_name``."""
    if type_name not in QUANTIZED_MODULE_MAP:
        raise KeyError(f"no quantized wrapper registered for operator type {type_name!r}")
    _, wrapper_cls = QUANTIZED_MODULE_MAP[type_name]
    return wrapper_cls(module, config, name=name)
