"""Quantization quality metrics: tensor-level error and the paper's pass criterion."""

from __future__ import annotations

import numpy as np

__all__ = [
    "mse",
    "sqnr",
    "relative_accuracy_loss",
    "absolute_accuracy_loss",
    "meets_accuracy_target",
    "DEFAULT_RELATIVE_LOSS_TARGET",
]

#: The paper's pass criterion: at most 1% *relative* accuracy loss vs the FP32 baseline.
DEFAULT_RELATIVE_LOSS_TARGET = 0.01


def mse(reference: np.ndarray, quantized: np.ndarray) -> float:
    """Mean squared error between a reference tensor and its quantized version."""
    reference = np.asarray(reference, dtype=np.float64)
    quantized = np.asarray(quantized, dtype=np.float64)
    return float(np.mean((reference - quantized) ** 2))


def sqnr(reference: np.ndarray, quantized: np.ndarray, eps: float = 1e-20) -> float:
    """Signal-to-quantization-noise ratio in dB (higher is better)."""
    reference = np.asarray(reference, dtype=np.float64)
    noise = np.asarray(quantized, dtype=np.float64) - reference
    signal_power = float(np.mean(reference**2))
    noise_power = float(np.mean(noise**2))
    return 10.0 * np.log10(max(signal_power, eps) / max(noise_power, eps))


def absolute_accuracy_loss(fp32_metric: float, quantized_metric: float) -> float:
    """Raw metric drop (positive = the quantized model is worse)."""
    return float(fp32_metric - quantized_metric)


def relative_accuracy_loss(
    fp32_metric: float, quantized_metric: float, eps: float = 1e-12
) -> float:
    """Relative accuracy loss ``(fp32 - quantized) / fp32`` used by the pass criterion."""
    return float((fp32_metric - quantized_metric) / max(abs(fp32_metric), eps))


def meets_accuracy_target(
    fp32_metric: float,
    quantized_metric: float,
    relative_loss_target: float = DEFAULT_RELATIVE_LOSS_TARGET,
) -> bool:
    """The paper's pass criterion: relative loss of at most ``relative_loss_target`` (1%)."""
    return relative_accuracy_loss(fp32_metric, quantized_metric) <= relative_loss_target
