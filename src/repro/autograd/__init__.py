"""Tape-based reverse-mode automatic differentiation over numpy arrays.

This is the substrate that stands in for PyTorch's tensor library: it is the
minimum machinery needed to (a) *train* the synthetic model zoo from scratch so
that weights and activations have realistic distributions, and (b) run
inference through module graphs that the quantization framework rewrites.

The design is deliberately simple and readable: a :class:`Tensor` wraps a
``numpy.ndarray``, records the operations applied to it, and ``backward()``
runs the tape in reverse topological order.
"""

from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled
from repro.autograd import functional
from repro.autograd.gradcheck import gradcheck

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "functional", "gradcheck"]
