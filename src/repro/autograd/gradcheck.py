"""Numerical gradient checking used by the autograd test suite."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = ["gradcheck"]


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-3,
    atol: float = 1e-2,
    rtol: float = 1e-2,
) -> bool:
    """Compare analytic gradients of ``fn(*inputs).sum()`` against central differences.

    Inputs are perturbed in float64 to keep the numerical estimate stable while
    the library itself computes in float32, hence the relatively loose default
    tolerances.

    Returns True when every gradient entry matches; raises ``AssertionError``
    with a diagnostic message otherwise.
    """
    for inp in inputs:
        inp.zero_grad()
    out = fn(*inputs)
    out.sum().backward()
    analytic = [
        inp.grad.copy() if inp.grad is not None else np.zeros_like(inp.data) for inp in inputs
    ]

    for t_idx, inp in enumerate(inputs):
        if not inp.requires_grad:
            continue
        flat = inp.data.reshape(-1)
        numeric = np.zeros_like(flat, dtype=np.float64)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            plus = float(fn(*inputs).sum().data)
            flat[i] = orig - eps
            minus = float(fn(*inputs).sum().data)
            flat[i] = orig
            numeric[i] = (plus - minus) / (2 * eps)
        numeric = numeric.reshape(inp.shape)
        if not np.allclose(analytic[t_idx], numeric, atol=atol, rtol=rtol):
            max_err = np.max(np.abs(analytic[t_idx] - numeric))
            raise AssertionError(
                f"gradcheck failed for input {t_idx}: max abs error {max_err:.4e}\n"
                f"analytic={analytic[t_idx]}\nnumeric={numeric}"
            )
    return True
