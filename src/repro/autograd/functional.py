"""Neural-network functional primitives built on :class:`~repro.autograd.tensor.Tensor`.

Contains the operators the quantization framework targets (Conv2d, Linear,
MatMul/BatchMatMul, Embedding, BatchNorm, LayerNorm, element-wise Add/Mul) plus
the pooling, softmax and loss functions needed to train and evaluate the model
zoo.  Convolution uses an im2col formulation so the heavy lifting stays inside
vectorised numpy matmuls (see the performance guide: avoid Python loops).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.autograd.tensor import Tensor

__all__ = [
    "linear",
    "matmul",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "adaptive_avg_pool2d",
    "embedding",
    "embedding_bag",
    "batch_norm",
    "layer_norm",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "mse_loss",
    "binary_cross_entropy_with_logits",
    "dropout",
    "im2col",
    "col2im",
    "upsample_nearest2d",
]


# ----------------------------------------------------------------------
# dense / matmul
# ----------------------------------------------------------------------
def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``y = x @ weight.T + bias`` with ``weight`` of shape (out, in)."""
    out = x.matmul(weight.swapaxes(-1, -2) if weight.ndim > 2 else weight.transpose())
    if bias is not None:
        out = out + bias
    return out


def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Plain (possibly batched) matrix multiplication."""
    return a.matmul(b)


# ----------------------------------------------------------------------
# convolution (im2col)
# ----------------------------------------------------------------------
def im2col(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int]
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold a padded NCHW array into columns of shape (N, C*kh*kw, L)."""
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1
    strides = x.strides
    shape = (n, c, kh, kw, out_h, out_w)
    new_strides = (
        strides[0],
        strides[1],
        strides[2],
        strides[3],
        strides[2] * sh,
        strides[3] * sw,
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=new_strides)
    cols = patches.reshape(n, c * kh * kw, out_h * out_w)
    return np.ascontiguousarray(cols), (out_h, out_w)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
) -> np.ndarray:
    """Fold columns back to an NCHW array, accumulating overlaps (im2col adjoint)."""
    n, c, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    x = np.zeros(x_shape, dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            x[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw] += cols[:, :, i, j]
    return x


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: Union[int, Tuple[int, int]] = 1,
    padding: Union[int, Tuple[int, int]] = 0,
    groups: int = 1,
) -> Tensor:
    """2D convolution on NCHW tensors with weight of shape (Cout, Cin/groups, kh, kw)."""
    if isinstance(stride, int):
        stride = (stride, stride)
    if isinstance(padding, int):
        padding = (padding, padding)
    n, c_in, _, _ = x.shape
    c_out, c_in_g, kh, kw = weight.shape
    if c_in % groups or c_out % groups or c_in // groups != c_in_g:
        raise ValueError(
            f"incompatible conv shapes: input channels {c_in}, weight {weight.shape}, groups {groups}"
        )

    x_padded = x.pad2d(padding)
    xp = x_padded.data
    out_h = (xp.shape[2] - kh) // stride[0] + 1
    out_w = (xp.shape[3] - kw) // stride[1] + 1

    if groups == 1:
        cols, _ = im2col(xp, (kh, kw), stride)
        w_mat = weight.data.reshape(c_out, -1)
        out_data = np.einsum("of,nfl->nol", w_mat, cols, optimize=True)
    else:
        cg_in = c_in // groups
        cg_out = c_out // groups
        cols_list = []
        out_chunks = []
        for g in range(groups):
            xg = xp[:, g * cg_in : (g + 1) * cg_in]
            cols_g, _ = im2col(xg, (kh, kw), stride)
            cols_list.append(cols_g)
            w_mat = weight.data[g * cg_out : (g + 1) * cg_out].reshape(cg_out, -1)
            out_chunks.append(np.einsum("of,nfl->nol", w_mat, cols_g, optimize=True))
        out_data = np.concatenate(out_chunks, axis=1)
        cols = cols_list  # kept for backward

    out_data = out_data.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c_out, 1, 1)

    parents = [x_padded, weight] + ([bias] if bias is not None else [])

    def backward(out: Tensor) -> None:
        g = out.grad.reshape(n, c_out, out_h * out_w)
        if bias is not None and bias.requires_grad:
            bias._accumulate(out.grad.sum(axis=(0, 2, 3)))
        if groups == 1:
            w_mat = weight.data.reshape(c_out, -1)
            if weight.requires_grad:
                grad_w = np.einsum("nol,nfl->of", g, cols, optimize=True)
                weight._accumulate(grad_w.reshape(weight.shape))
            if x_padded.requires_grad:
                grad_cols = np.einsum("of,nol->nfl", w_mat, g, optimize=True)
                grad_xp = col2im(grad_cols, xp.shape, (kh, kw), stride)
                x_padded._accumulate(grad_xp)
        else:
            cg_in = c_in // groups
            cg_out = c_out // groups
            grad_xp = np.zeros_like(xp) if x_padded.requires_grad else None
            grad_w = np.zeros_like(weight.data) if weight.requires_grad else None
            for gi in range(groups):
                gg = g[:, gi * cg_out : (gi + 1) * cg_out]
                cols_g = cols[gi]
                w_mat = weight.data[gi * cg_out : (gi + 1) * cg_out].reshape(cg_out, -1)
                if grad_w is not None:
                    grad_w[gi * cg_out : (gi + 1) * cg_out] = np.einsum(
                        "nol,nfl->of", gg, cols_g, optimize=True
                    ).reshape(cg_out, cg_in, kh, kw)
                if grad_xp is not None:
                    grad_cols = np.einsum("of,nol->nfl", w_mat, gg, optimize=True)
                    grad_xp[:, gi * cg_in : (gi + 1) * cg_in] += col2im(
                        grad_cols,
                        (n, cg_in, xp.shape[2], xp.shape[3]),
                        (kh, kw),
                        stride,
                    )
            if grad_w is not None:
                weight._accumulate(grad_w)
            if grad_xp is not None:
                x_padded._accumulate(grad_xp)

    return x_padded._make(out_data.astype(np.float32), tuple(parents), backward)


# ----------------------------------------------------------------------
# pooling
# ----------------------------------------------------------------------
def max_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) square windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    cols, _ = im2col(x.data.reshape(n * c, 1, h, w), (kernel, kernel), (stride, stride))
    cols = cols.reshape(n, c, kernel * kernel, out_h * out_w)
    argmax = cols.argmax(axis=2)
    out_data = np.take_along_axis(cols, argmax[:, :, None, :], axis=2)[:, :, 0, :]
    out_data = out_data.reshape(n, c, out_h, out_w)

    def backward(out: Tensor) -> None:
        if not x.requires_grad:
            return
        g = out.grad.reshape(n, c, 1, out_h * out_w)
        grad_cols = np.zeros((n, c, kernel * kernel, out_h * out_w), dtype=np.float32)
        np.put_along_axis(grad_cols, argmax[:, :, None, :], g, axis=2)
        grad_cols = grad_cols.reshape(n * c, kernel * kernel, out_h * out_w)
        grad_x = col2im(grad_cols, (n * c, 1, h, w), (kernel, kernel), (stride, stride))
        x._accumulate(grad_x.reshape(n, c, h, w))

    return x._make(out_data.astype(np.float32), (x,), backward)


def avg_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Average pooling over square windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    cols, _ = im2col(x.data.reshape(n * c, 1, h, w), (kernel, kernel), (stride, stride))
    cols = cols.reshape(n, c, kernel * kernel, out_h * out_w)
    out_data = cols.mean(axis=2).reshape(n, c, out_h, out_w)

    def backward(out: Tensor) -> None:
        if not x.requires_grad:
            return
        g = out.grad.reshape(n, c, 1, out_h * out_w) / (kernel * kernel)
        grad_cols = np.broadcast_to(g, (n, c, kernel * kernel, out_h * out_w)).astype(np.float32)
        grad_cols = grad_cols.reshape(n * c, kernel * kernel, out_h * out_w)
        grad_x = col2im(grad_cols, (n * c, 1, h, w), (kernel, kernel), (stride, stride))
        x._accumulate(grad_x.reshape(n, c, h, w))

    return x._make(out_data.astype(np.float32), (x,), backward)


def adaptive_avg_pool2d(x: Tensor, output_size: int = 1) -> Tensor:
    """Adaptive average pooling; only ``output_size == 1`` (global) is supported."""
    if output_size != 1:
        raise NotImplementedError("only global average pooling (output_size=1) is supported")
    return x.mean(axis=(2, 3), keepdims=True)


def upsample_nearest2d(x: Tensor, scale: int = 2) -> Tensor:
    """Nearest-neighbour spatial upsampling of NCHW tensors by an integer factor."""
    n, c, h, w = x.shape
    data = np.repeat(np.repeat(x.data, scale, axis=2), scale, axis=3)

    def backward(out: Tensor) -> None:
        if not x.requires_grad:
            return
        g = out.grad.reshape(n, c, h, scale, w, scale).sum(axis=(3, 5))
        x._accumulate(g)

    return x._make(data, (x,), backward)


# ----------------------------------------------------------------------
# embeddings
# ----------------------------------------------------------------------
def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` (vocab, dim) at integer ``indices``."""
    indices = np.asarray(indices, dtype=np.int64)
    out_data = weight.data[indices]

    def backward(out: Tensor) -> None:
        if weight.requires_grad:
            grad = np.zeros_like(weight.data)
            np.add.at(grad, indices.reshape(-1), out.grad.reshape(-1, weight.shape[1]))
            weight._accumulate(grad)

    return weight._make(out_data, (weight,), backward)


def embedding_bag(weight: Tensor, indices: np.ndarray, mode: str = "mean") -> Tensor:
    """Embedding lookup followed by a per-bag reduction over the last index axis.

    ``indices`` has shape (batch, bag); the output has shape (batch, dim).
    """
    emb = embedding(weight, indices)
    if mode == "mean":
        return emb.mean(axis=1)
    if mode == "sum":
        return emb.sum(axis=1)
    raise ValueError(f"unsupported embedding_bag mode {mode!r}")


# ----------------------------------------------------------------------
# normalisation
# ----------------------------------------------------------------------
def batch_norm(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalisation over the channel axis (axis 1) of 2D or 4D inputs.

    ``running_mean``/``running_var`` are plain numpy buffers updated in place
    when ``training`` is True (this is also how BatchNorm *calibration* updates
    statistics without touching learnable parameters).
    """
    if x.ndim == 4:
        reduce_axes = (0, 2, 3)
        shape = (1, -1, 1, 1)
    elif x.ndim == 2:
        reduce_axes = (0,)
        shape = (1, -1)
    else:
        raise ValueError(f"batch_norm expects 2D or 4D input, got shape {x.shape}")

    if training:
        batch_mean = x.data.mean(axis=reduce_axes)
        batch_var = x.data.var(axis=reduce_axes)
        running_mean *= 1.0 - momentum
        running_mean += momentum * batch_mean
        running_var *= 1.0 - momentum
        running_var += momentum * batch_var
        mean = x.mean(axis=reduce_axes, keepdims=True)
        var = x.var(axis=reduce_axes, keepdims=True)
    else:
        mean = Tensor(running_mean.reshape(shape))
        var = Tensor(running_var.reshape(shape))

    x_hat = (x - mean) / (var + eps).sqrt()
    return x_hat * weight.reshape(*shape) + bias.reshape(*shape)


def layer_norm(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    eps: float = 1e-5,
) -> Tensor:
    """Layer normalisation over the last dimension."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    x_hat = (x - mean) / (var + eps).sqrt()
    return x_hat * weight + bias


# ----------------------------------------------------------------------
# softmax and losses
# ----------------------------------------------------------------------
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) or (N, T, C) and integer targets."""
    targets = np.asarray(targets, dtype=np.int64)
    logp = log_softmax(logits, axis=-1)
    if logits.ndim == 3:
        n, t, c = logits.shape
        flat = logp.reshape(n * t, c)
        picked = flat[np.arange(n * t), targets.reshape(-1)]
    else:
        n, c = logits.shape
        picked = logp[np.arange(n), targets]
    return -(picked.mean())


def mse_loss(pred: Tensor, target: Union[Tensor, np.ndarray]) -> Tensor:
    """Mean squared error."""
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target
    return (diff * diff).mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: Union[Tensor, np.ndarray]) -> Tensor:
    """Numerically stable BCE-with-logits (used by the DLRM-style recommender)."""
    targets = targets if isinstance(targets, Tensor) else Tensor(targets)
    # stable formulation: max(x, 0) - x * y + log(1 + exp(-|x|))
    x = logits
    loss = x.relu() - x * targets + (1.0 + (-x.abs()).exp()).log()
    return loss.mean()


def dropout(
    x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None
) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(np.float32) / (1.0 - p)
    return x * Tensor(mask)
