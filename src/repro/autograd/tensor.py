"""The :class:`Tensor` class: numpy arrays with reverse-mode autodiff.

Only the operations actually used by the model zoo and the quantization
framework are implemented; each op records a backward closure on the tape.
Gradient correctness is verified by the property-based tests in
``tests/autograd`` against numerical differentiation (:mod:`repro.autograd.gradcheck`).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

# Per-thread so concurrent forwards don't race: the serving engine's driver
# thread runs its inference under no_grad while another thread may be
# training or calibrating — a process-global flag would let one thread's
# context exit clobber the other's state.
_grad_state = threading.local()


@contextlib.contextmanager
def no_grad():
    """Context manager disabling tape recording (inference mode, per thread)."""
    prev = is_grad_enabled()
    _grad_state.enabled = False
    try:
        yield
    finally:
        _grad_state.enabled = prev


def is_grad_enabled() -> bool:
    """Whether operations on the current thread record backward closures."""
    return getattr(_grad_state, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # added leading dims
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # broadcast along size-1 dims
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    __array_priority__ = 1000  # ensure ndarray + Tensor dispatches to Tensor

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: Iterable["Tensor"] = (),
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[], None]] = None
        self._prev: Tuple[Tensor, ...] = tuple(_prev)
        self.name = name

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # tape machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _as_tensor(x: ArrayLike) -> "Tensor":
        return x if isinstance(x, Tensor) else Tensor(x)

    def _make(
        self,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[["Tensor"], None],
    ) -> "Tensor":
        """Create a result tensor and register its backward closure."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _prev=parents if requires else ())
        if requires:
            out._backward = lambda: backward(out)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = np.asarray(grad, dtype=np.float32)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (so scalars behave like losses).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        topo: List[Tensor] = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        if grad is None:
            grad = np.ones_like(self.data)
        self._accumulate(np.asarray(grad, dtype=np.float32))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # ------------------------------------------------------------------
    # elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._as_tensor(other)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad, other.shape))

        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(-out.grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._as_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._as_tensor(other)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._as_tensor(other)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-out.grad * self.data / (other.data**2), other.shape)
                )

        return self._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        return self._make(self.data**exponent, (self,), backward)

    # ------------------------------------------------------------------
    # matrix multiplication
    # ------------------------------------------------------------------
    def matmul(self, other: ArrayLike) -> "Tensor":
        """Matrix product with numpy broadcasting semantics (2D or batched)."""
        other = self._as_tensor(other)

        def backward(out: Tensor) -> None:
            a, b = self.data, other.data
            g = out.grad
            if self.requires_grad:
                if b.ndim == 1:
                    grad_a = np.multiply.outer(g, b) if a.ndim > 1 else g * b
                else:
                    grad_a = g @ np.swapaxes(b, -1, -2)
                self._accumulate(_unbroadcast(np.asarray(grad_a), a.shape))
            if other.requires_grad:
                if a.ndim == 1:
                    grad_b = np.multiply.outer(a, g) if b.ndim > 1 else a * g
                else:
                    grad_b = np.swapaxes(a, -1, -2) @ g
                other._accumulate(_unbroadcast(np.asarray(grad_b), b.shape))

        return self._make(self.data @ other.data, (self, other), backward)

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(out: Tensor) -> None:
            if not self.requires_grad:
                return
            g = out.grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.ndim for a in axes)
                g = np.expand_dims(g, tuple(sorted(axes)))
            self._accumulate(np.broadcast_to(g, self.shape))

        return self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        sq = (self - mean) ** 2
        out = sq.mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(out: Tensor) -> None:
            if not self.requires_grad:
                return
            g = out.grad
            maxed = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == maxed).astype(np.float32)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.ndim for a in axes)
                g = np.expand_dims(g, tuple(sorted(axes)))
            self._accumulate(mask * g)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad.reshape(self.shape))

        return self._make(self.data.reshape(shape), (self,), backward)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        new_shape = self.shape[:start_dim] + (-1,)
        return self.reshape(*new_shape)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inv = np.argsort(axes)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad.transpose(inv))

        return self._make(self.data.transpose(axes), (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        def backward(out: Tensor) -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, index, out.grad)
                self._accumulate(grad)

        return self._make(self.data[index], (self,), backward)

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._as_tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(out: Tensor) -> None:
            for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    slicer = [slice(None)] * out.grad.ndim
                    slicer[axis] = slice(lo, hi)
                    t._accumulate(out.grad[tuple(slicer)])

        probe = tensors[0]
        return probe._make(data, tuple(tensors), backward)

    def pad2d(self, padding: Tuple[int, int]) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions by ``(ph, pw)``."""
        ph, pw = padding
        if ph == 0 and pw == 0:
            return self
        pad_width = [(0, 0)] * (self.ndim - 2) + [(ph, ph), (pw, pw)]

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                slicer = [slice(None)] * (self.ndim - 2) + [
                    slice(ph, out.grad.shape[-2] - ph),
                    slice(pw, out.grad.shape[-1] - pw),
                ]
                self._accumulate(out.grad[tuple(slicer)])

        return self._make(np.pad(self.data, pad_width), (self,), backward)

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * out.data)

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad / self.data)

        return self._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * 0.5 / np.maximum(out.data, 1e-12))

        return self._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * mask)

        return self._make(self.data * mask, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * out.data * (1.0 - out.data))

        return self._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (1.0 - out.data**2))

        return self._make(data, (self,), backward)

    def gelu(self) -> "Tensor":
        """GELU with the tanh approximation (matches transformer usage)."""
        x = self.data
        c = np.sqrt(2.0 / np.pi).astype(np.float32)
        inner = c * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        data = 0.5 * x * (1.0 + t)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                dinner = c * (1.0 + 3 * 0.044715 * x**2)
                grad = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * dinner
                self._accumulate(out.grad * grad)

        return self._make(data, (self,), backward)

    def silu(self) -> "Tensor":
        sig = 1.0 / (1.0 + np.exp(-self.data))
        data = self.data * sig

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                grad = sig * (1.0 + self.data * (1.0 - sig))
                self._accumulate(out.grad * grad)

        return self._make(data, (self,), backward)

    def clip(self, lo: float, hi: float) -> "Tensor":
        mask = ((self.data >= lo) & (self.data <= hi)).astype(np.float32)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * mask)

        return self._make(np.clip(self.data, lo, hi), (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * sign)

        return self._make(np.abs(self.data), (self,), backward)
