"""Synthetic model zoo.

Laptop-scale stand-ins for the paper's 75 evaluated architectures.  Each family
mirrors the operator mix and distributional character of its namesake (BatchNorm
CNNs, LayerNorm transformers, embedding-heavy recommenders, attention-based
audio encoders, a convolutional denoiser for generation), and the registry in
:mod:`repro.models.registry` attaches every architecture to a synthetic task,
a size class, and the metadata the quantization recipes key off of.
"""

from repro.models.cnn import (
    TinyVGG,
    TinyResNet,
    TinyDenseNet,
    TinyMobileNet,
    TinyShuffleNet,
    TinyEfficientNet,
    TinyInception,
)
from repro.models.transformer import (
    TransformerEncoderLayer,
    BertStyleClassifier,
    GPTStyleLM,
    ViTStyleClassifier,
)
from repro.models.mlp import DLRMStyle, SimpleMLP
from repro.models.unet import TinyUNet
from repro.models.audio import Wav2VecStyleClassifier
from repro.models.generative import TinyDenoiser
from repro.models.outliers import inject_nlp_outliers, find_outlier_channels
from repro.models.registry import (
    ModelSpec,
    TaskBundle,
    REGISTRY,
    get_spec,
    list_specs,
    build_task,
)

__all__ = [
    "TinyVGG",
    "TinyResNet",
    "TinyDenseNet",
    "TinyMobileNet",
    "TinyShuffleNet",
    "TinyEfficientNet",
    "TinyInception",
    "TransformerEncoderLayer",
    "BertStyleClassifier",
    "GPTStyleLM",
    "ViTStyleClassifier",
    "DLRMStyle",
    "SimpleMLP",
    "TinyUNet",
    "Wav2VecStyleClassifier",
    "TinyDenoiser",
    "inject_nlp_outliers",
    "find_outlier_channels",
    "ModelSpec",
    "TaskBundle",
    "REGISTRY",
    "get_spec",
    "list_specs",
    "build_task",
]
