"""Model/task registry — the synthetic counterpart of the paper's 75-network study.

Every entry couples an architecture from the zoo with a synthetic task, a
training recipe, and the metadata the quantization workflow keys off of
(domain, BatchNorm presence, outlier injection, size class).  ``build_task``
returns a ready-to-quantize :class:`TaskBundle` whose FP32 model is trained on
first use and cached on disk afterwards (see :mod:`repro.training.cache`).

The registry is intentionally smaller than the paper's study (≈35 tasks instead
of 200+) but spans the same axes: CNNs with/without foldable BatchNorm,
attention models with/without activation outliers, encoder and decoder
transformers, recommendation, audio, segmentation and generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.data.synthetic import (
    ArrayDataset,
    make_classification_images,
    make_language_modeling,
    make_segmentation,
    make_sequence_regression,
    make_tabular_ctr,
    make_token_classification,
)
from repro.models.audio import Wav2VecStyleClassifier
from repro.models.cnn import (
    TinyDenseNet,
    TinyEfficientNet,
    TinyInception,
    TinyMobileNet,
    TinyResNet,
    TinyShuffleNet,
    TinyVGG,
)
from repro.models.generative import TinyDenoiser
from repro.models.mlp import DLRMStyle
from repro.models.outliers import inject_nlp_outliers
from repro.models.transformer import BertStyleClassifier, GPTStyleLM, ViTStyleClassifier
from repro.models.unet import TinyUNet
from repro.nn.module import Module
from repro.training.cache import default_cache
from repro.training.trainer import TrainConfig, evaluate_model, train_model
from repro.utils.logging import get_logger
from repro.utils.seeding import seeded_rng

__all__ = [
    "ModelSpec",
    "TaskBundle",
    "REGISTRY",
    "get_spec",
    "list_specs",
    "build_task",
    "size_class_of",
    "SIZE_CLASS_THRESHOLDS",
]

logger = get_logger("models.registry")


# ----------------------------------------------------------------------
# metrics & losses, keyed by task type
# ----------------------------------------------------------------------
def classification_accuracy(outputs: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy for (N, C) logits."""
    return float(np.mean(outputs.argmax(axis=-1) == targets))


def next_token_accuracy(outputs: np.ndarray, targets: np.ndarray) -> float:
    """Next-token prediction accuracy for (N, T, V) logits (lambada-style metric)."""
    return float(np.mean(outputs.argmax(axis=-1) == targets))


def mean_iou(outputs: np.ndarray, targets: np.ndarray) -> float:
    """Mean intersection-over-union for (N, K, H, W) segmentation logits."""
    preds = outputs.argmax(axis=1)
    ious = []
    for cls in range(outputs.shape[1]):
        pred_mask = preds == cls
        target_mask = targets == cls
        union = np.logical_or(pred_mask, target_mask).sum()
        if union == 0:
            continue
        ious.append(np.logical_and(pred_mask, target_mask).sum() / union)
    return float(np.mean(ious)) if ious else 0.0


def roc_auc(outputs: np.ndarray, targets: np.ndarray) -> float:
    """Rank-based ROC AUC for binary CTR logits."""
    outputs = outputs.reshape(-1)
    targets = targets.reshape(-1)
    order = np.argsort(outputs, kind="stable")
    ranks = np.empty_like(order, dtype=np.float64)
    ranks[order] = np.arange(1, len(outputs) + 1)
    n_pos = targets.sum()
    n_neg = len(targets) - n_pos
    if n_pos == 0 or n_neg == 0:
        return 0.5
    return float((ranks[targets > 0.5].sum() - n_pos * (n_pos + 1) / 2) / (n_pos * n_neg))


def negative_mse(outputs: np.ndarray, targets: np.ndarray) -> float:
    """Negative mean-squared-error (higher is better) for regression/denoising tasks."""
    return float(-np.mean((outputs - targets) ** 2))


def _classification_loss(outputs: Tensor, targets: np.ndarray) -> Tensor:
    return F.cross_entropy(outputs, targets)


def _segmentation_loss(outputs: Tensor, targets: np.ndarray) -> Tensor:
    n, k, h, w = outputs.shape
    flat = outputs.transpose(0, 2, 3, 1).reshape(n * h * w, k)
    return F.cross_entropy(flat, targets.reshape(-1))


def _ctr_loss(outputs: Tensor, targets: np.ndarray) -> Tensor:
    return F.binary_cross_entropy_with_logits(outputs, targets.astype(np.float32))


def _mse_loss(outputs: Tensor, targets: np.ndarray) -> Tensor:
    return F.mse_loss(outputs, targets)


def _prepare_float(inputs: np.ndarray):
    return Tensor(np.asarray(inputs, dtype=np.float32))


def _prepare_tokens(inputs: np.ndarray):
    return np.asarray(inputs, dtype=np.int64)


TASK_TYPE_TABLE = {
    "image_classification": (_classification_loss, classification_accuracy, _prepare_float, "top1"),
    "text_classification": (
        _classification_loss, classification_accuracy, _prepare_tokens, "accuracy"
    ),
    "sequence_classification": (
        _classification_loss, classification_accuracy, _prepare_float, "accuracy"
    ),
    "language_modeling": (
        _classification_loss, next_token_accuracy, _prepare_tokens, "next-token acc"
    ),
    "segmentation": (_segmentation_loss, mean_iou, _prepare_float, "mIoU"),
    "ctr": (_ctr_loss, roc_auc, _prepare_float, "auc"),
    "denoising": (_mse_loss, negative_mse, _prepare_float, "-mse"),
}


# ----------------------------------------------------------------------
# size classes (paper Figure 5, rescaled to zoo model sizes)
# ----------------------------------------------------------------------
# The paper bins models by checkpoint size in MB (<=32, (32,384], (384,512], >512).
# Our zoo is ~4 orders of magnitude smaller, so the same four bins are defined
# over parameter counts instead; the mapping is documented in DESIGN.md.
SIZE_CLASS_THRESHOLDS = {"tiny": 30_000, "small": 100_000, "medium": 250_000}


def size_class_of(model: Module) -> str:
    """Classify a model into tiny/small/medium/large by parameter count."""
    n = model.num_parameters()
    if n <= SIZE_CLASS_THRESHOLDS["tiny"]:
        return "tiny"
    if n <= SIZE_CLASS_THRESHOLDS["small"]:
        return "small"
    if n <= SIZE_CLASS_THRESHOLDS["medium"]:
        return "medium"
    return "large"


# ----------------------------------------------------------------------
# spec / bundle dataclasses
# ----------------------------------------------------------------------
@dataclass
class ModelSpec:
    """Static description of one zoo entry (architecture + task + training recipe)."""

    name: str
    domain: str  # "cv" | "nlp" | "audio" | "recsys" | "generative"
    task_type: str
    family: str
    model_fn: Callable[[np.random.Generator], Module]
    data_fn: Callable[[np.random.Generator], ArrayDataset]
    train: TrainConfig = field(default_factory=TrainConfig)
    has_batchnorm: bool = False
    is_convolutional: bool = False
    outlier_alpha: float = 0.0
    outlier_channels: int = 2
    seed: int = 0
    eval_samples: int = 256
    calib_samples: int = 128
    in_pass_rate_suite: bool = True
    reference_task: str = ""  # the paper workload this entry stands in for

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "domain": self.domain,
            "task_type": self.task_type,
            "family": self.family,
            "reference_task": self.reference_task,
            "has_batchnorm": self.has_batchnorm,
            "outlier_alpha": self.outlier_alpha,
        }


@dataclass
class TaskBundle:
    """A trained FP32 model together with everything needed to quantize and evaluate it."""

    spec: ModelSpec
    model: Module
    train_data: ArrayDataset
    eval_data: ArrayDataset
    calib_data: ArrayDataset
    loss_fn: Callable[[Tensor, np.ndarray], Tensor]
    metric_fn: Callable[[np.ndarray, np.ndarray], float]
    prepare_inputs: Callable[[np.ndarray], object]
    metric_name: str
    fp32_metric: float

    @property
    def size_class(self) -> str:
        return size_class_of(self.model)

    def evaluate(self, model: Optional[Module] = None, batch_size: int = 64) -> float:
        """Evaluate ``model`` (default: the bundle's FP32 model) on the eval split."""
        target = model if model is not None else self.model
        return evaluate_model(
            target,
            self.eval_data,
            self.metric_fn,
            batch_size=batch_size,
            prepare_inputs=self.prepare_inputs,
        )


# ----------------------------------------------------------------------
# registry construction
# ----------------------------------------------------------------------
REGISTRY: Dict[str, ModelSpec] = {}


def _register(spec: ModelSpec) -> ModelSpec:
    if spec.name in REGISTRY:
        raise ValueError(f"duplicate registry entry {spec.name!r}")
    if spec.task_type not in TASK_TYPE_TABLE:
        raise ValueError(f"unknown task type {spec.task_type!r} for {spec.name!r}")
    REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> ModelSpec:
    """Look up a registry entry by name."""
    if name not in REGISTRY:
        raise KeyError(f"unknown model spec {name!r}; see list_specs()")
    return REGISTRY[name]


def list_specs(
    domain: Optional[str] = None,
    task_type: Optional[str] = None,
    in_pass_rate_suite: Optional[bool] = None,
) -> List[ModelSpec]:
    """List registry entries, optionally filtered by domain / task type / suite membership."""
    specs = list(REGISTRY.values())
    if domain is not None:
        specs = [s for s in specs if s.domain == domain]
    if task_type is not None:
        specs = [s for s in specs if s.task_type == task_type]
    if in_pass_rate_suite is not None:
        specs = [s for s in specs if s.in_pass_rate_suite == in_pass_rate_suite]
    return specs


def _split(dataset: ArrayDataset, eval_samples: int) -> tuple:
    n = len(dataset)
    eval_samples = min(eval_samples, n // 3)
    train = ArrayDataset(dataset.inputs[: n - eval_samples], dataset.targets[: n - eval_samples])
    evald = ArrayDataset(dataset.inputs[n - eval_samples :], dataset.targets[n - eval_samples :])
    return train, evald


def build_task(name: str, cache=None, force_retrain: bool = False) -> TaskBundle:
    """Build (train or load) the TaskBundle for a registry entry.

    Training happens once per spec and is cached on disk; pass
    ``force_retrain=True`` to ignore the cache.
    """
    spec = get_spec(name)
    cache = cache or default_cache()
    loss_fn, metric_fn, prepare_inputs, metric_name = TASK_TYPE_TABLE[spec.task_type]

    data_rng = seeded_rng(spec.seed + 1)
    dataset = spec.data_fn(data_rng)
    train_data, eval_data = _split(dataset, spec.eval_samples)
    calib_data = train_data.subset(spec.calib_samples, rng=seeded_rng(spec.seed + 2))

    model = spec.model_fn(seeded_rng(spec.seed))

    def _train(m: Module) -> float:
        logger.info("training zoo model %s (%d params)", spec.name, m.num_parameters())
        train_model(m, train_data, loss_fn, spec.train, prepare_inputs=prepare_inputs)
        if spec.outlier_alpha > 0:
            inject_nlp_outliers(
                m,
                alpha=spec.outlier_alpha,
                num_channels=spec.outlier_channels,
                rng=seeded_rng(spec.seed + 3),
            )
        return evaluate_model(m, eval_data, metric_fn, prepare_inputs=prepare_inputs)

    if force_retrain:
        fp32_metric = _train(model)
        cache.store(_cache_key(spec), model.state_dict(), fp32_metric)
    else:
        fp32_metric = cache.get_or_train(_cache_key(spec), model, _train)

    model.eval()
    return TaskBundle(
        spec=spec,
        model=model,
        train_data=train_data,
        eval_data=eval_data,
        calib_data=calib_data,
        loss_fn=loss_fn,
        metric_fn=metric_fn,
        prepare_inputs=prepare_inputs,
        metric_name=metric_name,
        fp32_metric=fp32_metric,
    )


_RECIPE_VERSION = "r3"


def _cache_key(spec: ModelSpec) -> str:
    return f"{spec.name}-seed{spec.seed}-{_RECIPE_VERSION}"


# ----------------------------------------------------------------------
# CV entries
# ----------------------------------------------------------------------
_CV_CLASSES = 8
_IMG = dict(image_size=16, channels=3, n_classes=_CV_CLASSES)


def _img_data(noise: float, n_samples: int = 896):
    def factory(rng):
        return make_classification_images(n_samples=n_samples, noise=noise, rng=rng, **_IMG)

    return factory


_CNN_TRAIN = TrainConfig(epochs=5, batch_size=32, lr=3e-3, optimizer="adam")
_VIT_TRAIN = TrainConfig(epochs=6, batch_size=32, lr=2e-3, optimizer="adam")

_register(
    ModelSpec(
        name="resnet18-imagenet",
        domain="cv",
        task_type="image_classification",
        family="resnet",
        model_fn=lambda rng: TinyResNet(
            num_classes=_CV_CLASSES, widths=(12, 24, 48), blocks_per_stage=1, rng=rng
        ),
        data_fn=_img_data(noise=3.0),
        train=_CNN_TRAIN,
        has_batchnorm=True,
        is_convolutional=True,
        seed=11,
        reference_task="ResNet-18 / ImageNet",
    )
)
_register(
    ModelSpec(
        name="resnet50-imagenet",
        domain="cv",
        task_type="image_classification",
        family="resnet",
        model_fn=lambda rng: TinyResNet(
            num_classes=_CV_CLASSES, widths=(16, 32, 64), blocks_per_stage=2, rng=rng
        ),
        data_fn=_img_data(noise=3.0),
        train=_CNN_TRAIN,
        has_batchnorm=True,
        is_convolutional=True,
        seed=12,
        reference_task="ResNet-50 / ImageNet",
    )
)
_register(
    ModelSpec(
        name="resnext101-imagenet",
        domain="cv",
        task_type="image_classification",
        family="resnet",
        model_fn=lambda rng: TinyResNet(
            num_classes=_CV_CLASSES, widths=(16, 32, 48), blocks_per_stage=2, rng=rng
        ),
        data_fn=_img_data(noise=3.3),
        train=_CNN_TRAIN,
        has_batchnorm=True,
        is_convolutional=True,
        seed=13,
        reference_task="ResNeXt-101 / ImageNet",
    )
)
_register(
    ModelSpec(
        name="vgg13-imagenet",
        domain="cv",
        task_type="image_classification",
        family="vgg",
        model_fn=lambda rng: TinyVGG(
            num_classes=_CV_CLASSES, widths=(12, 24, 48), batch_norm=False, rng=rng
        ),
        data_fn=_img_data(noise=3.0),
        train=_CNN_TRAIN,
        has_batchnorm=False,
        is_convolutional=True,
        seed=14,
        reference_task="VGG-13 / ImageNet",
    )
)
_register(
    ModelSpec(
        name="densenet121-imagenet",
        domain="cv",
        task_type="image_classification",
        family="densenet",
        model_fn=lambda rng: TinyDenseNet(
            num_classes=_CV_CLASSES, growth=8, layers_per_block=3, rng=rng
        ),
        data_fn=_img_data(noise=3.0),
        train=_CNN_TRAIN,
        has_batchnorm=True,
        is_convolutional=True,
        seed=15,
        reference_task="DenseNet-121 / ImageNet",
    )
)
_register(
    ModelSpec(
        name="densenet169-imagenet",
        domain="cv",
        task_type="image_classification",
        family="densenet",
        model_fn=lambda rng: TinyDenseNet(
            num_classes=_CV_CLASSES, growth=12, layers_per_block=4, rng=rng
        ),
        data_fn=_img_data(noise=3.15),
        train=_CNN_TRAIN,
        has_batchnorm=True,
        is_convolutional=True,
        seed=16,
        reference_task="DenseNet-169 / ImageNet",
    )
)
_register(
    ModelSpec(
        name="mobilenet-v2-imagenet",
        domain="cv",
        task_type="image_classification",
        family="mobilenet",
        model_fn=lambda rng: TinyMobileNet(num_classes=_CV_CLASSES, widths=(12, 24, 48), rng=rng),
        data_fn=_img_data(noise=3.3),
        train=_CNN_TRAIN,
        has_batchnorm=True,
        is_convolutional=True,
        seed=17,
        reference_task="MobileNetV2 / ImageNet",
    )
)
_register(
    ModelSpec(
        name="shufflenet-v2-imagenet",
        domain="cv",
        task_type="image_classification",
        family="shufflenet",
        model_fn=lambda rng: TinyShuffleNet(num_classes=_CV_CLASSES, width=32, groups=4, rng=rng),
        data_fn=_img_data(noise=3.3),
        train=_CNN_TRAIN,
        has_batchnorm=True,
        is_convolutional=True,
        seed=18,
        reference_task="ShuffleNetV2 / ImageNet",
    )
)
_register(
    ModelSpec(
        name="efficientnet-b0-imagenet",
        domain="cv",
        task_type="image_classification",
        family="efficientnet",
        model_fn=lambda rng: TinyEfficientNet(
            num_classes=_CV_CLASSES, widths=(12, 20, 32), rng=rng
        ),
        data_fn=_img_data(noise=3.45),
        train=_CNN_TRAIN,
        has_batchnorm=True,
        is_convolutional=True,
        seed=19,
        reference_task="EfficientNet-B0 / ImageNet",
    )
)
_register(
    ModelSpec(
        name="inception-v3-imagenet",
        domain="cv",
        task_type="image_classification",
        family="inception",
        model_fn=lambda rng: TinyInception(num_classes=_CV_CLASSES, branch_width=8, rng=rng),
        data_fn=_img_data(noise=3.0),
        train=_CNN_TRAIN,
        has_batchnorm=True,
        is_convolutional=True,
        seed=20,
        reference_task="GoogleNet / Inception-V3 / ImageNet",
    )
)
_register(
    ModelSpec(
        name="vit-small-imagenet",
        domain="cv",
        task_type="image_classification",
        family="vit",
        model_fn=lambda rng: ViTStyleClassifier(
            num_classes=_CV_CLASSES, embed_dim=32, num_layers=2, rng=rng
        ),
        data_fn=_img_data(noise=3.0),
        train=_VIT_TRAIN,
        has_batchnorm=False,
        is_convolutional=False,
        seed=21,
        reference_task="ViT-S / ImageNet",
    )
)
_register(
    ModelSpec(
        name="vit-base-cifar10",
        domain="cv",
        task_type="image_classification",
        family="vit",
        model_fn=lambda rng: ViTStyleClassifier(
            num_classes=_CV_CLASSES, embed_dim=64, num_layers=3, rng=rng
        ),
        data_fn=_img_data(noise=2.9),
        train=_VIT_TRAIN,
        has_batchnorm=False,
        is_convolutional=False,
        seed=22,
        reference_task="ViT-B / CIFAR-10",
    )
)
_register(
    ModelSpec(
        name="unet-carvana",
        domain="cv",
        task_type="segmentation",
        family="unet",
        model_fn=lambda rng: TinyUNet(num_classes=2, base_width=10, rng=rng),
        data_fn=lambda rng: make_segmentation(n_samples=576, noise=1.4, rng=rng),
        train=TrainConfig(epochs=4, batch_size=16, lr=3e-3),
        has_batchnorm=True,
        is_convolutional=True,
        seed=23,
        eval_samples=160,
        reference_task="U-Net / Carvana masking",
    )
)
_register(
    ModelSpec(
        name="se-resnext50-imagenet",
        domain="cv",
        task_type="image_classification",
        family="efficientnet",
        model_fn=lambda rng: TinyEfficientNet(
            num_classes=_CV_CLASSES, widths=(16, 24, 40), rng=rng
        ),
        data_fn=_img_data(noise=3.15),
        train=_CNN_TRAIN,
        has_batchnorm=True,
        is_convolutional=True,
        seed=24,
        reference_task="SE-ResNeXt-50 / ImageNet",
    )
)


# ----------------------------------------------------------------------
# NLP entries
# ----------------------------------------------------------------------
def _text_data(n_classes: int, seq_len: int = 24, noise: float = 0.18, n_samples: int = 896):
    def factory(rng):
        return make_token_classification(
            n_samples=n_samples,
            seq_len=seq_len,
            vocab_size=64,
            n_classes=n_classes,
            signal_density=noise,
            rng=rng,
        )

    return factory


def _lm_data(vocab_size: int = 48, seq_len: int = 32, n_samples: int = 640):
    def factory(rng):
        return make_language_modeling(
            n_samples=n_samples, seq_len=seq_len, vocab_size=vocab_size, rng=rng
        )

    return factory


_BERT_TRAIN = TrainConfig(epochs=6, batch_size=32, lr=2e-3, optimizer="adam")
_LM_TRAIN = TrainConfig(epochs=5, batch_size=32, lr=2e-3, optimizer="adam")


def _bert_entry(
    name: str,
    reference: str,
    embed_dim: int = 32,
    num_layers: int = 2,
    num_heads: int = 4,
    n_classes: int = 4,
    outlier_alpha: float = 24.0,
    local_window: Optional[int] = None,
    funnel_pool: bool = False,
    seed: int = 0,
    signal_density: float = 0.18,
) -> ModelSpec:
    return ModelSpec(
        name=name,
        domain="nlp",
        task_type="text_classification",
        family="bert",
        model_fn=lambda rng: BertStyleClassifier(
            vocab_size=64,
            num_classes=n_classes,
            embed_dim=embed_dim,
            num_heads=num_heads,
            num_layers=num_layers,
            local_window=local_window,
            funnel_pool=funnel_pool,
            rng=rng,
        ),
        data_fn=_text_data(n_classes=n_classes, noise=signal_density),
        train=_BERT_TRAIN,
        outlier_alpha=outlier_alpha,
        seed=seed,
        reference_task=reference,
    )


_register(_bert_entry("bert-base-mrpc", "BERT-base / MRPC", seed=31))
_register(_bert_entry("bert-base-stsb", "BERT-base / STS-B", n_classes=5, seed=32))
_register(_bert_entry("bert-base-cola", "BERT-base / CoLA", n_classes=2, seed=33))
_register(
    _bert_entry("bert-base-sst2", "BERT-base / SST-2", n_classes=2, seed=34, signal_density=0.16)
)
_register(
    _bert_entry(
        "bert-large-rte",
        "BERT-large / RTE",
        embed_dim=64,
        num_layers=3,
        n_classes=2,
        seed=35,
        outlier_alpha=32.0,
    )
)
_register(
    _bert_entry(
        "bert-large-cola",
        "BERT-large / CoLA",
        embed_dim=64,
        num_layers=3,
        n_classes=2,
        seed=36,
        outlier_alpha=32.0,
    )
)
_register(_bert_entry("distilbert-mrpc", "DistilBERT / MRPC", num_layers=1, seed=37))
_register(
    _bert_entry(
        "longformer-mrpc",
        "Longformer / MRPC",
        local_window=4,
        num_layers=2,
        seed=38,
        outlier_alpha=28.0,
    )
)
_register(_bert_entry("funnel-mrpc", "Funnel / MRPC", funnel_pool=True, seed=39))
_register(
    _bert_entry(
        "xlm-roberta-base-mrpc", "XLM-RoBERTa-base / MRPC", embed_dim=48, num_layers=2, seed=40
    )
)
_register(
    _bert_entry("albert-base-sst2", "ALBERT-base / SST-2", embed_dim=24, n_classes=2, seed=41)
)
_register(
    _bert_entry("electra-small-sst2", "ELECTRA-small / SST-2", embed_dim=24, n_classes=2, seed=42)
)
_register(
    _bert_entry("roberta-base-qnli", "RoBERTa-base / QNLI", embed_dim=48, n_classes=2, seed=43)
)


def _lm_entry(
    name: str,
    reference: str,
    embed_dim: int = 32,
    num_layers: int = 2,
    vocab_size: int = 48,
    outlier_alpha: float = 48.0,
    seed: int = 0,
) -> ModelSpec:
    return ModelSpec(
        name=name,
        domain="nlp",
        task_type="language_modeling",
        family="gpt",
        model_fn=lambda rng: GPTStyleLM(
            vocab_size=vocab_size, embed_dim=embed_dim, num_heads=4, num_layers=num_layers, rng=rng
        ),
        data_fn=_lm_data(vocab_size=vocab_size),
        train=_LM_TRAIN,
        outlier_alpha=outlier_alpha,
        seed=seed,
        eval_samples=192,
        reference_task=reference,
    )


_register(
    _lm_entry(
        "bloom-7b1-lambada", "Bloom-7B1 / lambada-openai", embed_dim=48, num_layers=3, seed=51
    )
)
_register(
    _lm_entry(
        "bloom-176b-lambada",
        "Bloom-176B / lambada-openai",
        embed_dim=64,
        num_layers=4,
        outlier_alpha=64.0,
        seed=52,
    )
)
_register(
    _lm_entry(
        "llama-65b-lambada",
        "LLaMA-65B / lambada-openai",
        embed_dim=64,
        num_layers=3,
        outlier_alpha=56.0,
        seed=53,
    )
)
_register(
    _lm_entry("dialogpt-wikitext", "DialoGPT / wikitext", embed_dim=32, num_layers=2, seed=54)
)
_register(
    _lm_entry(
        "marianmt-wmt-enro",
        "MarianMT / WMT EN-RO",
        embed_dim=32,
        num_layers=2,
        vocab_size=56,
        seed=55,
    )
)
_register(
    _lm_entry(
        "pegasus-samsum", "Pegasus / SAMSum", embed_dim=40, num_layers=2, vocab_size=56, seed=56
    )
)


# ----------------------------------------------------------------------
# audio / recsys / generative entries
# ----------------------------------------------------------------------
_register(
    ModelSpec(
        name="wav2vec2-librispeech",
        domain="audio",
        task_type="sequence_classification",
        family="wav2vec",
        model_fn=lambda rng: Wav2VecStyleClassifier(
            n_features=16, num_classes=6, embed_dim=32, rng=rng
        ),
        data_fn=lambda rng: make_sequence_regression(n_samples=768, noise=0.9, rng=rng),
        train=TrainConfig(epochs=7, batch_size=32, lr=2e-3),
        outlier_alpha=20.0,
        seed=61,
        reference_task="wav2vec 2.0 / LibriSpeech",
    )
)
_register(
    ModelSpec(
        name="hubert-librispeech",
        domain="audio",
        task_type="sequence_classification",
        family="wav2vec",
        model_fn=lambda rng: Wav2VecStyleClassifier(
            n_features=16, num_classes=6, embed_dim=40, rng=rng
        ),
        data_fn=lambda rng: make_sequence_regression(n_samples=768, noise=1.0, rng=rng),
        train=TrainConfig(epochs=7, batch_size=32, lr=2e-3),
        outlier_alpha=20.0,
        seed=62,
        reference_task="HuBERT / LibriSpeech",
    )
)
_register(
    ModelSpec(
        name="dlrm-criteo",
        domain="recsys",
        task_type="ctr",
        family="dlrm",
        model_fn=lambda rng: DLRMStyle(rng=rng),
        data_fn=lambda rng: make_tabular_ctr(n_samples=1280, rng=rng),
        train=TrainConfig(epochs=6, batch_size=64, lr=3e-3),
        seed=63,
        eval_samples=384,
        reference_task="DLRM / Criteo Terabyte",
    )
)
_register(
    ModelSpec(
        name="stable-diffusion-proxy",
        domain="generative",
        task_type="denoising",
        family="diffusion",
        model_fn=lambda rng: TinyDenoiser(width=16, rng=rng),
        data_fn=lambda rng: _denoising_data(rng),
        train=TrainConfig(epochs=6, batch_size=32, lr=3e-3),
        seed=64,
        eval_samples=128,
        in_pass_rate_suite=False,
        reference_task="Stable Diffusion / FID",
    )
)


def _denoising_data(rng) -> ArrayDataset:
    clean = make_classification_images(n_samples=640, noise=0.0, rng=rng, **_IMG).inputs
    noise_rng = seeded_rng(12345)
    noisy = clean + noise_rng.standard_normal(clean.shape).astype(np.float32)
    return ArrayDataset(noisy.astype(np.float32), clean.astype(np.float32))
