"""MLP-style models: a DLRM-like recommender and a plain MLP classifier."""

from __future__ import annotations

from typing import Sequence

import numpy as np

import repro.nn as nn
from repro.autograd.tensor import Tensor
from repro.utils.seeding import RngLike, seeded_rng

__all__ = ["DLRMStyle", "SimpleMLP"]


class DLRMStyle(nn.Module):
    """Deep Learning Recommendation Model stand-in (Criteo CTR prediction).

    Dense features go through a bottom MLP; each sparse (categorical) feature
    goes through an EmbeddingBag; pairwise dot-product interactions between the
    dense representation and the embeddings are concatenated and fed to a top
    MLP that produces a single click logit.
    """

    def __init__(
        self,
        n_dense: int = 8,
        n_sparse: int = 6,
        vocab_size: int = 50,
        embed_dim: int = 8,
        bottom_hidden: Sequence[int] = (32, 8),
        top_hidden: Sequence[int] = (32, 16),
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        if bottom_hidden[-1] != embed_dim:
            raise ValueError("bottom_hidden must end at embed_dim for the interaction layer")
        self.n_dense = n_dense
        self.n_sparse = n_sparse
        self.embed_dim = embed_dim

        bottom = []
        cin = n_dense
        for width in bottom_hidden:
            bottom += [nn.Linear(cin, width, rng=rng), nn.ReLU()]
            cin = width
        self.bottom_mlp = nn.Sequential(*bottom[:-1])  # last layer without ReLU
        self.embeddings = nn.ModuleList(
            [nn.EmbeddingBag(vocab_size, embed_dim, mode="mean", rng=rng) for _ in range(n_sparse)]
        )

        n_features = n_sparse + 1
        n_interactions = n_features * (n_features - 1) // 2
        top = []
        cin = embed_dim + n_interactions
        for width in top_hidden:
            top += [nn.Linear(cin, width, rng=rng), nn.ReLU()]
            cin = width
        top.append(nn.Linear(cin, 1, rng=rng))
        self.top_mlp = nn.Sequential(*top)

    def forward(self, inputs) -> Tensor:
        """Accept either a packed (N, n_dense + n_sparse) array or a (dense, sparse) tuple."""
        if isinstance(inputs, (tuple, list)):
            dense, sparse = inputs
        else:
            packed = inputs.data if isinstance(inputs, Tensor) else np.asarray(inputs)
            dense, sparse = packed[:, : self.n_dense], packed[:, self.n_dense :]
        dense_t = dense if isinstance(dense, Tensor) else Tensor(dense)
        sparse = np.asarray(
            sparse if not isinstance(sparse, Tensor) else sparse.data, dtype=np.int64
        )
        bottom = self.bottom_mlp(dense_t)  # (N, embed_dim)
        features = [bottom]
        for i, emb in enumerate(self.embeddings):
            features.append(emb(sparse[:, i : i + 1]))
        stacked = Tensor.concatenate(
            [f.reshape(f.shape[0], 1, self.embed_dim) for f in features], axis=1
        )
        # pairwise dot-product interactions
        inter = stacked.matmul(stacked.transpose(0, 2, 1))  # (N, F, F)
        n_features = len(features)
        iu, ju = np.triu_indices(n_features, k=1)
        inter_flat = inter.reshape(inter.shape[0], n_features * n_features)[
            :, (iu * n_features + ju)
        ]
        top_in = Tensor.concatenate([bottom, inter_flat], axis=1)
        return self.top_mlp(top_in).reshape(-1)


class SimpleMLP(nn.Module):
    """Plain MLP classifier over flattened inputs."""

    def __init__(
        self,
        in_features: int,
        num_classes: int,
        hidden: Sequence[int] = (64, 32),
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        layers = []
        cin = in_features
        for width in hidden:
            layers += [nn.Linear(cin, width, rng=rng), nn.ReLU()]
            cin = width
        layers.append(nn.Linear(cin, num_classes, rng=rng))
        self.net = nn.Sequential(*layers)
        self.flatten = nn.Flatten()

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        if x.ndim > 2:
            x = self.flatten(x)
        return self.net(x)
