"""Transformer model family (BERT / GPT / Longformer / Funnel / ViT stand-ins).

The encoder layer uses pre-LayerNorm so that each LayerNorm output feeds a
Linear projection directly — the exact topology in which LLM activation
outliers appear (and in which SmoothQuant and the paper's mixed-FP8-format
recipe operate).  All batched matrix multiplications inside attention are
explicit :class:`~repro.nn.attention.BatchMatMul` modules so the extended
quantization scheme can cover them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

import repro.nn as nn
from repro.autograd.tensor import Tensor
from repro.utils.seeding import RngLike, seeded_rng

__all__ = [
    "TransformerEncoderLayer",
    "BertStyleClassifier",
    "DecodeState",
    "GPTStyleLM",
    "ViTStyleClassifier",
    "coerce_prompt",
]


def _log_softmax_np(logits: np.ndarray) -> np.ndarray:
    """Numerically-stable log-softmax over a 1D logits vector."""
    shifted = logits - logits.max()
    return shifted - np.log(np.sum(np.exp(shifted)))


def coerce_prompt(prompt, max_seq_len: int) -> np.ndarray:
    """Normalise a generation prompt into a 1D int64 token array.

    Accepts a 1D array/sequence of token ids, a 2D single-row array, or a
    :class:`~repro.autograd.tensor.Tensor` holding either.  Raises a clear
    error for batched (multi-row) prompts and for prompts longer than
    ``max_seq_len`` — the model cannot assign valid position ids past its
    trained sequence length, so silently sliding the window would decode with
    stale positions.
    """
    if isinstance(prompt, Tensor):
        prompt = prompt.data
    prompt = np.asarray(prompt)
    if prompt.ndim == 2 and prompt.shape[0] == 1:
        prompt = prompt[0]
    if prompt.ndim != 1:
        raise ValueError(
            f"prompt must be a 1D token array (or a single-row 2D array), got shape {prompt.shape}"
        )
    if prompt.size == 0:
        raise ValueError("prompt must contain at least one token")
    prompt = prompt.astype(np.int64, copy=True)
    if prompt.size > max_seq_len:
        raise ValueError(
            f"prompt of {prompt.size} tokens exceeds max_seq_len={max_seq_len}; "
            "truncate the prompt explicitly instead of relying on a silent window slide"
        )
    return prompt


class DecodeState:
    """Per-layer KV caches for incremental decoding of a batch of row slots.

    One :class:`~repro.nn.attention.KVCache` per transformer layer; rows are
    independent sequences (or beams), addressed by index so a serving pool can
    multiplex many requests over one state (see
    :mod:`repro.serving.generation`).
    """

    def __init__(self, caches, max_seq_len: int, storage: str = "float32") -> None:
        self.caches = list(caches)
        self.max_seq_len = int(max_seq_len)
        self.storage = storage

    @property
    def rows(self) -> int:
        return self.caches[0].rows

    @property
    def lengths(self) -> np.ndarray:
        """Valid cached tokens per row (identical across layers)."""
        return self.caches[0].lengths

    def copy_rows(self, src, dst) -> None:
        for cache in self.caches:
            cache.copy_rows(src, dst)

    def permute_rows(self, rows, parents) -> None:
        for cache in self.caches:
            cache.permute_rows(rows, parents)

    def reset_rows(self, rows=None) -> None:
        for cache in self.caches:
            cache.reset_rows(rows)

    @property
    def nbytes(self) -> int:
        return sum(cache.nbytes for cache in self.caches)

    @property
    def row_nbytes(self) -> int:
        """Bytes of cache storage one row slot costs (full capacity)."""
        return self.nbytes // max(1, self.rows)


class TransformerEncoderLayer(nn.Module):
    """Pre-LN transformer block: LN -> MHSA -> Add, LN -> FFN -> Add."""

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        ffn_dim: Optional[int] = None,
        dropout: float = 0.0,
        local_window: Optional[int] = None,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        ffn_dim = ffn_dim or 4 * embed_dim
        self.ln1 = nn.LayerNorm(embed_dim)
        self.attention = nn.MultiHeadSelfAttention(
            embed_dim, num_heads, dropout=dropout, local_window=local_window, rng=rng
        )
        self.attn_add = nn.Add()
        self.ln2 = nn.LayerNorm(embed_dim)
        self.fc1 = nn.Linear(embed_dim, ffn_dim, rng=rng)
        self.act = nn.GELU()
        self.fc2 = nn.Linear(ffn_dim, embed_dim, rng=rng)
        self.ffn_add = nn.Add()

    def forward(
        self,
        x: Tensor,
        causal: bool = False,
        cache=None,
        rows=None,
        new_lens=None,
    ) -> Tensor:
        if cache is None:
            attended = self.attention(self.ln1(x), causal=causal)
        else:
            attended = self.attention(
                self.ln1(x), causal=causal, cache=cache, rows=rows, new_lens=new_lens
            )
        x = self.attn_add(x, attended)
        x = self.ffn_add(x, self.fc2(self.act(self.fc1(self.ln2(x)))))
        return x


class BertStyleClassifier(nn.Module):
    """Encoder-only sequence classifier (BERT/DistilBERT/Longformer/Funnel stand-in).

    Parameters
    ----------
    funnel_pool:
        If True, the sequence length is halved (mean-pooled) between encoder
        layers, mimicking the Funnel transformer.
    local_window:
        If given, attention is restricted to a local window (Longformer-style).
    """

    def __init__(
        self,
        vocab_size: int = 64,
        max_seq_len: int = 64,
        num_classes: int = 4,
        embed_dim: int = 32,
        num_heads: int = 4,
        num_layers: int = 2,
        ffn_dim: Optional[int] = None,
        local_window: Optional[int] = None,
        funnel_pool: bool = False,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.embed_dim = embed_dim
        self.funnel_pool = funnel_pool
        self.token_embedding = nn.Embedding(vocab_size, embed_dim, rng=rng)
        self.position_embedding = nn.Embedding(max_seq_len, embed_dim, rng=rng)
        self.embed_add = nn.Add()
        self.layers = nn.ModuleList(
            [
                TransformerEncoderLayer(
                    embed_dim, num_heads, ffn_dim=ffn_dim, local_window=local_window, rng=rng
                )
                for _ in range(num_layers)
            ]
        )
        self.final_ln = nn.LayerNorm(embed_dim)
        self.classifier = nn.Linear(embed_dim, num_classes, rng=rng)

    def encode(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens, dtype=np.int64)
        _, seq_len = tokens.shape
        positions = np.broadcast_to(np.arange(seq_len), tokens.shape)
        x = self.embed_add(self.token_embedding(tokens), self.position_embedding(positions))
        for layer in self.layers:
            x = layer(x)
            if self.funnel_pool and x.shape[1] > 2:
                b, t, d = x.shape
                x = x.reshape(b, t // 2, 2, d).mean(axis=2)
        return self.final_ln(x)

    def forward(self, tokens: np.ndarray) -> Tensor:
        hidden = self.encode(tokens)
        pooled = hidden.mean(axis=1)
        return self.classifier(pooled)


class GPTStyleLM(nn.Module):
    """Decoder-only causal language model (Bloom/LLaMA/DialoGPT stand-in)."""

    def __init__(
        self,
        vocab_size: int = 48,
        max_seq_len: int = 64,
        embed_dim: int = 32,
        num_heads: int = 4,
        num_layers: int = 2,
        ffn_dim: Optional[int] = None,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.vocab_size = vocab_size
        self.max_seq_len = max_seq_len
        self.token_embedding = nn.Embedding(vocab_size, embed_dim, rng=rng)
        self.position_embedding = nn.Embedding(max_seq_len, embed_dim, rng=rng)
        self.embed_add = nn.Add()
        self.layers = nn.ModuleList(
            [
                TransformerEncoderLayer(embed_dim, num_heads, ffn_dim=ffn_dim, rng=rng)
                for _ in range(num_layers)
            ]
        )
        self.final_ln = nn.LayerNorm(embed_dim)
        self.lm_head = nn.Linear(embed_dim, vocab_size, rng=rng)

    def forward(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens, dtype=np.int64)
        _, seq_len = tokens.shape
        positions = np.broadcast_to(np.arange(seq_len), tokens.shape)
        x = self.embed_add(self.token_embedding(tokens), self.position_embedding(positions))
        for layer in self.layers:
            x = layer(x, causal=True)
        return self.lm_head(self.final_ln(x))

    # ------------------------------------------------------------------
    # incremental decode
    # ------------------------------------------------------------------
    def new_decode_state(
        self,
        rows: int = 1,
        storage: str = "float32",
        capacity: Optional[int] = None,
    ) -> DecodeState:
        """Allocate per-layer KV caches for ``rows`` independently-decoding slots.

        ``storage="float32"`` keeps the cache exact; an FP8 format name
        (``"E4M3"``, ...) stores packed codes + per-token scales (~4x smaller).
        """
        capacity = self.max_seq_len if capacity is None else int(capacity)
        caches = [
            nn.KVCache(
                rows,
                layer.attention.num_heads,
                layer.attention.head_dim,
                capacity,
                storage=storage,
            )
            for layer in self.layers
        ]
        return DecodeState(caches, self.max_seq_len, storage=storage)

    def forward_step(
        self,
        tokens: np.ndarray,
        state: DecodeState,
        rows=None,
        new_lens=None,
    ) -> Tensor:
        """One incremental step: consume new tokens, append K/V, return logits.

        ``tokens`` is ``(B, S)`` — ``S`` new tokens per row, padded; row ``i``
        owns the first ``new_lens[i]`` (all ``S`` when None).  A prefill is
        simply a step on empty rows with ``S = prompt length``; a decode step
        is ``S = 1``.  Position ids continue from each row's cached length, so
        logits at the last valid position of each row match a full forward
        over the whole sequence.  Returns ``(B, S, vocab)`` logits; positions
        at or past a row's ``new_lens`` are padding garbage.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 2:
            raise ValueError(f"forward_step expects (rows, new_tokens) ids, got {tokens.shape}")
        _, s = tokens.shape
        starts = state.lengths if rows is None else state.lengths[np.asarray(rows, dtype=np.int64)]
        if new_lens is None:
            limit = int(starts.max()) + s if starts.size else s
        else:
            valid = np.asarray(new_lens, dtype=np.int64)
            limit = int(np.max(starts + valid)) if starts.size else s
        if limit > self.max_seq_len:
            raise RuntimeError(
                f"decode step would reach {limit} cached tokens, past max_seq_len="
                f"{self.max_seq_len}; the position embedding has no ids beyond it"
            )
        positions = np.minimum(starts[:, None] + np.arange(s)[None, :], self.max_seq_len - 1)
        x = self.embed_add(self.token_embedding(tokens), self.position_embedding(positions))
        for index, layer in enumerate(self.layers):
            x = layer(x, causal=True, cache=state.caches[index], rows=rows, new_lens=new_lens)
        return self.lm_head(self.final_ln(x))

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    def generate(
        self,
        prompt: np.ndarray,
        max_new_tokens: int = 32,
        beam_size: int = 1,
        rng: RngLike = None,
        use_cache: bool = True,
        kv_cache: str = "float32",
        eos_token: Optional[int] = None,
    ) -> np.ndarray:
        """Greedy (beam_size=1) or beam-search continuation of a single prompt.

        ``prompt`` may be a 1D token array, a single-row 2D array, or a
        :class:`~repro.autograd.tensor.Tensor` of either; the full sequence
        including the prompt is returned.  With ``use_cache`` (default) the
        prompt is prefilled once and each new token costs one single-token
        step against the per-layer KV cache (``kv_cache="float32"`` exact, or
        an FP8 format name for a packed quantized cache); without it every
        step re-runs the full O(T²) forward — kept as the bit-exactness
        oracle and for continuations that must slide past ``max_seq_len``.
        ``eos_token`` stops a sequence early after emitting it.
        """
        from repro.autograd.tensor import no_grad

        prompt = coerce_prompt(prompt, self.max_seq_len)
        if prompt.size + max_new_tokens > self.max_seq_len:
            # the cache cannot slide; preserve the historical sliding-window
            # behaviour for continuations past the trained sequence length
            use_cache = False
        with no_grad():
            if not use_cache:
                return self._generate_full_recompute(prompt, max_new_tokens, beam_size, eos_token)
            if beam_size <= 1:
                return self._generate_greedy_cached(prompt, max_new_tokens, kv_cache, eos_token)
            return self._generate_beam_cached(
                prompt, max_new_tokens, beam_size, kv_cache, eos_token
            )

    def _generate_full_recompute(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        beam_size: int,
        eos_token: Optional[int],
    ) -> np.ndarray:
        """The pre-cache O(T²) loop (sliding window past max_seq_len)."""
        if beam_size <= 1:
            seq = prompt.copy()
            for _ in range(max_new_tokens):
                window = seq[-self.max_seq_len :]
                logits = self.forward(window[None, :]).data[0, -1]
                token = int(np.argmax(logits))
                seq = np.append(seq, token)
                if eos_token is not None and token == eos_token:
                    break
            return seq
        beams = [(prompt.copy(), 0.0, False)]
        for _ in range(max_new_tokens):
            candidates = []
            for seq, score, done in beams:
                if done:
                    candidates.append((seq, score, True))
                    continue
                window = seq[-self.max_seq_len :]
                logits = self.forward(window[None, :]).data[0, -1]
                logp = logits - np.log(np.sum(np.exp(logits - logits.max()))) - logits.max()
                top = np.argsort(logp)[-beam_size:]
                for token in top:
                    finished = eos_token is not None and int(token) == eos_token
                    candidates.append(
                        (np.append(seq, int(token)), score + float(logp[token]), finished)
                    )
            candidates.sort(key=lambda item: item[1], reverse=True)
            beams = candidates[:beam_size]
            if all(done for _, _, done in beams):
                break
        return beams[0][0]

    def _generate_greedy_cached(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        kv_cache: str,
        eos_token: Optional[int],
    ) -> np.ndarray:
        state = self.new_decode_state(1, storage=kv_cache)
        seq = prompt.copy()
        logits = self.forward_step(seq[None, :], state).data[0, -1]
        for _ in range(max_new_tokens):
            token = int(np.argmax(logits))
            seq = np.append(seq, token)
            if eos_token is not None and token == eos_token:
                break
            if seq.size >= self.max_seq_len or seq.size - prompt.size >= max_new_tokens:
                break
            logits = self.forward_step(np.array([[token]], dtype=np.int64), state).data[0, -1]
        return seq

    def _generate_beam_cached(
        self,
        prompt: np.ndarray,
        max_new_tokens: int,
        beam_size: int,
        kv_cache: str,
        eos_token: Optional[int],
    ) -> np.ndarray:
        state = self.new_decode_state(beam_size, storage=kv_cache)
        tiled = np.tile(prompt[None, :], (beam_size, 1))
        logits = self.forward_step(tiled, state).data[:, -1]
        logp0 = _log_softmax_np(logits[0])
        seeds = np.argsort(logp0)[-beam_size:]
        suffixes = [[int(t)] for t in seeds]
        scores = [float(logp0[t]) for t in seeds]
        done = [eos_token is not None and int(t) == eos_token for t in seeds]
        for _ in range(max_new_tokens - 1):
            if all(done):
                break
            last = np.array([[suffix[-1]] for suffix in suffixes], dtype=np.int64)
            logits = self.forward_step(last, state).data[:, -1]
            candidates = []  # (score, parent, token-or-None)
            for b in range(beam_size):
                if done[b]:
                    candidates.append((scores[b], b, None))
                    continue
                logp = _log_softmax_np(logits[b])
                for token in np.argsort(logp)[-beam_size:]:
                    candidates.append((scores[b] + float(logp[token]), b, int(token)))
            candidates.sort(key=lambda item: item[0], reverse=True)
            chosen = candidates[:beam_size]
            parents = [parent for _, parent, _ in chosen]
            state.permute_rows(np.arange(beam_size), parents)
            suffixes = [
                suffixes[parent] + ([] if token is None else [token])
                for _, parent, token in chosen
            ]
            scores = [score for score, _, _ in chosen]
            done = [
                token is None or (eos_token is not None and token == eos_token)
                for _, _, token in chosen
            ]
        best = int(np.argmax(scores))
        return np.concatenate([prompt, np.asarray(suffixes[best], dtype=np.int64)])


class ViTStyleClassifier(nn.Module):
    """Vision transformer: patch embedding + encoder layers + mean-pool classifier."""

    def __init__(
        self,
        num_classes: int = 8,
        image_size: int = 16,
        patch_size: int = 4,
        in_channels: int = 3,
        embed_dim: int = 32,
        num_heads: int = 4,
        num_layers: int = 2,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        if image_size % patch_size:
            raise ValueError("image_size must be divisible by patch_size")
        self.patch_size = patch_size
        num_patches = (image_size // patch_size) ** 2
        self.patch_embed = nn.Conv2d(in_channels, embed_dim, patch_size, stride=patch_size, rng=rng)
        self.position_embedding = nn.Embedding(num_patches, embed_dim, rng=rng)
        self.embed_add = nn.Add()
        self.layers = nn.ModuleList(
            [TransformerEncoderLayer(embed_dim, num_heads, rng=rng) for _ in range(num_layers)]
        )
        self.final_ln = nn.LayerNorm(embed_dim)
        self.classifier = nn.Linear(embed_dim, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        patches = self.patch_embed(x)
        n, d, h, w = patches.shape
        seq = patches.reshape(n, d, h * w).transpose(0, 2, 1)
        positions = np.broadcast_to(np.arange(h * w), (n, h * w))
        seq = self.embed_add(seq, self.position_embedding(positions))
        for layer in self.layers:
            seq = layer(seq)
        pooled = self.final_ln(seq).mean(axis=1)
        return self.classifier(pooled)
