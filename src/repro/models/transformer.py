"""Transformer model family (BERT / GPT / Longformer / Funnel / ViT stand-ins).

The encoder layer uses pre-LayerNorm so that each LayerNorm output feeds a
Linear projection directly — the exact topology in which LLM activation
outliers appear (and in which SmoothQuant and the paper's mixed-FP8-format
recipe operate).  All batched matrix multiplications inside attention are
explicit :class:`~repro.nn.attention.BatchMatMul` modules so the extended
quantization scheme can cover them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

import repro.nn as nn
from repro.autograd.tensor import Tensor
from repro.utils.seeding import RngLike, seeded_rng

__all__ = [
    "TransformerEncoderLayer",
    "BertStyleClassifier",
    "GPTStyleLM",
    "ViTStyleClassifier",
]


class TransformerEncoderLayer(nn.Module):
    """Pre-LN transformer block: LN -> MHSA -> Add, LN -> FFN -> Add."""

    def __init__(
        self,
        embed_dim: int,
        num_heads: int,
        ffn_dim: Optional[int] = None,
        dropout: float = 0.0,
        local_window: Optional[int] = None,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        ffn_dim = ffn_dim or 4 * embed_dim
        self.ln1 = nn.LayerNorm(embed_dim)
        self.attention = nn.MultiHeadSelfAttention(
            embed_dim, num_heads, dropout=dropout, local_window=local_window, rng=rng
        )
        self.attn_add = nn.Add()
        self.ln2 = nn.LayerNorm(embed_dim)
        self.fc1 = nn.Linear(embed_dim, ffn_dim, rng=rng)
        self.act = nn.GELU()
        self.fc2 = nn.Linear(ffn_dim, embed_dim, rng=rng)
        self.ffn_add = nn.Add()

    def forward(self, x: Tensor, causal: bool = False) -> Tensor:
        x = self.attn_add(x, self.attention(self.ln1(x), causal=causal))
        x = self.ffn_add(x, self.fc2(self.act(self.fc1(self.ln2(x)))))
        return x


class BertStyleClassifier(nn.Module):
    """Encoder-only sequence classifier (BERT/DistilBERT/Longformer/Funnel stand-in).

    Parameters
    ----------
    funnel_pool:
        If True, the sequence length is halved (mean-pooled) between encoder
        layers, mimicking the Funnel transformer.
    local_window:
        If given, attention is restricted to a local window (Longformer-style).
    """

    def __init__(
        self,
        vocab_size: int = 64,
        max_seq_len: int = 64,
        num_classes: int = 4,
        embed_dim: int = 32,
        num_heads: int = 4,
        num_layers: int = 2,
        ffn_dim: Optional[int] = None,
        local_window: Optional[int] = None,
        funnel_pool: bool = False,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.embed_dim = embed_dim
        self.funnel_pool = funnel_pool
        self.token_embedding = nn.Embedding(vocab_size, embed_dim, rng=rng)
        self.position_embedding = nn.Embedding(max_seq_len, embed_dim, rng=rng)
        self.embed_add = nn.Add()
        self.layers = nn.ModuleList(
            [
                TransformerEncoderLayer(
                    embed_dim, num_heads, ffn_dim=ffn_dim, local_window=local_window, rng=rng
                )
                for _ in range(num_layers)
            ]
        )
        self.final_ln = nn.LayerNorm(embed_dim)
        self.classifier = nn.Linear(embed_dim, num_classes, rng=rng)

    def encode(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens, dtype=np.int64)
        _, seq_len = tokens.shape
        positions = np.broadcast_to(np.arange(seq_len), tokens.shape)
        x = self.embed_add(self.token_embedding(tokens), self.position_embedding(positions))
        for layer in self.layers:
            x = layer(x)
            if self.funnel_pool and x.shape[1] > 2:
                b, t, d = x.shape
                x = x.reshape(b, t // 2, 2, d).mean(axis=2)
        return self.final_ln(x)

    def forward(self, tokens: np.ndarray) -> Tensor:
        hidden = self.encode(tokens)
        pooled = hidden.mean(axis=1)
        return self.classifier(pooled)


class GPTStyleLM(nn.Module):
    """Decoder-only causal language model (Bloom/LLaMA/DialoGPT stand-in)."""

    def __init__(
        self,
        vocab_size: int = 48,
        max_seq_len: int = 64,
        embed_dim: int = 32,
        num_heads: int = 4,
        num_layers: int = 2,
        ffn_dim: Optional[int] = None,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.vocab_size = vocab_size
        self.max_seq_len = max_seq_len
        self.token_embedding = nn.Embedding(vocab_size, embed_dim, rng=rng)
        self.position_embedding = nn.Embedding(max_seq_len, embed_dim, rng=rng)
        self.embed_add = nn.Add()
        self.layers = nn.ModuleList(
            [
                TransformerEncoderLayer(embed_dim, num_heads, ffn_dim=ffn_dim, rng=rng)
                for _ in range(num_layers)
            ]
        )
        self.final_ln = nn.LayerNorm(embed_dim)
        self.lm_head = nn.Linear(embed_dim, vocab_size, rng=rng)

    def forward(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens, dtype=np.int64)
        _, seq_len = tokens.shape
        positions = np.broadcast_to(np.arange(seq_len), tokens.shape)
        x = self.embed_add(self.token_embedding(tokens), self.position_embedding(positions))
        for layer in self.layers:
            x = layer(x, causal=True)
        return self.lm_head(self.final_ln(x))

    def generate(
        self,
        prompt: np.ndarray,
        max_new_tokens: int = 32,
        beam_size: int = 1,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Greedy (beam_size=1) or beam-search continuation of a single prompt.

        ``prompt`` is a 1D array of token ids; returns the full sequence
        including the prompt.  Used by the Table 4 text-generation benchmark.
        """
        from repro.autograd.tensor import no_grad

        prompt = np.asarray(prompt, dtype=np.int64).reshape(-1)
        with no_grad():
            if beam_size <= 1:
                seq = prompt.copy()
                for _ in range(max_new_tokens):
                    window = seq[-self.max_seq_len :]
                    logits = self.forward(window[None, :]).data[0, -1]
                    seq = np.append(seq, int(np.argmax(logits)))
                return seq
            # beam search
            beams = [(prompt.copy(), 0.0)]
            for _ in range(max_new_tokens):
                candidates = []
                for seq, score in beams:
                    window = seq[-self.max_seq_len :]
                    logits = self.forward(window[None, :]).data[0, -1]
                    logp = logits - np.log(np.sum(np.exp(logits - logits.max()))) - logits.max()
                    top = np.argsort(logp)[-beam_size:]
                    for token in top:
                        candidates.append((np.append(seq, int(token)), score + float(logp[token])))
                candidates.sort(key=lambda item: item[1], reverse=True)
                beams = candidates[:beam_size]
            return beams[0][0]


class ViTStyleClassifier(nn.Module):
    """Vision transformer: patch embedding + encoder layers + mean-pool classifier."""

    def __init__(
        self,
        num_classes: int = 8,
        image_size: int = 16,
        patch_size: int = 4,
        in_channels: int = 3,
        embed_dim: int = 32,
        num_heads: int = 4,
        num_layers: int = 2,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        if image_size % patch_size:
            raise ValueError("image_size must be divisible by patch_size")
        self.patch_size = patch_size
        num_patches = (image_size // patch_size) ** 2
        self.patch_embed = nn.Conv2d(in_channels, embed_dim, patch_size, stride=patch_size, rng=rng)
        self.position_embedding = nn.Embedding(num_patches, embed_dim, rng=rng)
        self.embed_add = nn.Add()
        self.layers = nn.ModuleList(
            [TransformerEncoderLayer(embed_dim, num_heads, rng=rng) for _ in range(num_layers)]
        )
        self.final_ln = nn.LayerNorm(embed_dim)
        self.classifier = nn.Linear(embed_dim, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        patches = self.patch_embed(x)
        n, d, h, w = patches.shape
        seq = patches.reshape(n, d, h * w).transpose(0, 2, 1)
        positions = np.broadcast_to(np.arange(h * w), (n, h * w))
        seq = self.embed_add(seq, self.position_embedding(positions))
        for layer in self.layers:
            seq = layer(seq)
        pooled = self.final_ln(seq).mean(axis=1)
        return self.classifier(pooled)
