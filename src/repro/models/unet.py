"""Tiny U-Net for binary image segmentation (Carvana / U-Net stand-in)."""

from __future__ import annotations

import repro.nn as nn
from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.utils.seeding import RngLike, seeded_rng

__all__ = ["TinyUNet"]


class DoubleConv(nn.Module):
    """Two conv-BN-ReLU layers, the basic U-Net building block."""

    def __init__(self, cin: int, cout: int, rng: RngLike = None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.block = nn.Sequential(
            nn.Conv2d(cin, cout, 3, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(cout),
            nn.ReLU(),
            nn.Conv2d(cout, cout, 3, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(cout),
            nn.ReLU(),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.block(x)


class TinyUNet(nn.Module):
    """A two-level encoder/decoder U-Net with skip connections.

    Output is per-pixel class logits of shape (N, num_classes, H, W).
    """

    def __init__(
        self,
        in_channels: int = 3,
        num_classes: int = 2,
        base_width: int = 12,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        w = base_width
        self.enc1 = DoubleConv(in_channels, w, rng=rng)
        self.down1 = nn.MaxPool2d(2)
        self.enc2 = DoubleConv(w, w * 2, rng=rng)
        self.down2 = nn.MaxPool2d(2)
        self.bottleneck = DoubleConv(w * 2, w * 4, rng=rng)
        self.up2_conv = nn.Conv2d(w * 4, w * 2, 1, rng=rng)
        self.dec2 = DoubleConv(w * 4, w * 2, rng=rng)
        self.up1_conv = nn.Conv2d(w * 2, w, 1, rng=rng)
        self.dec1 = DoubleConv(w * 2, w, rng=rng)
        self.head = nn.Conv2d(w, num_classes, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        e1 = self.enc1(x)
        e2 = self.enc2(self.down1(e1))
        b = self.bottleneck(self.down2(e2))
        u2 = self.up2_conv(F.upsample_nearest2d(b, 2))
        d2 = self.dec2(Tensor.concatenate([u2, e2], axis=1))
        u1 = self.up1_conv(F.upsample_nearest2d(d2, 2))
        d1 = self.dec1(Tensor.concatenate([u1, e1], axis=1))
        return self.head(d1)
