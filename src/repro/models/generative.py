"""Tiny iterative denoiser — the Stable Diffusion stand-in for generation-quality experiments.

The paper evaluates Stable Diffusion under quantization with FID.  We replace it
with the smallest system that exercises the same code path: a convolutional
denoiser trained to remove Gaussian noise from the synthetic image distribution,
used as a few-step iterative sampler starting from pure noise.  Quantization
error in the denoiser compounds across sampling steps, so format quality shows
up in the Fréchet-style distance between generated and reference image feature
statistics (see :mod:`repro.evaluation.fid`), mirroring the paper's Figure 6.
"""

from __future__ import annotations

import numpy as np

import repro.nn as nn
from repro.autograd.tensor import Tensor, no_grad
from repro.utils.seeding import RngLike, seeded_rng

__all__ = ["TinyDenoiser"]


class TinyDenoiser(nn.Module):
    """A small conv encoder/decoder that predicts the clean image from a noisy input."""

    def __init__(self, in_channels: int = 3, width: int = 16, rng: RngLike = None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.net = nn.Sequential(
            nn.Conv2d(in_channels, width, 3, padding=1, rng=rng),
            nn.GroupNorm(4, width),
            nn.SiLU(),
            nn.Conv2d(width, width, 3, padding=1, rng=rng),
            nn.GroupNorm(4, width),
            nn.SiLU(),
            nn.Conv2d(width, width, 3, padding=1, rng=rng),
            nn.SiLU(),
            nn.Conv2d(width, in_channels, 3, padding=1, rng=rng),
        )

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x, dtype=np.float32))
        return self.net(x)

    def sample(
        self,
        n_samples: int,
        image_shape: tuple = (3, 16, 16),
        num_steps: int = 4,
        rng: RngLike = None,
    ) -> np.ndarray:
        """Generate images by iteratively denoising from Gaussian noise.

        Each step replaces the current estimate with a convex combination of
        the model's denoised prediction and the current estimate (a crude but
        deterministic DDIM-like update), so errors introduced by quantization
        accumulate across steps exactly as they would in a diffusion sampler.
        """
        rng = seeded_rng(rng)
        x = rng.standard_normal((n_samples, *image_shape)).astype(np.float32)
        with no_grad():
            for step in range(num_steps):
                weight = (step + 1) / num_steps
                pred = self.forward(x).data
                x = (1.0 - weight) * x + weight * pred
        return x
