"""Activation-outlier injection for NLP models.

Large language models exhibit a small number of hidden channels whose
activation magnitudes are 10-100x larger than the rest; the paper (and the
outlier-suppression / SmoothQuant literature it cites) attributes this to
LayerNorm amplification and shows it is the main reason INT8 per-tensor
activation quantization fails on NLP workloads.

Pretrained LLMs are not available offline, so we *graft* the phenomenon onto
our trained transformer stand-ins with a mathematically neutral rescaling:

* pick ``k`` channels of a pre-FFN LayerNorm (``ln2``),
* multiply that LayerNorm's affine weight and bias by ``alpha`` on those
  channels (its output now has outlier channels),
* divide the consuming Linear's (``fc1``) input columns by ``alpha``.

In exact arithmetic the model function is unchanged, so the FP32 baseline is
untouched — but any per-tensor activation quantizer now has to cover a range
``alpha`` times wider, which is precisely the stress the paper studies.
SmoothQuant (:mod:`repro.quantization.smoothquant`) performs the inverse
transformation, which is why it recovers INT8 accuracy on these models.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.norm import LayerNorm
from repro.utils.seeding import RngLike, seeded_rng

__all__ = ["inject_nlp_outliers", "find_outlier_channels"]


def inject_nlp_outliers(
    model: Module,
    alpha: float = 24.0,
    num_channels: int = 2,
    layer_filter: str = "ln2",
    rng: RngLike = None,
) -> Dict[str, List[int]]:
    """Inject neutral activation outliers into every (LayerNorm -> Linear) pair.

    Parameters
    ----------
    model:
        A transformer-style model containing ``TransformerEncoderLayer`` blocks
        (attribute names ``ln2`` / ``fc1`` are used to find the pairs).
    alpha:
        Outlier amplification factor (papers report 20-100x for real LLMs).
    num_channels:
        How many channels per layer become outliers.
    layer_filter:
        Substring a LayerNorm's attribute name must contain to be selected.
    rng:
        Randomness for channel selection.

    Returns
    -------
    dict
        Mapping of module path -> list of outlier channel indices, useful for
        assertions in tests and for the distribution analysis benchmark.
    """
    rng = seeded_rng(rng)
    injected: Dict[str, List[int]] = {}
    for name, module in model.named_modules():
        if not name.endswith(layer_filter) or not isinstance(module, LayerNorm):
            continue
        parent_path = name.rsplit(".", 1)[0] if "." in name else ""
        parent = model.get_submodule(parent_path)
        linear: Optional[Linear] = getattr(parent, "fc1", None)
        if not isinstance(linear, Linear):
            continue
        dim = module.weight.shape[0]
        channels = rng.choice(dim, size=min(num_channels, dim), replace=False)
        for channel in channels:
            module.weight.data[channel] *= alpha
            module.bias.data[channel] *= alpha
            linear.weight.data[:, channel] /= alpha
        injected[name] = [int(c) for c in channels]
    return injected


def find_outlier_channels(activations: np.ndarray, threshold_sigma: float = 6.0) -> np.ndarray:
    """Return channel indices whose max |activation| exceeds ``threshold_sigma`` * median channel max.

    ``activations`` is any array whose last axis is the channel/hidden axis.
    """
    flat = np.abs(np.asarray(activations)).reshape(-1, activations.shape[-1])
    channel_max = flat.max(axis=0)
    reference = np.median(channel_max) + 1e-12
    return np.nonzero(channel_max > threshold_sigma * reference)[0]
