"""Audio / speech model (wav2vec 2.0 / HuBERT stand-in).

A lightweight frame-feature encoder followed by transformer layers and a
sequence-level classifier; inputs are (batch, time, features) float arrays
produced by :func:`repro.data.synthetic.make_sequence_regression`.
"""

from __future__ import annotations

import numpy as np

import repro.nn as nn
from repro.autograd.tensor import Tensor
from repro.models.transformer import TransformerEncoderLayer
from repro.utils.seeding import RngLike, seeded_rng

__all__ = ["Wav2VecStyleClassifier"]


class Wav2VecStyleClassifier(nn.Module):
    """Frame projection + transformer encoder + mean-pool classification head."""

    def __init__(
        self,
        n_features: int = 16,
        num_classes: int = 6,
        embed_dim: int = 32,
        num_heads: int = 4,
        num_layers: int = 2,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.feature_proj = nn.Linear(n_features, embed_dim, rng=rng)
        self.feature_ln = nn.LayerNorm(embed_dim)
        self.layers = nn.ModuleList(
            [TransformerEncoderLayer(embed_dim, num_heads, rng=rng) for _ in range(num_layers)]
        )
        self.final_ln = nn.LayerNorm(embed_dim)
        self.classifier = nn.Linear(embed_dim, num_classes, rng=rng)

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(np.asarray(x, dtype=np.float32))
        h = self.feature_ln(self.feature_proj(x))
        for layer in self.layers:
            h = layer(h)
        pooled = self.final_ln(h).mean(axis=1)
        return self.classifier(pooled)
