"""Convolutional model family (ImageNet-style classifiers, scaled to 16x16 inputs).

Each class mirrors the characteristic structure of a well-known architecture
family evaluated in the paper:

* :class:`TinyVGG` — plain conv/ReLU/pool stacks (VGG-13 without BatchNorm).
* :class:`TinyResNet` — residual BasicBlocks with BatchNorm and explicit
  residual :class:`~repro.nn.elementwise.Add` modules (ResNet-18/50 stand-in).
* :class:`TinyDenseNet` — dense blocks with feature concatenation; its
  BatchNorms cannot be folded into a preceding convolution, which is exactly
  why the paper's extended scheme needs BatchNorm quantization support.
* :class:`TinyMobileNet` — depthwise-separable convolutions (MobileNetV2/V3).
* :class:`TinyShuffleNet` — grouped convolutions + channel shuffle.
* :class:`TinyEfficientNet` — MBConv blocks with SiLU and squeeze-excitation,
  the family the paper calls out as difficult for INT8.
* :class:`TinyInception` — parallel multi-branch blocks (GoogleNet).
"""

from __future__ import annotations

from typing import List, Sequence

import repro.nn as nn
from repro.autograd.tensor import Tensor
from repro.utils.seeding import RngLike, seeded_rng

__all__ = [
    "TinyVGG",
    "TinyResNet",
    "TinyDenseNet",
    "TinyMobileNet",
    "TinyShuffleNet",
    "TinyEfficientNet",
    "TinyInception",
]


def _conv_bn_relu(cin: int, cout: int, k: int, stride: int, rng, groups: int = 1) -> nn.Sequential:
    return nn.Sequential(
        nn.Conv2d(cin, cout, k, stride=stride, padding=k // 2, groups=groups, bias=False, rng=rng),
        nn.BatchNorm2d(cout),
        nn.ReLU(),
    )


class TinyVGG(nn.Module):
    """VGG-style plain convolutional classifier (optionally with BatchNorm)."""

    def __init__(
        self,
        num_classes: int = 8,
        in_channels: int = 3,
        widths: Sequence[int] = (16, 32, 64),
        batch_norm: bool = False,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        layers: List[nn.Module] = []
        cin = in_channels
        for width in widths:
            layers.append(nn.Conv2d(cin, width, 3, padding=1, rng=rng))
            if batch_norm:
                layers.append(nn.BatchNorm2d(width))
            layers.append(nn.ReLU())
            layers.append(nn.Conv2d(width, width, 3, padding=1, rng=rng))
            if batch_norm:
                layers.append(nn.BatchNorm2d(width))
            layers.append(nn.ReLU())
            layers.append(nn.MaxPool2d(2))
            cin = width
        self.features = nn.Sequential(*layers)
        self.pool = nn.AdaptiveAvgPool2d(1)
        self.flatten = nn.Flatten()
        self.classifier = nn.Linear(cin, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.features(x)
        x = self.flatten(self.pool(x))
        return self.classifier(x)


class BasicBlock(nn.Module):
    """ResNet basic block: two 3x3 convs with BatchNorm and a residual Add."""

    def __init__(self, cin: int, cout: int, stride: int = 1, rng: RngLike = None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.conv1 = nn.Conv2d(cin, cout, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(cout)
        self.relu1 = nn.ReLU()
        self.conv2 = nn.Conv2d(cout, cout, 3, padding=1, bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(cout)
        self.relu2 = nn.ReLU()
        self.residual_add = nn.Add()
        if stride != 1 or cin != cout:
            self.downsample = nn.Sequential(
                nn.Conv2d(cin, cout, 1, stride=stride, bias=False, rng=rng),
                nn.BatchNorm2d(cout),
            )
        else:
            self.downsample = nn.Identity()

    def forward(self, x: Tensor) -> Tensor:
        identity = self.downsample(x)
        out = self.relu1(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return self.relu2(self.residual_add(out, identity))


class TinyResNet(nn.Module):
    """ResNet-style classifier with a configurable number of stages/blocks."""

    def __init__(
        self,
        num_classes: int = 8,
        in_channels: int = 3,
        widths: Sequence[int] = (16, 32, 64),
        blocks_per_stage: int = 1,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.stem = _conv_bn_relu(in_channels, widths[0], 3, 1, rng)
        stages: List[nn.Module] = []
        cin = widths[0]
        for stage_idx, width in enumerate(widths):
            for block_idx in range(blocks_per_stage):
                stride = 2 if (stage_idx > 0 and block_idx == 0) else 1
                stages.append(BasicBlock(cin, width, stride=stride, rng=rng))
                cin = width
        self.stages = nn.Sequential(*stages)
        self.pool = nn.AdaptiveAvgPool2d(1)
        self.flatten = nn.Flatten()
        self.fc = nn.Linear(cin, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem(x)
        x = self.stages(x)
        return self.fc(self.flatten(self.pool(x)))


class DenseBlockLayer(nn.Module):
    """One DenseNet layer: BN -> ReLU -> Conv, output concatenated with the input."""

    def __init__(self, cin: int, growth: int, rng: RngLike = None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.bn = nn.BatchNorm2d(cin)
        self.relu = nn.ReLU()
        self.conv = nn.Conv2d(cin, growth, 3, padding=1, bias=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        new = self.conv(self.relu(self.bn(x)))
        return Tensor.concatenate([x, new], axis=1)


class TinyDenseNet(nn.Module):
    """DenseNet-style classifier; BatchNorm layers are *not* foldable into convs."""

    def __init__(
        self,
        num_classes: int = 8,
        in_channels: int = 3,
        growth: int = 8,
        layers_per_block: int = 3,
        num_blocks: int = 2,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        width = 2 * growth
        self.stem = nn.Conv2d(in_channels, width, 3, padding=1, rng=rng)
        blocks: List[nn.Module] = []
        for b in range(num_blocks):
            for _ in range(layers_per_block):
                blocks.append(DenseBlockLayer(width, growth, rng=rng))
                width += growth
            if b != num_blocks - 1:
                blocks.append(_conv_bn_relu(width, width // 2, 1, 1, rng))
                width //= 2
                blocks.append(nn.AvgPool2d(2))
        self.blocks = nn.Sequential(*blocks)
        self.final_bn = nn.BatchNorm2d(width)
        self.relu = nn.ReLU()
        self.pool = nn.AdaptiveAvgPool2d(1)
        self.flatten = nn.Flatten()
        self.classifier = nn.Linear(width, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem(x)
        x = self.blocks(x)
        x = self.relu(self.final_bn(x))
        return self.classifier(self.flatten(self.pool(x)))


class DepthwiseSeparable(nn.Module):
    """Depthwise 3x3 + pointwise 1x1 convolution block (MobileNet building block)."""

    def __init__(self, cin: int, cout: int, stride: int = 1, rng: RngLike = None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.depthwise = _conv_bn_relu(cin, cin, 3, stride, rng, groups=cin)
        self.pointwise = _conv_bn_relu(cin, cout, 1, 1, rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.pointwise(self.depthwise(x))


class TinyMobileNet(nn.Module):
    """MobileNet-style classifier built from depthwise-separable convolutions."""

    def __init__(
        self,
        num_classes: int = 8,
        in_channels: int = 3,
        widths: Sequence[int] = (16, 32, 64),
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.stem = _conv_bn_relu(in_channels, widths[0], 3, 1, rng)
        blocks: List[nn.Module] = []
        cin = widths[0]
        for width in widths:
            blocks.append(
                DepthwiseSeparable(cin, width, stride=1 if width == widths[0] else 2, rng=rng)
            )
            cin = width
        self.blocks = nn.Sequential(*blocks)
        self.pool = nn.AdaptiveAvgPool2d(1)
        self.flatten = nn.Flatten()
        self.classifier = nn.Linear(cin, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem(x)
        x = self.blocks(x)
        return self.classifier(self.flatten(self.pool(x)))


class ChannelShuffle(nn.Module):
    """Shuffle channels across groups (ShuffleNet)."""

    def __init__(self, groups: int) -> None:
        super().__init__()
        self.groups = groups

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        g = self.groups
        return x.reshape(n, g, c // g, h, w).transpose(0, 2, 1, 3, 4).reshape(n, c, h, w)


class TinyShuffleNet(nn.Module):
    """ShuffleNet-style classifier with grouped 1x1 convolutions and channel shuffles."""

    def __init__(
        self,
        num_classes: int = 8,
        in_channels: int = 3,
        width: int = 32,
        groups: int = 4,
        num_blocks: int = 3,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.stem = _conv_bn_relu(in_channels, width, 3, 1, rng)
        blocks: List[nn.Module] = []
        for i in range(num_blocks):
            blocks.append(_conv_bn_relu(width, width, 1, 1, rng, groups=groups))
            blocks.append(ChannelShuffle(groups))
            blocks.append(
                _conv_bn_relu(width, width, 3, 2 if i == num_blocks - 1 else 1, rng, groups=width)
            )
            blocks.append(_conv_bn_relu(width, width, 1, 1, rng, groups=groups))
        self.blocks = nn.Sequential(*blocks)
        self.pool = nn.AdaptiveAvgPool2d(1)
        self.flatten = nn.Flatten()
        self.classifier = nn.Linear(width, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem(x)
        x = self.blocks(x)
        return self.classifier(self.flatten(self.pool(x)))


class SqueezeExcite(nn.Module):
    """Squeeze-and-excitation gate with a multiplicative (quantizable) Mul."""

    def __init__(self, channels: int, reduction: int = 4, rng: RngLike = None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        hidden = max(channels // reduction, 4)
        self.pool = nn.AdaptiveAvgPool2d(1)
        self.fc1 = nn.Conv2d(channels, hidden, 1, rng=rng)
        self.act = nn.SiLU()
        self.fc2 = nn.Conv2d(hidden, channels, 1, rng=rng)
        self.gate = nn.Sigmoid()
        self.scale_mul = nn.Mul()

    def forward(self, x: Tensor) -> Tensor:
        s = self.gate(self.fc2(self.act(self.fc1(self.pool(x)))))
        return self.scale_mul(x, s)


class MBConv(nn.Module):
    """EfficientNet MBConv block: expand -> depthwise -> SE -> project (+ residual)."""

    def __init__(
        self, cin: int, cout: int, expand: int = 2, stride: int = 1, rng: RngLike = None
    ) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        hidden = cin * expand
        self.expand_conv = nn.Sequential(
            nn.Conv2d(cin, hidden, 1, bias=False, rng=rng), nn.BatchNorm2d(hidden), nn.SiLU()
        )
        self.depthwise = nn.Sequential(
            nn.Conv2d(
                hidden, hidden, 3, stride=stride, padding=1, groups=hidden, bias=False, rng=rng
            ),
            nn.BatchNorm2d(hidden),
            nn.SiLU(),
        )
        self.se = SqueezeExcite(hidden, rng=rng)
        self.project = nn.Sequential(
            nn.Conv2d(hidden, cout, 1, bias=False, rng=rng), nn.BatchNorm2d(cout)
        )
        self.use_residual = stride == 1 and cin == cout
        self.residual_add = nn.Add()

    def forward(self, x: Tensor) -> Tensor:
        out = self.project(self.se(self.depthwise(self.expand_conv(x))))
        if self.use_residual:
            out = self.residual_add(out, x)
        return out


class TinyEfficientNet(nn.Module):
    """EfficientNet-style classifier (SiLU activations + squeeze-excitation)."""

    def __init__(
        self,
        num_classes: int = 8,
        in_channels: int = 3,
        widths: Sequence[int] = (16, 24, 40),
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.stem = nn.Sequential(
            nn.Conv2d(in_channels, widths[0], 3, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(widths[0]),
            nn.SiLU(),
        )
        blocks: List[nn.Module] = []
        cin = widths[0]
        for i, width in enumerate(widths):
            blocks.append(MBConv(cin, width, stride=2 if i > 0 else 1, rng=rng))
            blocks.append(MBConv(width, width, stride=1, rng=rng))
            cin = width
        self.blocks = nn.Sequential(*blocks)
        self.head = nn.Sequential(
            nn.Conv2d(cin, cin * 2, 1, bias=False, rng=rng), nn.BatchNorm2d(cin * 2), nn.SiLU()
        )
        self.pool = nn.AdaptiveAvgPool2d(1)
        self.flatten = nn.Flatten()
        self.classifier = nn.Linear(cin * 2, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.head(self.blocks(self.stem(x)))
        return self.classifier(self.flatten(self.pool(x)))


class InceptionBlock(nn.Module):
    """Parallel 1x1 / 3x3 / 5x5 / pool branches concatenated along channels."""

    def __init__(self, cin: int, branch_width: int, rng: RngLike = None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.branch1 = _conv_bn_relu(cin, branch_width, 1, 1, rng)
        self.branch3 = nn.Sequential(
            _conv_bn_relu(cin, branch_width, 1, 1, rng), _conv_bn_relu(
                branch_width, branch_width, 3, 1, rng
            )
        )
        self.branch5 = nn.Sequential(
            _conv_bn_relu(cin, branch_width, 1, 1, rng), _conv_bn_relu(
                branch_width, branch_width, 5, 1, rng
            )
        )
        self.branch_pool = nn.Sequential(
            nn.AvgPool2d(3, stride=1), _conv_bn_relu(cin, branch_width, 1, 1, rng)
        )

    def forward(self, x: Tensor) -> Tensor:
        pooled_in = x.pad2d((1, 1))
        branches = [
            self.branch1(x),
            self.branch3(x),
            self.branch5(x),
            self.branch_pool(pooled_in),
        ]
        return Tensor.concatenate(branches, axis=1)


class TinyInception(nn.Module):
    """GoogleNet-style classifier built from Inception blocks."""

    def __init__(
        self,
        num_classes: int = 8,
        in_channels: int = 3,
        branch_width: int = 8,
        num_blocks: int = 2,
        rng: RngLike = None,
    ) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.stem = _conv_bn_relu(in_channels, 4 * branch_width, 3, 1, rng)
        blocks: List[nn.Module] = []
        cin = 4 * branch_width
        for _ in range(num_blocks):
            blocks.append(InceptionBlock(cin, branch_width, rng=rng))
            cin = 4 * branch_width
            blocks.append(nn.MaxPool2d(2))
        self.blocks = nn.Sequential(*blocks)
        self.pool = nn.AdaptiveAvgPool2d(1)
        self.flatten = nn.Flatten()
        self.classifier = nn.Linear(cin, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem(x)
        x = self.blocks(x)
        return self.classifier(self.flatten(self.pool(x)))
