"""repro — reproduction of "Efficient Post-training Quantization with FP8 Formats" (MLSys 2024).

The package is organised as:

``repro.fp8``
    Bit-exact emulation of the E5M2/E4M3/E3M4 FP8 formats and the INT8 baseline.
``repro.autograd`` / ``repro.nn`` / ``repro.optim``
    A pure-numpy neural network substrate (tensors, layers, optimizers).
``repro.data`` / ``repro.models`` / ``repro.training``
    Synthetic datasets and a trained-from-scratch model zoo that stands in for
    the paper's 75 pretrained architectures.
``repro.quantization``
    The paper's contribution: the post-training quantization workflow
    (standard & extended schemes, calibration, BatchNorm calibration,
    SmoothQuant, mixed FP8 formats, dynamic quantization, auto-tuning).
``repro.evaluation``
    The experiment harness that regenerates every table and figure.
``repro.serialization``
    Packed single-file checkpoints: save/load converted models without ever
    materialising float32 weights, for restore-free deployment serving —
    including zero-copy mmap loads where codes are paged in on first touch.
``repro.serving``
    The throughput layer: a batched request engine over one served model and
    double-buffered block prefetch for the streaming weight path.
"""

from repro import fp8
from repro.fp8 import E3M4, E4M3, E5M2, get_format

__version__ = "0.1.0"

__all__ = ["fp8", "E5M2", "E4M3", "E3M4", "get_format", "__version__"]
