"""On-disk + in-process cache of trained zoo models.

Training the whole zoo takes a few minutes; tests, benchmarks and examples all
need the same FP32 baselines, so trained ``state_dict`` snapshots are stored
under a cache directory (``REPRO_ZOO_CACHE`` env var, defaulting to
``~/.cache/repro-zoo``) keyed by spec name and a version tag that changes when
the training recipe changes.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.nn.module import Module
from repro.utils.logging import get_logger

__all__ = ["ZooCache", "default_cache"]

logger = get_logger("training.cache")

_CACHE_VERSION = "v1"


class ZooCache:
    """Two-level (memory + disk) cache for trained models and their metrics."""

    def __init__(self, cache_dir: Optional[str] = None) -> None:
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_ZOO_CACHE", str(Path.home() / ".cache" / "repro-zoo"))
        self.cache_dir = Path(cache_dir)
        self._memory: Dict[str, Tuple[Dict[str, np.ndarray], float]] = {}

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.{_CACHE_VERSION}.npz"

    def load(self, key: str) -> Optional[Tuple[Dict[str, np.ndarray], float]]:
        """Return (state_dict, fp32_metric) if cached, else None."""
        if key in self._memory:
            return self._memory[key]
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                metric = float(data["__metric__"])
                state = {k: data[k] for k in data.files if k != "__metric__"}
        except (OSError, ValueError, KeyError) as exc:  # corrupted cache entry
            logger.warning("discarding unreadable cache entry %s (%s)", path, exc)
            return None
        self._memory[key] = (state, metric)
        return state, metric

    def store(self, key: str, state: Dict[str, np.ndarray], metric: float) -> None:
        self._memory[key] = (state, metric)
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            np.savez(self._path(key), __metric__=np.asarray(metric), **state)
        except OSError as exc:  # read-only filesystem etc. — memory cache still works
            logger.warning("could not persist cache entry %s (%s)", key, exc)

    def get_or_train(
        self,
        key: str,
        model: Module,
        train_fn: Callable[[Module], float],
    ) -> float:
        """Load weights into ``model`` if cached; otherwise call ``train_fn`` and cache.

        ``train_fn`` trains the model in place and returns its FP32 eval metric.
        Returns the FP32 metric in either case.
        """
        cached = self.load(key)
        if cached is not None:
            state, metric = cached
            model.load_state_dict(state)
            model.eval()
            return metric
        metric = train_fn(model)
        self.store(key, model.state_dict(), metric)
        return metric

    def clear_memory(self) -> None:
        self._memory.clear()


_default: Optional[ZooCache] = None


def default_cache() -> ZooCache:
    """Process-wide shared cache instance."""
    global _default
    if _default is None:
        _default = ZooCache()
    return _default
