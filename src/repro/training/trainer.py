"""Generic training / evaluation loops for the model zoo.

The zoo exists so that quantization experiments run against models whose
weights and activations have *learned* structure (normally distributed weights,
long-tailed activations, meaningful decision boundaries) instead of random
initialisations.  Training is intentionally short — a few epochs on a small
synthetic dataset — and fully deterministic given the spec's seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.data.synthetic import ArrayDataset, DataLoader
from repro.nn.module import Module
from repro.optim import SGD, Adam
from repro.utils.logging import get_logger
from repro.utils.seeding import seeded_rng

__all__ = ["TrainConfig", "train_model", "evaluate_model"]

logger = get_logger("training")


@dataclass
class TrainConfig:
    """Hyper-parameters for zoo training runs."""

    epochs: int = 4
    batch_size: int = 32
    lr: float = 1e-2
    optimizer: str = "adam"
    weight_decay: float = 0.0
    grad_clip: Optional[float] = 5.0
    shuffle: bool = True
    seed: int = 0
    log_every: int = 0  # 0 disables progress logging


def _clip_gradients(model: Module, max_norm: float) -> None:
    total = 0.0
    params = [p for p in model.parameters() if p.grad is not None]
    for p in params:
        total += float(np.sum(p.grad.astype(np.float64) ** 2))
    norm = np.sqrt(total)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            p.grad *= scale


def train_model(
    model: Module,
    dataset: ArrayDataset,
    loss_fn: Callable[[Tensor, np.ndarray], Tensor],
    config: TrainConfig,
    prepare_inputs: Callable[[np.ndarray], object] = lambda x: x,
) -> List[float]:
    """Train ``model`` in place; returns the per-epoch mean training loss."""
    rng = seeded_rng(config.seed)
    if config.optimizer == "adam":
        optimizer = Adam(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)
    elif config.optimizer == "sgd":
        optimizer = SGD(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)
    else:
        raise ValueError(f"unknown optimizer {config.optimizer!r}")

    loader = DataLoader(dataset, batch_size=config.batch_size, shuffle=config.shuffle, rng=rng)
    model.train()
    epoch_losses: List[float] = []
    for epoch in range(config.epochs):
        losses = []
        for step, (inputs, targets) in enumerate(loader):
            optimizer.zero_grad()
            outputs = model(prepare_inputs(inputs))
            loss = loss_fn(outputs, targets)
            loss.backward()
            if config.grad_clip:
                _clip_gradients(model, config.grad_clip)
            optimizer.step()
            losses.append(float(loss.data))
            if config.log_every and step % config.log_every == 0:
                logger.info("epoch %d step %d loss %.4f", epoch, step, losses[-1])
        epoch_losses.append(float(np.mean(losses)))
    model.eval()
    return epoch_losses


def evaluate_model(
    model: Module,
    dataset: ArrayDataset,
    metric_fn: Callable[[np.ndarray, np.ndarray], float],
    batch_size: int = 64,
    prepare_inputs: Callable[[np.ndarray], object] = lambda x: x,
) -> float:
    """Run the model over ``dataset`` without gradients and apply ``metric_fn``."""
    model.eval()
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    outputs: List[np.ndarray] = []
    targets: List[np.ndarray] = []
    with no_grad():
        for inputs, batch_targets in loader:
            out = model(prepare_inputs(inputs))
            outputs.append(out.data if isinstance(out, Tensor) else np.asarray(out))
            targets.append(batch_targets)
    return float(metric_fn(np.concatenate(outputs), np.concatenate(targets)))
