"""Training substrate used to produce the "pretrained" synthetic model zoo."""

from repro.training.trainer import TrainConfig, train_model, evaluate_model
from repro.training.cache import ZooCache, default_cache

__all__ = ["TrainConfig", "train_model", "evaluate_model", "ZooCache", "default_cache"]
