"""Per-model plan cache: trace on first sight, replay thereafter, eager on doubt.

:func:`install_plan_cache` attaches a :class:`PlanCache` to a model root.
``Module.__call__`` then offers every top-level forward to
:meth:`PlanCache.dispatch`:

* **cache hit** — the stored plan replays with zero module dispatch and the
  (bit-identical) result is returned directly;
* **first sight** — the forward runs once under the tracer (so the call still
  produces its real result), the graph is fused and compiled, and the plan is
  stored after a verification replay reproduces the traced output exactly;
* **eager** — keys whose trace aborted are pinned to a sentinel so later
  forwards skip straight to the eager path, which remains the bit-exactness
  oracle at all times.

Cache keys and invalidation
---------------------------
The key is the per-argument tuple ``(Tensor-or-ndarray, compat_key, exact
shape)`` using the serving scheduler's :func:`~repro.serving.scheduler.compat_key`
— the same key the continuous scheduler groups batches by, which is what lets
engine workers look plans up for scheduler-formed groups.  Serving mode,
quantization state and parameter loads are covered by the global *state
epoch* (any bump clears the cache), and forward-hook changes by the *hook
epoch* (a bump drops plans that traced through a now-hooked module, and drops
eager sentinels so hook removal can re-enable tracing).  Both epochs live in
:mod:`repro.nn.module` and are bumped by the mutating operations themselves.

Dispatch never replays for training-mode models, under ``is_grad_enabled()``,
for keyword arguments, or for non-array inputs — those forwards take the
eager path with all semantics (tape, hooks) intact.  Lookup is thread-safe;
replay runs outside the lock on per-thread buffers, so concurrent engine
workers replay the same plan in parallel.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor, is_grad_enabled, no_grad
from repro.graph.fuse import fuse_graph
from repro.graph.ir import TraceAborted
from repro.graph.plan import compile_plan
from repro.graph.tracer import trace
from repro.nn.module import (
    Module,
    hook_epoch,
    plan_dispatch_suspended,
    state_epoch,
    suspend_plan_dispatch,
)
from repro.serving.scheduler import compat_key

__all__ = ["PlanCache", "install_plan_cache", "remove_plan_cache", "plan_cache_of"]

#: sentinel marking a key whose trace aborted: serve it eagerly, don't re-trace
_EAGER = object()


class PlanCache:
    """Compiled plans for one model root, keyed by input signature."""

    def __init__(self, max_plans: int = 32) -> None:
        self.max_plans = int(max_plans)
        self._plans: "OrderedDict" = OrderedDict()
        self._lock = threading.RLock()
        self._state_epoch = state_epoch()
        self._hook_epoch = hook_epoch()
        # counters (reported via stats())
        self._hits = 0
        self._misses = 0
        self._compiles = 0
        self._trace_aborts = 0
        self._verify_failures = 0
        self._eager_hits = 0
        self._bypass = 0
        self._state_invalidations = 0
        self._hook_invalidations = 0

    # ------------------------------------------------------------------
    def key_for(self, args: tuple) -> Optional[Tuple]:
        """The cache key for a positional argument tuple, or None if unkeyable."""
        key = []
        for arg in args:
            if isinstance(arg, Tensor):
                data, tag = arg.data, "T"
            elif isinstance(arg, np.ndarray):
                data, tag = arg, "A"
            else:
                return None
            key.append((tag, compat_key(data), data.shape))
        return tuple(key)

    def dispatch(self, model: Module, args: tuple, kwargs: dict):
        """Offer a forward to the cache; returns ``(replayed, output)``."""
        if kwargs or model.training or is_grad_enabled() or plan_dispatch_suspended():
            self._bypass += 1
            return False, None
        key = self.key_for(args)
        if key is None:
            self._bypass += 1
            return False, None
        with self._lock:
            self._revalidate_locked()
            entry = self._plans.get(key)
            if entry is not None:
                self._plans.move_to_end(key)
            if entry is _EAGER:
                self._eager_hits += 1
                return False, None
            if entry is not None:
                self._hits += 1
        if entry is None:
            return self._compile(model, key, args)
        return True, entry.replay(args)

    # ------------------------------------------------------------------
    def _compile(self, model: Module, key: Tuple, args: tuple):
        self._misses += 1
        with suspend_plan_dispatch():
            try:
                with no_grad():
                    result = trace(model, args)
            except TraceAborted:
                self._trace_aborts += 1
                self._store(key, _EAGER)
                return False, None
            graph = fuse_graph(result.graph)
            plan = compile_plan(graph, output_wrapped=isinstance(result.output, Tensor))
            try:
                replayed = plan.replay(args)
                verified = _outputs_match(result.output, replayed)
            except Exception:
                verified = False
            if verified:
                self._compiles += 1
                self._store(key, plan)
            else:
                self._verify_failures += 1
                self._store(key, _EAGER)
        # the trace executed the forward for real; its output IS the eager result
        return True, result.output

    def _store(self, key: Tuple, entry) -> None:
        with self._lock:
            if state_epoch() != self._state_epoch or hook_epoch() != self._hook_epoch:
                return  # the model mutated while we compiled; drop the stale plan
            self._plans[key] = entry
            self._plans.move_to_end(key)
            while len(self._plans) > self.max_plans:
                self._plans.popitem(last=False)

    def _revalidate_locked(self) -> None:
        epoch = state_epoch()
        if epoch != self._state_epoch:
            if self._plans:
                self._state_invalidations += 1
            self._plans.clear()
            self._state_epoch = epoch
            self._hook_epoch = hook_epoch()
            return
        epoch = hook_epoch()
        if epoch != self._hook_epoch:
            for key in list(self._plans):
                entry = self._plans[key]
                # eager sentinels drop too: removing a hook can re-enable tracing
                if entry is _EAGER or any(m._forward_hooks for m in entry.graph.modules):
                    del self._plans[key]
            self._hook_epoch = epoch
            self._hook_invalidations += 1

    # ------------------------------------------------------------------
    def clear(self) -> None:
        with self._lock:
            self._plans.clear()

    def stats(self) -> dict:
        with self._lock:
            plans = sum(1 for entry in self._plans.values() if entry is not _EAGER)
            return {
                "plans": plans,
                "eager_keys": len(self._plans) - plans,
                "hits": self._hits,
                "misses": self._misses,
                "compiles": self._compiles,
                "trace_aborts": self._trace_aborts,
                "verify_failures": self._verify_failures,
                "eager_hits": self._eager_hits,
                "bypass": self._bypass,
                "state_invalidations": self._state_invalidations,
                "hook_invalidations": self._hook_invalidations,
            }


def _outputs_match(eager_out, replayed) -> bool:
    a = eager_out.data if isinstance(eager_out, Tensor) else eager_out
    b = replayed.data if isinstance(replayed, Tensor) else replayed
    if not isinstance(a, np.ndarray) or not isinstance(b, np.ndarray):
        return False
    if isinstance(eager_out, Tensor) != isinstance(replayed, Tensor):
        return False
    if a.shape != b.shape or a.dtype != b.dtype:
        return False
    return bool(np.array_equal(a, b, equal_nan=a.dtype.kind == "f"))


# ----------------------------------------------------------------------
# installation helpers
# ----------------------------------------------------------------------
def install_plan_cache(model: Module, max_plans: int = 32) -> PlanCache:
    """Attach a plan cache to ``model``; idempotent (returns the existing one)."""
    cache = model.__dict__.get("_plan_cache")
    if cache is None:
        cache = PlanCache(max_plans=max_plans)
        model._plan_cache = cache
    return cache


def remove_plan_cache(model: Module) -> None:
    """Detach the plan cache; the model serves eagerly again."""
    model.__dict__.pop("_plan_cache", None)


def plan_cache_of(model: Module) -> Optional[PlanCache]:
    return model.__dict__.get("_plan_cache")
