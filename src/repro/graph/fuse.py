"""Graph rewrite passes: collapse traced chains into fused nodes.

Three passes run, in order, over the flat node list (graphs are small — a few
hundred nodes — so the passes are simple list rewrites, not dataflow
frameworks):

1. :func:`fuse_qdq_matmul` — a ``qdq`` node whose *only* consumer is the
   matching wrapper's ``qlinear_mm``/``qlinear_stream_mm`` collapses into a
   single ``qlinear``/``qlinear_stream`` node.  The replay executor then runs
   activation Q/DQ through the fused
   :func:`repro.fp8.kernels.quantize_dequantize_axis` primitive and feeds the
   matmul directly, with no intermediate slot materialised in the plan
   environment.
2. :func:`fuse_ew_chains` — runs of single-consumer ``ew`` nodes collapse
   into one ``fused_ew`` node carrying the op list, executed as one pass over
   a single buffer (in-place where the op family allows it).
3. :func:`fuse_epilogue` — an ``ew``/``fused_ew`` node that is the sole
   consumer of a matmul-family output is absorbed into the producer as an
   ``epilogue`` parameter, applied on the producer's output buffer.

Every rewrite preserves bit-exactness by construction: fused executors use
the same numpy expressions (and the same evaluation order) as the eager
operators they replace, just without the interpreter walk and the Python-side
temporaries.  This module intentionally imports nothing from the rest of
``repro`` — it rewrites kind strings and slot ids only.
"""

from __future__ import annotations

from typing import List

from repro.graph.ir import ELEMENTWISE_OPS, MATMUL_KINDS, Graph, Node

__all__ = ["fuse_graph", "fuse_qdq_matmul", "fuse_ew_chains", "fuse_epilogue"]

_QDQ_MATMUL = {
    "qlinear_mm": "qlinear",
    "qlinear_stream_mm": "qlinear_stream",
}


def _single_consumer(graph: Graph, slot: int):
    """Index of the unique node reading ``slot``, or None (output counts as a reader)."""
    readers = graph.consumers().get(slot, [])
    if len(readers) == 1 and readers[0] != -1:
        return readers[0]
    return None


def fuse_qdq_matmul(graph: Graph) -> Graph:
    """Collapse ``qdq`` + ``qlinear_(stream_)mm`` pairs from the same wrapper."""
    nodes = list(graph.nodes)
    changed = True
    while changed:
        changed = False
        graph.nodes = nodes
        for i, node in enumerate(nodes):
            if node.kind != "qdq":
                continue
            j = _single_consumer(graph, node.output)
            if j is None:
                continue
            consumer = nodes[j]
            fused_kind = _QDQ_MATMUL.get(consumer.kind)
            if fused_kind is None or consumer.inputs != (node.output,):
                continue
            if consumer.params.get("module") is not node.params.get("module"):
                continue
            nodes[j] = Node(fused_kind, node.inputs, consumer.output, dict(consumer.params))
            del nodes[i]
            changed = True
            break
    graph.nodes = nodes
    return graph


def fuse_ew_chains(graph: Graph) -> Graph:
    """Collapse runs of single-consumer ``ew`` nodes into one ``fused_ew``."""
    nodes = list(graph.nodes)
    changed = True
    while changed:
        changed = False
        graph.nodes = nodes
        for i, node in enumerate(nodes):
            if node.kind not in ("ew", "fused_ew"):
                continue
            j = _single_consumer(graph, node.output)
            if j is None:
                continue
            consumer = nodes[j]
            if consumer.kind not in ("ew", "fused_ew"):
                continue
            ops = _ops_of(node) + _ops_of(consumer)
            nodes[j] = Node("fused_ew", node.inputs, consumer.output, {"ops": ops})
            del nodes[i]
            changed = True
            break
    graph.nodes = nodes
    return graph


def _ops_of(node: Node) -> List[str]:
    if node.kind == "ew":
        return [node.params["op"]]
    return list(node.params["ops"])


def fuse_epilogue(graph: Graph) -> Graph:
    """Absorb a trailing elementwise chain into its matmul-family producer."""
    nodes = list(graph.nodes)
    changed = True
    while changed:
        changed = False
        graph.nodes = nodes
        for i, node in enumerate(nodes):
            if node.kind not in MATMUL_KINDS or "epilogue" in node.params:
                continue
            j = _single_consumer(graph, node.output)
            if j is None:
                continue
            consumer = nodes[j]
            if consumer.kind not in ("ew", "fused_ew"):
                continue
            ops = _ops_of(consumer)
            if any(op not in ELEMENTWISE_OPS for op in ops):
                continue
            params = dict(node.params)
            params["epilogue"] = ops
            nodes[i] = Node(node.kind, node.inputs, consumer.output, params)
            del nodes[j]
            changed = True
            break
    graph.nodes = nodes
    return graph


def fuse_graph(graph: Graph) -> Graph:
    """Run all fusion passes in order; mutates and returns ``graph``."""
    graph = fuse_qdq_matmul(graph)
    graph = fuse_ew_chains(graph)
    graph = fuse_epilogue(graph)
    return graph
