"""Lazy op-graph tracing + fused plan cache for the serving forward.

Layers (see the per-module docstrings for the full contracts):

* :mod:`repro.graph.ir` — the op-graph representation (nodes over SSA slots);
* :mod:`repro.graph.tracer` — trace-by-execution of a model forward;
* :mod:`repro.graph.fuse` — rewrite passes collapsing Q/DQ→matmul sequences
  and elementwise chains into fused nodes;
* :mod:`repro.graph.plan` — compilation into a flat executable plan with
  preallocated per-thread buffers;
* :mod:`repro.graph.cache` — the per-model plan cache wired into
  ``Module.__call__``, with epoch-based invalidation and the eager-oracle
  fallback.
"""

from repro.graph.cache import PlanCache, install_plan_cache, plan_cache_of, remove_plan_cache
from repro.graph.fuse import fuse_graph
from repro.graph.ir import Graph, Node, TraceAborted
from repro.graph.plan import Plan, compile_plan
from repro.graph.tracer import Tracer, TraceResult, trace

__all__ = [
    "Graph",
    "Node",
    "TraceAborted",
    "Tracer",
    "TraceResult",
    "trace",
    "fuse_graph",
    "Plan",
    "compile_plan",
    "PlanCache",
    "install_plan_cache",
    "remove_plan_cache",
    "plan_cache_of",
]
