"""Trace-by-execution: run a forward once and record it as an op graph.

The :class:`Tracer` installs itself as the thread's active tracer (see
:mod:`repro.nn.module`) and runs the model on the *real* inputs.  Every
``Module.__call__`` is offered to :meth:`Tracer.visit_call` first:

* containers and composite modules are traced *through* — their forward runs
  normally and the children re-enter the tracer;
* registered leaf operators execute with tracing suspended (so the modules
  they call internally are not double-recorded) and record the node(s) that
  reproduce their output;
* quantized wrappers provide their own ``trace_emit`` (see
  :mod:`repro.quantization.qmodules`), emitting symbolic Q/DQ and
  blocked-streaming-matmul nodes instead of being traced through.

Values are tagged by the identity of their underlying ``ndarray`` —
:class:`~repro.autograd.tensor.Tensor` carries ``__slots__`` so the array is
the only stable tag point; the tracer keeps every tagged array alive so ids
cannot be recycled mid-trace.  Raw tensor math inside a custom ``forward``
produces *untagged* arrays, and the first leaf that consumes one aborts the
trace (:class:`~repro.graph.ir.TraceAborted`) — the plan cache then pins that
key to the eager path, which is the designed fallback, not a failure.

Because the trace executes the forward for real, a successful trace doubles
as the first serving call: the traced output is handed back to the caller
bit-for-bit as the eager result.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor
from repro.graph.ir import Graph, Node, TraceAborted
from repro.nn.activations import GELU, ReLU, Sigmoid, SiLU, Softmax, Tanh
from repro.nn.attention import BatchMatMul, MultiHeadSelfAttention
from repro.nn.elementwise import Add, Mul
from repro.nn.layers import Conv2d, Dropout, Embedding, EmbeddingBag, Flatten, Identity, Linear
from repro.nn.module import (
    Module,
    _set_active_tracer,
    active_tracer,
    register_trace_leaf,
    trace_leaf_emitter,
)
from repro.nn.norm import GroupNorm, LayerNorm, _BatchNorm
from repro.nn.pooling import AdaptiveAvgPool2d, AvgPool2d, MaxPool2d

__all__ = ["Tracer", "TraceResult", "trace"]


def _as_data(value: Any) -> np.ndarray:
    return value.data if isinstance(value, Tensor) else np.asarray(value)


class TraceResult:
    """A successful trace: the graph plus the real output of the traced call."""

    __slots__ = ("graph", "output")

    def __init__(self, graph: Graph, output: Any) -> None:
        self.graph = graph
        self.output = output


class Tracer:
    """Records an op graph while the model executes on real inputs."""

    def __init__(self) -> None:
        self._nodes: List[Node] = []
        self._slots: Dict[int, int] = {}
        self._keepalive: List[np.ndarray] = []
        self._num_slots = 0
        self._slot_meta: Dict[int, Tuple[Tuple[int, ...], Any]] = {}
        self._modules: List[Module] = []
        self._module_ids: set = set()

    # ------------------------------------------------------------------
    # slot bookkeeping
    # ------------------------------------------------------------------
    def tag(self, value: Any) -> int:
        """Assign (or return) the slot for ``value``'s underlying array."""
        data = _as_data(value)
        key = id(data)
        slot = self._slots.get(key)
        if slot is None:
            slot = self._num_slots
            self._num_slots += 1
            self._slots[key] = slot
            self._keepalive.append(data)
            self._slot_meta[slot] = (data.shape, data.dtype)
        return slot

    def slot_of(self, value: Any) -> int:
        """The slot carrying ``value``; aborts if the value escaped the trace."""
        data = _as_data(value)
        slot = self._slots.get(id(data))
        if slot is None:
            raise TraceAborted(
                "a leaf operator consumed a value produced outside the traced module "
                "tree (raw tensor math in a custom forward); falling back to eager"
            )
        return slot

    def record(self, kind: str, input_slots: Tuple[int, ...], output: Any, **params: Any) -> int:
        """Append a node computing ``output`` from ``input_slots``; tags the output."""
        out_slot = self.tag(output)
        self._nodes.append(Node(kind, tuple(input_slots), out_slot, params))
        return out_slot

    def touch(self, module: Module) -> None:
        """Remember that the trace depends on ``module`` (hook invalidation)."""
        if id(module) not in self._module_ids:
            self._module_ids.add(id(module))
            self._modules.append(module)

    def touch_tree(self, module: Module) -> None:
        """Touch ``module`` and every descendant; abort if any carries hooks.

        Used for opaque ``call_module`` leaves: replay re-runs the whole
        subtree, so a hook registered anywhere under it must invalidate the
        plan — and a subtree that already has hooks is served eagerly.
        """
        for _, sub in module.named_modules():
            if sub._forward_hooks:
                raise TraceAborted(
                    f"{type(sub).__name__} inside an opaque leaf carries forward hooks"
                )
            self.touch(sub)

    @contextmanager
    def suspended(self):
        """Run leaf internals eagerly without re-entering this tracer."""
        _set_active_tracer(None)
        try:
            yield
        finally:
            _set_active_tracer(self)

    # ------------------------------------------------------------------
    # the Module.__call__ entry point
    # ------------------------------------------------------------------
    def visit_call(self, module: Module, args: tuple, kwargs: dict) -> Tuple[bool, Any]:
        """Offer a module call to the tracer.

        Returns ``(True, output)`` when the call was recorded as node(s) (the
        output is the real computed value), or ``(False, None)`` to let the
        module's forward run normally (containers/composites trace through).
        Raises :class:`TraceAborted` for untraceable calls.
        """
        self.touch(module)
        if module._forward_hooks:
            raise TraceAborted(
                f"{type(module).__name__} carries forward hooks; hooked modules force eager"
            )
        if getattr(module, "observing", False):
            raise TraceAborted("module is observing (calibration in progress)")
        if getattr(module, "calibrating", False):
            raise TraceAborted("BatchNorm is calibrating")

        # quantized wrappers describe themselves (symbolic Q/DQ + matmul nodes)
        emit = getattr(module, "trace_emit", None)
        if emit is not None and getattr(module, "quantizing", False):
            with self.suspended():
                output = emit(self, args, kwargs)
            if output is None:
                raise TraceAborted(f"{type(module).__name__} declined to emit a trace")
            return True, output

        emitter = trace_leaf_emitter(module)
        if emitter is not None:
            with self.suspended():
                output = emitter(self, module, args, kwargs)
            return True, output

        if module._modules:
            return False, None  # composite: trace through the children
        raise TraceAborted(f"no trace emitter registered for leaf {type(module).__name__}")

    # ------------------------------------------------------------------
    def build(self, input_slots: Tuple[int, ...], input_specs, output: Any) -> Graph:
        out_data = _as_data(output)
        out_slot = self._slots.get(id(out_data))
        if out_slot is None:
            raise TraceAborted(
                "the model output was produced outside the traced module tree; "
                "falling back to eager"
            )
        return Graph(
            nodes=self._nodes,
            input_slots=input_slots,
            input_specs=input_specs,
            output_slot=out_slot,
            num_slots=self._num_slots,
            slot_meta=self._slot_meta,
            modules=self._modules,
        )


def trace(model: Module, args: tuple, kwargs: Optional[dict] = None) -> TraceResult:
    """Run ``model(*args)`` once under a tracer and return graph + real output.

    Aborts (raising :class:`TraceAborted`) rather than recording anything
    unsound: training-mode models, keyword arguments beyond the traced
    positional protocol, nested traces and hook-carrying modules all fall
    back to eager.
    """
    if kwargs:
        raise TraceAborted("keyword arguments are served eagerly (not part of plan keys)")
    if active_tracer() is not None:
        raise TraceAborted("nested tracing is not supported")
    if model.training:
        raise TraceAborted("training-mode models are served eagerly")

    tracer = Tracer()
    input_slots = []
    input_specs = []
    for arg in args:
        if not isinstance(arg, (Tensor, np.ndarray)):
            raise TraceAborted(f"non-array model input of type {type(arg).__name__}")
        data = _as_data(arg)
        input_slots.append(tracer.tag(arg))
        input_specs.append((isinstance(arg, Tensor), data.dtype.str, data.shape))

    _set_active_tracer(tracer)
    try:
        output = model(*args)
    finally:
        _set_active_tracer(None)
    graph = tracer.build(tuple(input_slots), tuple(input_specs), output)
    return TraceResult(graph, output)


# ======================================================================
# leaf emitters for the plain (float) operator library
# ======================================================================
@register_trace_leaf(Linear)
def _emit_linear(tracer: Tracer, module: Linear, args: tuple, kwargs: dict):
    (x,) = args
    x_slot = tracer.slot_of(x)
    output = module.forward(x, **kwargs)
    tracer.record("linear", (x_slot,), output, module=module)
    return output


def _register_elementwise(cls, op: str):
    @register_trace_leaf(cls)
    def _emit(tracer: Tracer, module: Module, args: tuple, kwargs: dict):
        (x,) = args
        x_slot = tracer.slot_of(x)
        output = module.forward(x)
        tracer.record("ew", (x_slot,), output, op=op)
        return output

    return _emit


_register_elementwise(ReLU, "relu")
_register_elementwise(Sigmoid, "sigmoid")
_register_elementwise(Tanh, "tanh")
_register_elementwise(GELU, "gelu")
_register_elementwise(SiLU, "silu")


@register_trace_leaf(Softmax)
def _emit_softmax(tracer: Tracer, module: Softmax, args: tuple, kwargs: dict):
    (x,) = args
    x_slot = tracer.slot_of(x)
    output = module.forward(x)
    tracer.record("softmax", (x_slot,), output, axis=module.axis)
    return output


def _register_binary(cls, op: str):
    @register_trace_leaf(cls)
    def _emit(tracer: Tracer, module: Module, args: tuple, kwargs: dict):
        a, b = args
        slots = (tracer.slot_of(a), tracer.slot_of(b))
        output = module.forward(a, b)
        tracer.record("ew2", slots, output, op=op)
        return output

    return _emit


_register_binary(Add, "add")
_register_binary(Mul, "mul")


@register_trace_leaf(BatchMatMul)
def _emit_batch_matmul(tracer: Tracer, module: BatchMatMul, args: tuple, kwargs: dict):
    a, b = args
    slots = (tracer.slot_of(a), tracer.slot_of(b))
    output = module.forward(a, b)
    tracer.record("matmul2", slots, output)
    return output


@register_trace_leaf(Embedding)
def _emit_embedding(tracer: Tracer, module: Embedding, args: tuple, kwargs: dict):
    (indices,) = args
    idx_slot = tracer.slot_of(indices)
    output = module.forward(indices)
    tracer.record("embedding", (idx_slot,), output, module=module)
    return output


@register_trace_leaf(EmbeddingBag)
def _emit_embedding_bag(tracer: Tracer, module: EmbeddingBag, args: tuple, kwargs: dict):
    (indices,) = args
    idx_slot = tracer.slot_of(indices)
    output = module.forward(indices)
    tracer.record("embedding_bag", (idx_slot,), output, module=module, mode=module.mode)
    return output


@register_trace_leaf(Flatten)
def _emit_flatten(tracer: Tracer, module: Flatten, args: tuple, kwargs: dict):
    (x,) = args
    x_slot = tracer.slot_of(x)
    output = module.forward(x)
    tracer.record("reshape", (x_slot,), output, shape=output.shape)
    return output


@register_trace_leaf(Identity)
def _emit_identity(tracer: Tracer, module: Identity, args: tuple, kwargs: dict):
    # forward returns its input unchanged; the array is already tagged
    (x,) = args
    tracer.slot_of(x)
    return module.forward(x)


@register_trace_leaf(Dropout)
def _emit_dropout(tracer: Tracer, module: Dropout, args: tuple, kwargs: dict):
    (x,) = args
    tracer.slot_of(x)
    if module.training and module.p > 0.0:
        raise TraceAborted("dropout in training mode is stochastic; served eagerly")
    # eval-mode dropout is the identity and returns its input object
    return module.forward(x)


@register_trace_leaf(LayerNorm)
def _emit_layer_norm(tracer: Tracer, module: LayerNorm, args: tuple, kwargs: dict):
    (x,) = args
    x_slot = tracer.slot_of(x)
    output = module.forward(x)
    tracer.record("layer_norm", (x_slot,), output, module=module)
    return output


@register_trace_leaf(_BatchNorm)
def _emit_batch_norm(tracer: Tracer, module: _BatchNorm, args: tuple, kwargs: dict):
    if module.training or module.calibrating:
        raise TraceAborted("BatchNorm updates running stats; served eagerly")
    (x,) = args
    x_slot = tracer.slot_of(x)
    output = module.forward(x)
    tracer.record("batch_norm", (x_slot,), output, module=module)
    return output


def _register_opaque(cls):
    """Record the whole module call as one ``call_module`` node.

    Safe only for modules that are pure functions of their inputs in eval
    mode; replay calls the module again with the same argument wrapping.
    """

    @register_trace_leaf(cls)
    def _emit(tracer: Tracer, module: Module, args: tuple, kwargs: dict):
        for key, value in kwargs.items():
            if isinstance(value, (Tensor, np.ndarray)):
                raise TraceAborted(f"array keyword argument {key!r} on an opaque leaf")
        tracer.touch_tree(module)
        slots = []
        wrapped = []
        for arg in args:
            slots.append(tracer.slot_of(arg))
            wrapped.append(isinstance(arg, Tensor))
        output = module(*args, **kwargs)
        tracer.record(
            "call_module",
            tuple(slots),
            output,
            module=module,
            wrapped=tuple(wrapped),
            kwargs=dict(kwargs),
        )
        return output

    return _emit


_register_opaque(Conv2d)
_register_opaque(GroupNorm)
_register_opaque(MaxPool2d)
_register_opaque(AvgPool2d)
_register_opaque(AdaptiveAvgPool2d)
_register_opaque(MultiHeadSelfAttention)
