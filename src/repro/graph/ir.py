"""Op-graph intermediate representation for traced forwards.

A traced forward is a flat, topologically ordered list of :class:`Node`
records over integer *slots*.  Slots are SSA values: every node reads its
inputs from slots and writes exactly one output slot; the graph's inputs and
output are slots too.  The representation is deliberately minimal — kinds are
plain strings and parameters are plain dicts — so the fusion passes in
:mod:`repro.graph.fuse` can rewrite graphs without importing any of the
packages whose modules produced the nodes (no ``nn``/``quantization`` imports
here, and therefore no import cycles).

Node kinds emitted by the tracer
--------------------------------
``linear``            dense ``x @ W.T + b`` through a float :class:`~repro.nn.layers.Linear`
``qdq``               activation quantize/dequantize through one ``TensorQuantizer``
``qlinear_mm``        matmul of an already-Q/DQ'd activation against a quantized
                      wrapper's cached dequantized weight
``qlinear_stream_mm`` the blocked streaming matmul over packed weight blocks
``qembed``            quantized embedding lookup (cached or gather-decode)
``embedding`` / ``embedding_bag``   float embedding gathers
``ew``                one elementwise op (``relu``/``sigmoid``/``tanh``/``gelu``/``silu``)
``ew2``               binary elementwise (``add``/``mul``)
``softmax``           numerically-stable softmax along an axis
``layer_norm`` / ``batch_norm``     normalisation decompositions (eval mode)
``reshape``           movement (view) to a fixed shape
``matmul2``           batched matmul of two traced operands
``call_module``       opaque leaf: replay calls the module itself

Kinds produced by fusion (:mod:`repro.graph.fuse`)
--------------------------------------------------
``qlinear``           ``qdq`` + ``qlinear_mm`` collapsed into one node
``qlinear_stream``    ``qdq`` + ``qlinear_stream_mm`` collapsed
``fused_ew``          a chain of ``ew`` nodes collapsed into one pass
plus an optional ``epilogue`` parameter (a list of elementwise op names) on
any matmul-family node, applied in place on the output buffer.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

__all__ = ["TraceAborted", "Node", "Graph", "MATMUL_KINDS", "ELEMENTWISE_OPS"]

#: node kinds whose executors write into a preallocated output buffer and can
#: therefore absorb an in-place elementwise epilogue
MATMUL_KINDS = (
    "linear", "qlinear_mm", "qlinear_stream_mm", "qlinear", "qlinear_stream", "matmul2", "ew2"
)

#: ops a single-input ``ew`` node may carry (and a ``fused_ew``/epilogue chain)
ELEMENTWISE_OPS = ("relu", "sigmoid", "tanh", "gelu", "silu")


class TraceAborted(RuntimeError):
    """Raised while tracing when the forward cannot be captured as a graph.

    An aborted trace is not an error for the caller: the plan cache records
    the key as eager-only and every forward for it takes the (bit-exact)
    eager path.  Typical causes: raw tensor math escaping the module tree
    (the value is untagged when a leaf consumes it), an active forward hook,
    a calibrating/observing module, or a leaf operator without an emitter.
    """


class Node:
    """One traced operation: ``output = kind(params)(*inputs)``."""

    __slots__ = ("kind", "inputs", "output", "params")

    def __init__(self, kind: str, inputs: Tuple[int, ...], output: int, params: Dict[str, Any]):
        self.kind = kind
        self.inputs = tuple(inputs)
        self.output = int(output)
        self.params = params

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Node({self.kind}, in={self.inputs}, out={self.output})"


class Graph:
    """A traced forward: ordered nodes over slots, plus replay metadata.

    Attributes
    ----------
    nodes:
        Topologically ordered operations (trace order).
    input_slots:
        Slot id per positional model input.
    input_specs:
        Per input: ``(wrapped, dtype_str, shape)`` where ``wrapped`` records
        whether the traced call received a ``Tensor`` (quantized wrappers only
        Q/DQ ``Tensor`` inputs, so replay must preserve the distinction).
    output_slot:
        Slot holding the forward's result.
    num_slots:
        Total slots allocated by the trace.
    slot_meta:
        ``slot -> (shape, dtype)`` for every slot, recorded from the real
        values seen during tracing; used to preallocate plan buffers.
    modules:
        Every module the trace touched (recorded leaves *and* containers
        traced through, including the subtree of opaque ``call_module``
        leaves).  The plan cache drops plans whose touched modules gain a
        forward hook.
    """

    def __init__(
        self,
        nodes: List[Node],
        input_slots: Tuple[int, ...],
        input_specs: Tuple[Tuple[bool, str, Tuple[int, ...]], ...],
        output_slot: int,
        num_slots: int,
        slot_meta: Dict[int, Tuple[Tuple[int, ...], Any]],
        modules: List[Any],
    ) -> None:
        self.nodes = nodes
        self.input_slots = tuple(input_slots)
        self.input_specs = tuple(input_specs)
        self.output_slot = int(output_slot)
        self.num_slots = int(num_slots)
        self.slot_meta = slot_meta
        self.modules = modules

    def consumers(self) -> Dict[int, List[int]]:
        """Map ``slot -> indices of nodes reading it`` (graph output counts as a reader)."""
        readers: Dict[int, List[int]] = {}
        for index, node in enumerate(self.nodes):
            for slot in node.inputs:
                readers.setdefault(slot, []).append(index)
        readers.setdefault(self.output_slot, []).append(-1)
        return readers

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = ", ".join(node.kind for node in self.nodes)
        return f"Graph({len(self.nodes)} nodes: {kinds})"
