"""Compile a fused graph into a flat executable plan.

A :class:`Plan` is the replay form of a traced forward: an ordered list of
step closures over a slot environment, with every intermediate written into a
buffer preallocated at compile time.  Replaying a plan performs zero module
dispatch — no ``Module.__call__`` walk, no ``Tensor`` tape objects, no
``_process_inputs`` list rebuilding — just the same numpy kernel calls the
eager forward would have made, in the same order.

Bit-exactness contract
----------------------
Every executor mirrors the *exact* numpy expression of the eager operator it
replaces (including scalar coercions to ``float32`` and the ``x + (-y)``
formulation :class:`~repro.autograd.tensor.Tensor` uses for subtraction), so
replay output is bit-identical to eager under both ``REPRO_FP8_KERNEL``
dispatches.  Writing through ``out=`` does not change results — numpy routes
to the same ufunc/GEMM either way — and the plan cache verifies the property
at compile time anyway (see :mod:`repro.graph.cache`), discarding any plan
that fails to reproduce the traced output.

Buffer policy
-------------
Each buffer-writing node owns a dedicated output buffer — buffers are never
shared between nodes, because ``reshape`` nodes alias their input and a reused
buffer could be overwritten while a view of it is still live.  Buffers are
allocated per *thread* (engine workers replay the same plan concurrently), and
the final output is copied iff it is backed by a plan buffer rather than a
freshly allocated array, so callers never observe a buffer mutating under
them on the next replay.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor
from repro.graph.ir import Graph, Node

__all__ = ["Plan", "compile_plan"]

#: mirrors Tensor.gelu's per-call constant (deterministic, so hoisting is safe)
_GELU_C = np.sqrt(2.0 / np.pi).astype(np.float32)


# ----------------------------------------------------------------------
# elementwise mirrors (exact expressions from autograd.tensor)
# ----------------------------------------------------------------------
def _relu_to(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    # Tensor.relu: self.data * (self.data > 0)
    np.multiply(src, np.greater(src, 0), out=dst)
    return dst


def _sigmoid_to(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    # Tensor.sigmoid: 1.0 / (1.0 + np.exp(-x))
    np.negative(src, out=dst)
    np.exp(dst, out=dst)
    np.add(dst, 1.0, out=dst)
    np.divide(1.0, dst, out=dst)
    return dst


def _tanh_to(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    np.tanh(src, out=dst)
    return dst


def _gelu_fresh(src: np.ndarray) -> np.ndarray:
    # Tensor.gelu (tanh approximation), verbatim
    inner = _GELU_C * (src + 0.044715 * src**3)
    t = np.tanh(inner)
    return 0.5 * src * (1.0 + t)


def _silu_fresh(src: np.ndarray) -> np.ndarray:
    sig = 1.0 / (1.0 + np.exp(-src))
    return src * sig


#: ops with an in-place form: fn(src, dst) writes into dst (dst may be src)
_EW_TO: Dict[str, Callable] = {"relu": _relu_to, "sigmoid": _sigmoid_to, "tanh": _tanh_to}
#: ops that allocate their result
_EW_FRESH: Dict[str, Callable] = {"gelu": _gelu_fresh, "silu": _silu_fresh}


def _apply_epilogue(ops, arr: np.ndarray) -> np.ndarray:
    """Apply an elementwise chain to ``arr``, which the caller owns (in-place OK)."""
    for op in ops:
        to = _EW_TO.get(op)
        arr = to(arr, arr) if to is not None else _EW_FRESH[op](arr)
    return arr


def _epilogue_fresh(ops) -> bool:
    return any(op in _EW_FRESH for op in ops)


# ----------------------------------------------------------------------
# plan object
# ----------------------------------------------------------------------
class Plan:
    """An executable traced forward: ordered steps over preallocated buffers."""

    def __init__(
        self,
        graph: Graph,
        steps: List[Tuple[Callable, int]],
        buffer_specs: List[Tuple[Tuple[int, ...], Any]],
        fresh_output: bool,
        output_wrapped: bool,
    ) -> None:
        self.graph = graph
        self.output_wrapped = output_wrapped
        self._steps = steps
        self._buffer_specs = buffer_specs
        self._fresh_output = fresh_output
        self._local = threading.local()

    def _buffers(self) -> List[Optional[np.ndarray]]:
        bufs = getattr(self._local, "bufs", None)
        if bufs is None:
            bufs = [np.empty(shape, dtype=dtype) for shape, dtype in self._buffer_specs]
            self._local.bufs = bufs
        return bufs

    def replay(self, args: tuple):
        """Execute the plan on ``args`` (the model's positional inputs)."""
        env: List[Any] = [None] * self.graph.num_slots
        for slot, arg in zip(self.graph.input_slots, args):
            env[slot] = arg.data if isinstance(arg, Tensor) else arg
        bufs = self._buffers()
        for fn, bidx in self._steps:
            fn(env, bufs[bidx] if bidx >= 0 else None)
        out = env[self.graph.output_slot]
        if not self._fresh_output:
            out = out.copy()
        return Tensor(out) if self.output_wrapped else out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = ", ".join(f"{fn.__qualname__.split('.')[0]}" for fn, _ in self._steps)
        return f"Plan({len(self._steps)} steps, {len(self._buffer_specs)} buffers: {kinds})"


# ----------------------------------------------------------------------
# per-kind compilers: node -> (step fn, buffer spec | None, output fresh?)
# ----------------------------------------------------------------------
def _out_spec(graph: Graph, node: Node):
    shape, dtype = graph.slot_meta[node.output]
    return (shape, dtype)


def _finish(env, out, buf, epi):
    env[out] = _apply_epilogue(epi, buf) if epi else buf


def _c_linear(node, graph, fresh):
    module = node.params["module"]
    epi = node.params.get("epilogue")
    (a,) = node.inputs
    out = node.output
    weight = module.weight
    bias = module.bias

    if bias is not None:

        def fn(env, buf):
            np.matmul(env[a], weight.data.T, out=buf)
            np.add(buf, bias.data, out=buf)
            _finish(env, out, buf, epi)

    else:

        def fn(env, buf):
            np.matmul(env[a], weight.data.T, out=buf)
            _finish(env, out, buf, epi)

    return fn, _out_spec(graph, node), bool(epi) and _epilogue_fresh(epi)


def _c_qlinear(node, graph, fresh):
    # Cached qlinear nodes always compile to the BLAS matmul over the dense
    # weight cache, never to the native fused kernel: the eager cached forward
    # is BLAS, so a sequentially-accumulated C kernel here would fail the plan
    # cache's exact compile-time verification and pin the forward to eager.
    # (The native tier still accelerates cache *materialisation* — the fused
    # decode runs when the dense weight is rebuilt.)  BLAS also simply wins on
    # a resident dense float32 weight; the native FMA kernel's advantage is
    # skipping the decode temporaries, which cached mode pays only once.
    module = node.params["module"]
    epi = node.params.get("epilogue")
    quantize_first = node.kind == "qlinear"
    (a,) = node.inputs
    out = node.output

    def fn(env, buf):
        x = env[a]
        if quantize_first:
            x = module.input_quantizers[0].quantize(x)
        module._bind_weight()
        np.matmul(x, module.inner.weight.data.T, out=buf)
        bias = getattr(module.inner, "bias", None)
        if bias is not None:
            np.add(buf, bias.data, out=buf)
        _finish(env, out, buf, epi)

    return fn, _out_spec(graph, node), bool(epi) and _epilogue_fresh(epi)


def _native_stream_call(module, graph, node):
    """Pre-bound fused decode→FMA ctypes call for a streaming qlinear node.

    Resolved once at plan-compile time (native tier active, ``REPRO_NATIVE_FMA``
    opted in, weight layout supported): the batch-specialised kernel and the
    packed weight buffers are captured in the returned callable, so each replay
    is a single ctypes call with zero dispatch.  This is safe to pre-bind
    because plan lifetime is bounded by the state epoch — any weight mutation
    drops the plan.  The eager streaming forward under the same settings runs
    the *same* kernel through ``_stream_matmul``, so the plan cache's exact
    compile-time verification against the eager oracle passes bit-for-bit.
    Returns ``None`` to compile the generic ``_stream_matmul`` closure instead.
    """
    from repro.fp8 import kernels, native

    if not native.fma_enabled() or kernels.get_active_kernel() != "native":
        return None
    wq = getattr(module, "weight_q", None)
    if wq is None:
        return None
    shape, dtype = graph.slot_meta[node.output]
    if np.dtype(dtype) != np.float32 or not shape:
        return None
    n = 1
    for dim in shape[:-1]:
        n *= int(dim)
    return native.plan_qlinear_fma(wq, n)


def _c_qlinear_stream(node, graph, fresh):
    module = node.params["module"]
    epi = node.params.get("epilogue")
    quantize_first = node.kind == "qlinear_stream"
    (a,) = node.inputs
    out = node.output

    native_call = _native_stream_call(module, graph, node)
    if native_call is not None:
        bias = getattr(module.inner, "bias", None)

        def fn(env, buf):
            x = env[a]
            if quantize_first:
                x = module.input_quantizers[0].quantize(x)
            else:
                x = np.asarray(x, dtype=np.float32)
            native_call(x.reshape(-1, x.shape[-1]), buf.reshape(-1, buf.shape[-1]))
            if bias is not None:
                np.add(buf, bias.data, out=buf)
            _finish(env, out, buf, epi)

        return fn, _out_spec(graph, node), bool(epi) and _epilogue_fresh(epi)

    def fn(env, buf):
        x = env[a]
        if quantize_first:
            x = module.input_quantizers[0].quantize(x)
        else:
            x = np.asarray(x, dtype=np.float32)
        module._stream_matmul(x, out=buf)
        _finish(env, out, buf, epi)

    return fn, _out_spec(graph, node), bool(epi) and _epilogue_fresh(epi)


def _c_qdq(node, graph, fresh):
    module = node.params["module"]
    index = node.params["index"]
    (a,) = node.inputs
    out = node.output

    def fn(env, buf):
        env[out] = module.input_quantizers[index].quantize(env[a])

    enabled = module.input_quantizers[index].config.enabled
    return fn, None, True if enabled else fresh.get(a, False)


def _c_ew(node, graph, fresh):
    op = node.params["op"]
    (a,) = node.inputs
    out = node.output
    to = _EW_TO.get(op)
    if to is not None:

        def fn(env, buf):
            env[out] = to(env[a], buf)

        return fn, _out_spec(graph, node), False
    fr = _EW_FRESH[op]

    def fn(env, buf):
        env[out] = fr(env[a])

    return fn, None, True


def _c_fused_ew(node, graph, fresh):
    ops = node.params["ops"]
    (a,) = node.inputs
    out = node.output
    head, tail = ops[0], ops[1:]
    head_to = _EW_TO.get(head)
    if head_to is not None:
        # the chain's input slot may have other readers, so the first op
        # writes into this node's buffer rather than in place
        def fn(env, buf):
            env[out] = _apply_epilogue(tail, head_to(env[a], buf))

        return fn, _out_spec(graph, node), _epilogue_fresh(ops)
    head_fr = _EW_FRESH[head]

    def fn(env, buf):
        env[out] = _apply_epilogue(tail, head_fr(env[a]))

    return fn, None, True


def _c_ew2(node, graph, fresh):
    ufunc = np.add if node.params["op"] == "add" else np.multiply
    epi = node.params.get("epilogue")
    a, b = node.inputs
    out = node.output

    def fn(env, buf):
        ufunc(env[a], env[b], out=buf)
        _finish(env, out, buf, epi)

    return fn, _out_spec(graph, node), bool(epi) and _epilogue_fresh(epi)


def _c_matmul2(node, graph, fresh):
    epi = node.params.get("epilogue")
    a, b = node.inputs
    out = node.output

    def fn(env, buf):
        np.matmul(env[a], env[b], out=buf)
        _finish(env, out, buf, epi)

    return fn, _out_spec(graph, node), bool(epi) and _epilogue_fresh(epi)


def _c_softmax(node, graph, fresh):
    axis = node.params["axis"]
    (a,) = node.inputs
    out = node.output

    def fn(env, buf):
        # functional.softmax: (x - max).exp() / sum — Tensor subtraction is
        # x + (-y), mirrored here exactly
        x = env[a]
        m = x.max(axis=axis, keepdims=True)
        np.negative(m, out=m)
        np.add(x, m, out=buf)
        np.exp(buf, out=buf)
        s = buf.sum(axis=axis, keepdims=True)
        np.divide(buf, s, out=buf)
        env[out] = buf

    return fn, _out_spec(graph, node), False


def _c_reshape(node, graph, fresh):
    shape = node.params["shape"]
    (a,) = node.inputs
    out = node.output

    def fn(env, buf):
        env[out] = env[a].reshape(shape)

    return fn, None, fresh.get(a, False)


def _c_embedding(node, graph, fresh):
    weight = node.params["module"].weight
    (a,) = node.inputs
    out = node.output

    def fn(env, buf):
        env[out] = weight.data[np.asarray(env[a], dtype=np.int64)]

    return fn, None, True


def _c_embedding_bag(node, graph, fresh):
    weight = node.params["module"].weight
    mode = node.params["mode"]
    (a,) = node.inputs
    out = node.output

    def fn(env, buf):
        emb = weight.data[np.asarray(env[a], dtype=np.int64)]
        s = emb.sum(axis=1)
        # Tensor.mean is sum * (1.0 / count), coerced through float32
        env[out] = s if mode == "sum" else s * np.float32(1.0 / emb.shape[1])

    return fn, None, True


def _c_layer_norm(node, graph, fresh):
    module = node.params["module"]
    (a,) = node.inputs
    out = node.output

    def fn(env, buf):
        # mirrors functional.layer_norm through the Tensor op decompositions:
        # mean/var are sum * (1/count), subtraction is x + (-y), and the same
        # centered array feeds both the variance and the normalisation (the
        # eager recomputation is deterministic, so sharing it is bit-safe)
        x = env[a]
        inv = np.float32(1.0 / x.shape[-1])
        mean = x.sum(axis=-1, keepdims=True) * inv
        centered = np.add(x, np.negative(mean))
        var = (centered**2).sum(axis=-1, keepdims=True) * inv
        std = np.sqrt(np.add(var, np.float32(module.eps)))
        x_hat = np.divide(centered, std)
        np.multiply(x_hat, module.weight.data, out=buf)
        np.add(buf, module.bias.data, out=buf)
        env[out] = buf

    return fn, _out_spec(graph, node), False


def _c_batch_norm(node, graph, fresh):
    module = node.params["module"]
    (a,) = node.inputs
    out = node.output
    in_shape, _ = graph.slot_meta[a]
    shape = (1, -1, 1, 1) if len(in_shape) == 4 else (1, -1)

    def fn(env, buf):
        # functional.batch_norm, eval branch only (training aborts the trace)
        x = env[a]
        mean = module.running_mean.reshape(shape)
        var = module.running_var.reshape(shape)
        centered = np.add(x, np.negative(mean))
        std = np.sqrt(np.add(var, np.float32(module.eps)))
        x_hat = np.divide(centered, std)
        np.multiply(x_hat, module.weight.data.reshape(shape), out=buf)
        np.add(buf, module.bias.data.reshape(shape), out=buf)
        env[out] = buf

    return fn, _out_spec(graph, node), False


def _c_qembed(node, graph, fresh):
    module = node.params["module"]
    wrapped = node.params["wrapped"]
    (a,) = node.inputs
    out = node.output

    def fn(env, buf):
        idx = env[a]
        result = module.forward(Tensor(idx) if wrapped else idx)
        env[out] = result.data if isinstance(result, Tensor) else np.asarray(result)

    return fn, None, True


def _c_call_module(node, graph, fresh):
    module = node.params["module"]
    wrapped = node.params["wrapped"]
    kwargs = node.params["kwargs"]
    slots = node.inputs
    out = node.output

    def fn(env, buf):
        args = tuple(Tensor(env[s]) if w else env[s] for s, w in zip(slots, wrapped))
        result = module(*args, **kwargs)
        env[out] = result.data if isinstance(result, Tensor) else np.asarray(result)

    return fn, None, True


_COMPILERS: Dict[str, Callable] = {
    "linear": _c_linear,
    "qlinear": _c_qlinear,
    "qlinear_mm": _c_qlinear,
    "qlinear_stream": _c_qlinear_stream,
    "qlinear_stream_mm": _c_qlinear_stream,
    "qdq": _c_qdq,
    "ew": _c_ew,
    "fused_ew": _c_fused_ew,
    "ew2": _c_ew2,
    "matmul2": _c_matmul2,
    "softmax": _c_softmax,
    "reshape": _c_reshape,
    "embedding": _c_embedding,
    "embedding_bag": _c_embedding_bag,
    "layer_norm": _c_layer_norm,
    "batch_norm": _c_batch_norm,
    "qembed": _c_qembed,
    "call_module": _c_call_module,
}


def compile_plan(graph: Graph, output_wrapped: bool) -> Plan:
    """Lower a (fused) graph into an executable :class:`Plan`."""
    fresh: Dict[int, bool] = {slot: True for slot in graph.input_slots}
    steps: List[Tuple[Callable, int]] = []
    buffer_specs: List[Tuple[Tuple[int, ...], Any]] = []
    for node in graph.nodes:
        compiler = _COMPILERS.get(node.kind)
        if compiler is None:
            raise KeyError(f"no executor for node kind {node.kind!r}")
        fn, spec, out_fresh = compiler(node, graph, fresh)
        bidx = -1
        if spec is not None:
            bidx = len(buffer_specs)
            buffer_specs.append(spec)
        steps.append((fn, bidx))
        fresh[node.output] = out_fresh
    return Plan(graph, steps, buffer_specs, fresh.get(graph.output_slot, False), output_wrapped)
