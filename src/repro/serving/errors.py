"""Structured exception taxonomy for the serving stack.

Failure behaviour is part of the serving API: a caller sizing retry budgets
or shedding thresholds needs to branch on *why* a request failed, not parse
ad-hoc ``RuntimeError`` messages.  Every failure the engine can hand a caller
derives from :class:`ServingError`:

============================  ====================================================
exception                     meaning
============================  ====================================================
:class:`EngineClosed`         submitted to an engine after ``close()``
:class:`EngineDraining`       submitted while the engine drains toward shutdown
:class:`QueueFull`            queue-depth cap hit; request rejected at admission
:class:`RequestShed`          an *already queued* request was evicted to admit
                              higher-priority traffic under sustained overload
:class:`DeadlineExceeded`     queue-time deadline passed before a forward started
:class:`WorkerCrashed`        the worker (or generation tick thread) serving the
                              request died and its retry budget is exhausted
:class:`EngineFailed`         worker crash-looping exhausted the engine's
                              ``max_worker_restarts`` budget; the engine stopped
                              restarting and failed all pending work
:class:`PrefetchError`        a background block-decode worker failed; chained
                              ``from`` the original decode exception
============================  ====================================================

:class:`ServingError` subclasses ``RuntimeError`` so pre-taxonomy callers
that caught ``RuntimeError`` keep working; :class:`DeadlineExceeded` also
subclasses ``TimeoutError`` (its historical base), and :class:`QueueFull` /
:class:`RequestShed` describe the two sides of overload control — fast-fail
at admission versus eviction of queued lower-class work.
"""

from __future__ import annotations

__all__ = [
    "ServingError",
    "EngineClosed",
    "EngineDraining",
    "QueueFull",
    "RequestShed",
    "DeadlineExceeded",
    "WorkerCrashed",
    "EngineFailed",
    "PrefetchError",
]


class ServingError(RuntimeError):
    """Base class of every typed failure the serving stack raises."""


class EngineClosed(ServingError):
    """The engine (or scheduler/driver) was closed before the request arrived."""


class EngineDraining(ServingError):
    """The engine is draining queued work toward shutdown; admission is off."""


class QueueFull(ServingError):
    """Admission rejected the request: the bounded queue is at capacity.

    Fast-fail overload behaviour — an unbounded queue accepts work it can
    never serve, so a full queue refuses new work immediately instead of
    growing latency without bound.
    """


class RequestShed(ServingError):
    """A queued request was evicted to admit higher-priority traffic.

    Under sustained overload the scheduler sheds the lowest priority class
    first; work that already *started* a forward is never shed.
    """


class DeadlineExceeded(ServingError, TimeoutError):
    """The request's deadline passed before a worker could start its forward."""


class WorkerCrashed(ServingError):
    """The thread serving this request died and retries are exhausted.

    Raised by futures/streams whose worker (engine worker thread or the
    generation tick thread) crashed mid-forward, by ``close()`` for requests
    a dead worker could not drain, and by submissions to a crashed
    generation driver.  ``__cause__`` carries the crashing exception when it
    was observable.
    """


class EngineFailed(ServingError):
    """The engine gave up restarting crash-looping workers and went dead.

    Raised once worker restarts exceed ``max_worker_restarts`` within the
    rolling ``restart_window_s`` window: a replica (or checkpoint) that kills
    every worker started against it cannot be healed by restarting harder.
    All pending requests fail with this error (``__cause__`` carries the last
    crash), ``stats()["state"]`` reads ``"failed"``, and new submissions are
    rejected with it — the caller must build a fresh engine.  Also raised
    when a worker process reports that it cannot build its replica at all
    (e.g. an unreadable checkpoint), which restarting cannot fix either.
    """


class PrefetchError(ServingError):
    """A background block-decode (prefetch) worker failed.

    Chained ``from`` the original exception raised in the worker thread, so
    the decode traceback survives the thread hop.
    """
