"""Worker-process entrypoint for ``ServingEngine(worker_mode="process")``.

A worker process is deliberately dumb: it builds one model replica from a
:class:`WorkerSpec`, announces readiness, then answers ``forward`` messages
until told to shut down (or until it dies — which is the point of process
workers: a segfault in a native kernel, an OOM-kill or a stray ``os._exit``
takes down *this* process, not the engine).

Replica construction favours the checkpoint path: every worker re-runs
``load_quantized(path, factory, mmap=True)`` in its own address space.  That
re-map is nearly free — the container's inode-keyed mapping cache gives the
process one mapping per file, and the OS page cache shares the actual packed
bytes across *all* worker processes, so N workers cost one copy of the
checkpoint in physical memory plus N trivial page tables.  The fallback path
(``model_pickle``) ships a pickled template model instead, for models that
never touched a checkpoint.

Error contract (see :mod:`repro.serving.ipc` for the framing):

* replica construction fails → one ``init_error`` message, clean exit — the
  parent treats this as unrecoverable (restarting cannot fix a bad
  checkpoint) and fails the engine instead of crash-looping;
* an ordinary forward exception → an ``error`` reply for that request; the
  worker keeps serving (mirrors a thread worker's scoped group failure);
* anything worse (``BaseException``) propagates and kills the process; the
  parent observes EOF on the pipe, exactly as it would for a signal death.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Union

import numpy as np

from repro.serving.ipc import Channel, WorkerProcessDied, wrap_exception

__all__ = ["WorkerSpec", "worker_main"]


@dataclass
class WorkerSpec:
    """Everything a worker process needs to build its model replica.

    The spec itself crosses the process boundary (pickled into the spawn
    args), so every field must be picklable — in particular
    ``model_factory`` must be a module-level callable, not a lambda or
    closure.  Exactly one of ``checkpoint_path`` / ``model_pickle`` is set.
    """

    checkpoint_path: Optional[str] = None
    model_factory: Optional[Callable[[], Any]] = None
    model_pickle: Optional[bytes] = None
    mmap: bool = True
    serving_mode: Optional[str] = "streaming"
    block_channels: Optional[int] = None
    prefetch: Union[bool, str, None] = True
    plan_cache: bool = True

    def build(self):
        """Construct the replica in the current process (called in the child)."""
        if self.checkpoint_path is not None:
            # local imports: the spec must unpickle in a child that has not
            # (and may never) import the serialization stack
            from repro.quantization.workflow import set_serving_mode
            from repro.serialization import load_quantized

            # share_views routes the load through the inode-keyed mapping
            # cache, so a worker process maps the checkpoint exactly once no
            # matter how it is reloaded (and reports it in the ready payload)
            model = load_quantized(
                self.checkpoint_path,
                self.model_factory,
                mmap=self.mmap,
                share_views=self.mmap,
            )
            if self.serving_mode is not None:
                set_serving_mode(
                    model,
                    self.serving_mode,
                    block_channels=self.block_channels,
                    prefetch=self.prefetch,
                )
        elif self.model_pickle is not None:
            model = pickle.loads(self.model_pickle)
        else:
            raise ValueError("WorkerSpec needs a checkpoint_path or a model_pickle")
        if self.plan_cache:
            from repro.graph import install_plan_cache

            install_plan_cache(model)
        return model


def _mapped_files() -> int:
    try:
        from repro.serialization.container import mapping_cache_size

        return mapping_cache_size()
    except Exception:
        return 0


def worker_main(conn, spec: WorkerSpec) -> None:
    """Child entrypoint: build the replica, then serve ``forward`` messages."""
    # imported here so pickled specs fail loudly in the child, not the parent
    from repro.autograd.tensor import Tensor, no_grad

    channel = Channel(conn)
    try:
        model = spec.build()
    except BaseException as exc:  # noqa: BLE001 - report, then exit cleanly
        try:
            channel.send("init_error", 0, wrap_exception(exc))
        except WorkerProcessDied:
            pass
        return
    try:
        channel.send("ready", 0, {"pid": os.getpid(), "mapped_files": _mapped_files()})
    except WorkerProcessDied:
        return  # parent went away before we came up
    while True:
        try:
            kind, seq, payload = channel.recv()
        except WorkerProcessDied:
            return  # parent died or closed the pipe: nothing left to serve
        if kind == "shutdown":
            return
        if kind != "forward":
            continue  # unknown frames are ignored, not fatal
        try:
            t0 = time.perf_counter()
            with no_grad():
                output = model(Tensor(payload))
            forward_s = time.perf_counter() - t0
            output = output.data if isinstance(output, Tensor) else np.asarray(output)
            channel.send("result", seq, (np.ascontiguousarray(output), forward_s))
        except WorkerProcessDied:
            return
        except Exception as exc:  # noqa: BLE001 - scoped failure, keep serving
            try:
                channel.send("error", seq, wrap_exception(exc))
            except WorkerProcessDied:
                return
        # a BaseException here (injected crash semantics, KeyboardInterrupt,
        # a native-tier abort) propagates and kills the process: the parent
        # sees EOF and runs the same recovery as for a signal death
