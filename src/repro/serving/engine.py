"""Batched serving engine: a request queue in front of one model.

Deployment serves many concurrent single-sample requests, but the streaming
weight path pays its decode cost *per forward call* — so the throughput win
is to run one forward for many requests.  :class:`ServingEngine` does exactly
that: callers :meth:`~ServingEngine.submit` individual samples and get a
:class:`concurrent.futures.Future` back; a background driver thread drains
the queue, groups **compatible** requests, stacks (or pads) each group into
one batch, runs a single forward, and fans the rows back out to the waiting
futures.

Compatibility and padding
-------------------------
Two samples can share a forward call when stacking them is meaningful:

* rank-0/rank-1 samples (feature vectors) must have identical shapes and are
  stacked along a new leading axis;
* rank >= 2 samples (e.g. ``(seq_len, features)``) must agree on every
  dimension except the first; shorter samples are padded along axis 0 with
  ``pad_value`` up to the group's maximum length, and each output is sliced
  back to its own length.  Slicing assumes the model preserves the leading
  axis — declare ``slice_padded_outputs=False`` for models that reduce over
  it (outputs are then handed back unsliced).

Cancelling a submitted future is safe: a request cancelled while queued is
skipped when its batch is served (the driver marks futures RUNNING before
the forward, after which cancellation is no longer possible).

Latency/throughput trade-off: a batch closes when it reaches
``max_batch_size`` or when ``max_wait_ms`` elapses after its first request —
a lone request therefore never waits longer than ``max_wait_ms``.

The engine never touches serving modes itself; combine it with
``load_quantized(..., mmap=True)`` and
``set_serving_mode(model, "streaming", prefetch=True)`` (or use
:meth:`ServingEngine.from_checkpoint`, which wires all three) for the full
cold-start-to-throughput path.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.nn.module import Module

__all__ = ["ServingEngine"]

#: queue sentinel that wakes the driver for shutdown
_SHUTDOWN = object()


class _Request:
    __slots__ = ("sample", "future")

    def __init__(self, sample: np.ndarray, future: Future) -> None:
        self.sample = sample
        self.future = future


def _compat_key(sample: np.ndarray):
    """Group key: which requests may share one stacked/padded forward call."""
    if sample.ndim <= 1:
        return ("exact", sample.dtype.str, sample.shape)
    return ("padded", sample.dtype.str, sample.ndim, sample.shape[1:])


class ServingEngine:
    """Queue + batcher + driver thread around a single served model.

    Parameters
    ----------
    model:
        The served model (typically converted + deployed; any callable
        ``Module`` works).  The engine runs every forward under ``no_grad``.
    max_batch_size:
        Upper bound on requests fused into one forward call.
    max_wait_ms:
        How long a batch may wait for co-riders after its first request.
    pad_value:
        Fill value for axis-0 padding of rank >= 2 groups.
    slice_padded_outputs:
        Contract for padded variable-length groups.  ``True`` (default)
        declares that the model preserves the leading (sequence) axis, so
        each padded request's output is sliced back to its own length.  Set
        ``False`` for models that *reduce* over the sequence axis (pooling,
        classification heads): outputs are then returned unsliced.  This is
        an explicit declaration, not a runtime shape guess — with the wrong
        setting a sequence-reducing model whose feature width happens to
        equal the padded length would be silently truncated.
    """

    def __init__(
        self,
        model: Module,
        max_batch_size: int = 8,
        max_wait_ms: float = 2.0,
        pad_value: float = 0.0,
        slice_padded_outputs: bool = True,
    ) -> None:
        if int(max_batch_size) < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size!r}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms!r}")
        self.model = model
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self.pad_value = pad_value
        self.slice_padded_outputs = bool(slice_padded_outputs)
        self._queue: queue.Queue = queue.Queue()
        self._closed = False
        self._lock = threading.Lock()
        self._stats = {
            "requests": 0,
            "batches": 0,
            "batched_requests": 0,
            "padded_requests": 0,
            "failed_requests": 0,
            "max_batch": 0,
        }
        self._driver = threading.Thread(target=self._drive, name="repro-serving", daemon=True)
        self._driver.start()

    # ------------------------------------------------------------------
    # lifecycle / convenience construction
    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls,
        path: str,
        model_factory: Callable[[], Module],
        mmap: bool = True,
        serving_mode: str = "streaming",
        block_channels: Optional[int] = None,
        prefetch: Optional[bool] = True,
        **engine_kwargs,
    ) -> "ServingEngine":
        """The full cold-start wiring: mmap load → serving mode → engine.

        Loads the packed checkpoint zero-copy (codes paged on first touch),
        puts every wrapper into ``serving_mode`` with the requested block
        size and prefetch setting, and returns a running engine.
        """
        # local import: repro.serialization pulls the quantization workflow,
        # which this module must not require at import time
        from repro.quantization.workflow import set_serving_mode
        from repro.serialization import load_quantized

        model = load_quantized(path, model_factory, mmap=mmap)
        set_serving_mode(model, serving_mode, block_channels=block_channels, prefetch=prefetch)
        return cls(model, **engine_kwargs)

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Stop accepting requests, serve everything already queued, stop the driver."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            # under the same lock submit() uses: the sentinel is guaranteed
            # to sit behind every accepted request, so the driver drains all
            # of them before exiting
            self._queue.put(_SHUTDOWN)
        self._driver.join(timeout=timeout)

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # request API
    # ------------------------------------------------------------------
    def submit(self, sample) -> Future:
        """Enqueue one sample; the Future resolves to its output array."""
        if isinstance(sample, Tensor):
            sample = sample.data
        sample = np.asarray(sample)
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot submit to a closed ServingEngine")
            self._stats["requests"] += 1
            # enqueue under the lock: close() flips _closed and enqueues its
            # shutdown sentinel under the same lock, so a request that passed
            # the check above can never land behind the sentinel (which would
            # leave its future unresolved after the driver exits)
            self._queue.put(_Request(sample, future))
        return future

    def serve(self, sample, timeout: Optional[float] = None) -> np.ndarray:
        """Blocking single-request convenience: submit + wait."""
        return self.submit(sample).result(timeout=timeout)

    def serve_batch(self, samples: Sequence, timeout: Optional[float] = None) -> List[np.ndarray]:
        """Submit a burst of samples and wait for all results (input order)."""
        futures = [self.submit(sample) for sample in samples]
        return [future.result(timeout=timeout) for future in futures]

    @property
    def stats(self) -> dict:
        """Snapshot of served-traffic counters (requests, batches, padding...)."""
        with self._lock:
            snapshot = dict(self._stats)
        snapshot["mean_batch"] = (
            snapshot["batched_requests"] / snapshot["batches"] if snapshot["batches"] else 0.0
        )
        return snapshot

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def _drive(self) -> None:
        shutting_down = False
        while True:
            if shutting_down:
                # keep draining: everything submitted before close() is served
                try:
                    first = self._queue.get_nowait()
                except queue.Empty:
                    return
            else:
                # block until traffic arrives — close() always wakes us by
                # enqueueing the sentinel, so no idle polling is needed
                first = self._queue.get()
            if first is _SHUTDOWN:
                shutting_down = True
                continue
            batch = [first]
            deadline = time.monotonic() + self.max_wait_s
            while len(batch) < self.max_batch_size:
                if shutting_down:
                    # no new arrivals can come after close(): just drain
                    try:
                        item = self._queue.get_nowait()
                    except queue.Empty:
                        break
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    try:
                        item = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                if item is _SHUTDOWN:
                    shutting_down = True
                    continue
                batch.append(item)
            self._serve_groups(batch)

    def _serve_groups(self, batch: List[_Request]) -> None:
        groups: dict = {}
        for request in batch:
            groups.setdefault(_compat_key(request.sample), []).append(request)
        for requests in groups.values():
            self._forward_group(requests)

    def _forward_group(self, requests: List[_Request]) -> None:
        # transition every future to RUNNING; a request cancelled while it
        # waited in the queue is dropped here (and a RUNNING future can no
        # longer be cancelled, so set_result/set_exception below cannot hit
        # InvalidStateError and kill the driver thread)
        requests = [r for r in requests if r.future.set_running_or_notify_cancel()]
        if not requests:
            return
        samples = [request.sample for request in requests]
        lengths = [sample.shape[0] if sample.ndim else 0 for sample in samples]
        padded = samples[0].ndim >= 2 and len(set(lengths)) > 1
        try:
            if padded:
                target = max(lengths)
                stacked = np.full(
                    (len(samples), target) + samples[0].shape[1:],
                    self.pad_value,
                    dtype=samples[0].dtype,
                )
                for row, sample in zip(stacked, samples):
                    row[: sample.shape[0]] = sample
            else:
                stacked = np.stack(samples)
            with no_grad():
                output = self.model(Tensor(stacked))
            output = output.data if isinstance(output, Tensor) else np.asarray(output)
            if output.shape[0] != len(samples):
                raise RuntimeError(
                    f"model returned leading dimension {output.shape[0]} for a batch of "
                    f"{len(samples)} requests; the served model must preserve the batch axis"
                )
        except BaseException as exc:  # noqa: BLE001 - failures belong to the futures
            with self._lock:
                self._stats["failed_requests"] += len(requests)
            for request in requests:
                request.future.set_exception(exc)
            return
        # count the batch before resolving any future: a client unblocked by
        # set_result may read .stats immediately and must see this batch
        with self._lock:
            self._stats["batches"] += 1
            self._stats["batched_requests"] += len(requests)
            self._stats["padded_requests"] += len(requests) if padded else 0
            self._stats["max_batch"] = max(self._stats["max_batch"], len(requests))
        for index, request in enumerate(requests):
            row = output[index]
            if padded and self.slice_padded_outputs:
                if row.ndim < 1 or row.shape[0] != stacked.shape[1]:
                    request.future.set_exception(
                        RuntimeError(
                            f"padded group output has leading shape {row.shape}, expected "
                            f"length {stacked.shape[1]}; the served model does not preserve "
                            "the sequence axis — construct the engine with "
                            "slice_padded_outputs=False"
                        )
                    )
                    continue
                row = row[: lengths[index]]
            request.future.set_result(row)
