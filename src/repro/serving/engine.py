"""Continuous-batching serving engine: N workers over per-key request buckets.

Deployment serves many concurrent single-sample requests, but the streaming
weight path pays its decode cost *per forward call* — so the throughput win
is to run one forward for many requests.  :class:`ServingEngine` does exactly
that: callers :meth:`~ServingEngine.submit` individual samples (optionally
with a priority and a deadline) and get a :class:`concurrent.futures.Future`
back; worker threads pull **compatibility groups** from a
:class:`~repro.serving.scheduler.ContinuousScheduler`, stack (or pad) each
group into one batch, run a single forward, and fan the rows back out to the
waiting futures.

Continuous batching
-------------------
Unlike a collect-then-serve loop, admission never stops: requests arriving
while a forward runs land in their compatibility bucket immediately and ride
the *next* forward of that bucket's in-flight stream of groups — there is no
drain barrier, and a mixed-key burst no longer fragments one time window into
several underfilled forwards.  A bucket is handed to a worker when it is full
(``max_batch_size``), when its admission window (``max_wait_ms`` after the
bucket opened) expires, or early when a member's deadline requires it; a lone
request therefore never waits longer than ``max_wait_ms``.  Scheduling order
is priority (higher first), then deadline (earlier first), then arrival; a
request whose deadline passes while still queued fails with
:class:`~repro.serving.scheduler.DeadlineExceeded`.

Multi-worker execution
----------------------
``workers=N`` runs N driver threads.  Pass a sequence of model replicas (one
per worker) to give every worker its own module tree — the intended pattern
is replicas that share one read-only mmap'd checkpoint via
``load_quantized(..., mmap=True, share_views=True)``, so the packed bytes on
disk are mapped exactly once per process no matter how many replicas serve
them (:meth:`ServingEngine.from_checkpoint` wires this).  With a single model
and ``workers>1`` every worker shares it; that is safe for the lock-free
streaming kernels (blocked Linear matmul, Embedding gather-decode — they only
read ``weight_q``) but not for wrappers that rebind transient weight caches
in their forward.  Forwards run under the thread-local ``no_grad``.

``worker_mode="process"`` swaps the execution tier under the same scheduler:
each worker slot becomes a worker *process* (building its own replica — for
checkpoints, by re-running ``load_quantized(path, ..., mmap=True)`` in its
own address space, which the OS page cache makes nearly free) plus a parent
dispatcher thread that ships each batch over a pickle pipe
(:mod:`repro.serving.ipc`).  That escapes the GIL for CPU-bound forwards and
extends crash isolation to failures no ``except`` clause ever sees — a
native-kernel segfault, an OOM kill, ``SIGKILL`` — while keeping results
bit-identical and every supervision/retry/overload contract unchanged.

Compatibility and padding
-------------------------
Two samples can share a forward call when stacking them is meaningful:

* rank-0/rank-1 samples (feature vectors) must have identical shapes and are
  stacked along a new leading axis;
* rank >= 2 samples (e.g. ``(seq_len, features)``) must agree on every
  dimension except the first; shorter samples are padded along axis 0 with
  ``pad_value`` up to the group's maximum length, and each output is sliced
  back to its own length.  Slicing assumes the model preserves the leading
  axis — declare ``slice_padded_outputs=False`` for models that reduce over
  it (outputs are then handed back unsliced).

Cancelling a submitted future is safe: a request cancelled while queued is
skipped when its group is served (workers mark futures RUNNING before the
forward, after which cancellation is no longer possible).

Observability: :attr:`ServingEngine.stats` reports counters plus queue-wait
and forward-time percentiles (p50/p95) and per-group occupancy, so admission
behaviour is visible, not inferred.

Fault tolerance
---------------
Worker threads are *supervised*: a supervisor thread watches every worker
slot and, when a worker dies mid-forward (or exceeds the hung-forward
timeout), recovers its in-flight group — requests with retry budget
(``SubmitOptions(max_retries=...)``) are requeued with exponential backoff
and re-run bit-identically on a restarted worker sharing the same replica;
requests without budget fail fast with a typed
:class:`~repro.serving.errors.WorkerCrashed` carrying the crash as its
``__cause__``.  Ordinary forward exceptions stay scoped to the failing
group: its futures reject with the original exception (or retry, with
budget), other compatibility buckets keep being served.  Overload control is
delegated to the scheduler: ``max_queue_depth`` bounds the queue
(:class:`~repro.serving.errors.QueueFull` fast-fail at admission, or
lowest-priority-first shedding with ``shed_policy="priority"``), and
:meth:`ServingEngine.drain` flips the engine into a drain-then-reject state
ahead of shutdown.  Every recovery path here is exercised deterministically
through :mod:`repro.serving.faults`.

The engine never touches serving modes itself; combine it with
``load_quantized(..., mmap=True)`` and ``set_serving_mode(model,
"streaming", prefetch="pipeline")`` (or use
:meth:`ServingEngine.from_checkpoint`, which wires all three) for the full
cold-start-to-throughput path.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import os
import pickle
import signal
import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.nn.module import Module
from repro.serving import faults, ipc
from repro.serving.api import (
    GenerationRequest,
    SubmitOptions,
    resolve_submit_options,
    validate_worker_mode,
)
from repro.serving.errors import (
    EngineClosed,
    EngineDraining,
    EngineFailed,
    QueueFull,
    WorkerCrashed,
)
from repro.serving.generation import GenerationDriver, GenerationStream
from repro.serving.scheduler import ContinuousScheduler, Request, compat_key
from repro.serving.worker_proc import WorkerSpec, worker_main

__all__ = ["ServingEngine"]

#: how many recent samples the latency/occupancy reservoirs keep
_STATS_WINDOW = 2048


def _percentiles_ms(values: Sequence[float]) -> tuple:
    if not values:
        return 0.0, 0.0
    p50, p95 = np.percentile(np.asarray(values, dtype=np.float64), [50.0, 95.0])
    return float(p50) * 1e3, float(p95) * 1e3


def _describe_exit(exitcode: Optional[int]) -> str:
    if exitcode is None:
        return "exit code unknown"
    if exitcode < 0:
        try:
            name = signal.Signals(-exitcode).name
        except ValueError:
            name = f"signal {-exitcode}"
        return f"killed by {name}"
    return f"exit code {exitcode}"


class _WorkerSlot:
    """One worker thread plus the state its supervisor reads.

    ``inflight`` holds the compatibility group the worker is forwarding right
    now — on a crash it stays populated, and the supervisor owns recovering
    those requests.  ``finished`` marks a clean exit (scheduler drained after
    close); ``abandoned`` marks a hung worker the supervisor has written off:
    its thread may still be running, but it must stop pulling groups, and any
    late result it produces loses the future-resolution race harmlessly.
    """

    kind = "thread"

    __slots__ = (
        "index",
        "replica",
        "thread",
        "inflight",
        "forward_started",
        "crash_exc",
        "finished",
        "abandoned",
    )

    def __init__(self, index: int, replica: Optional[Module]) -> None:
        self.index = index
        self.replica = replica
        self.thread: Optional[threading.Thread] = None
        self.inflight: Tuple[Request, ...] = ()
        self.forward_started: Optional[float] = None
        self.crash_exc: Optional[BaseException] = None
        self.finished = False
        self.abandoned = False


class _ProcessSlot(_WorkerSlot):
    """A worker *process* plus the parent dispatcher thread that drives it.

    ``thread`` (inherited) is the dispatcher: it pulls groups from the
    scheduler exactly like a thread worker, but ships each batch over the
    IPC channel instead of calling the model — the model lives only in the
    child (``replica`` stays ``None``).  A dead pipe raises
    :class:`~repro.serving.ipc.WorkerProcessDied` (a ``BaseException``),
    killing the dispatcher so the supervisor's existing crash recovery runs
    for a process death exactly as it does for a thread death.
    """

    kind = "process"

    __slots__ = ("proc", "channel", "ready", "ready_info", "init_failed", "seq", "last_exitcode")

    def __init__(self, index: int) -> None:
        super().__init__(index, None)
        self.proc = None
        self.channel: Optional[ipc.Channel] = None
        self.ready = False
        self.ready_info: dict = {}
        self.init_failed = False
        self.seq = 0
        self.last_exitcode: Optional[int] = None

    def kill(self) -> None:
        """SIGKILL the child — the hard-death handle the ``kill`` fault calls."""
        proc = self.proc
        if proc is not None and proc.pid is not None:
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass

    def reap(self, timeout: float = 5.0) -> Optional[int]:
        """Ensure the child is dead *and* waited on (never a zombie); return its exit code.

        Escalates join → terminate → kill, then releases the process object.
        Idempotent: after the first reap the slot holds only the exit code.
        """
        proc = self.proc
        if proc is None:
            return self.last_exitcode
        if self.channel is not None:
            self.channel.close()
        proc.join(timeout)
        if proc.is_alive():
            proc.terminate()
            proc.join(1.0)
        if proc.is_alive():
            proc.kill()
            proc.join(5.0)
        self.last_exitcode = proc.exitcode
        self.proc = None
        try:
            proc.close()
        except Exception:
            pass
        return self.last_exitcode

    def shutdown_child(self, timeout: float = 5.0) -> None:
        """Graceful drain-side shutdown: ask nicely, then reap regardless."""
        try:
            if self.channel is not None:
                self.channel.send("shutdown")
        except ipc.WorkerProcessDied:
            pass
        self.reap(timeout)


class ServingEngine:
    """Request queue + continuous batcher + N worker threads around served models.

    Parameters
    ----------
    model:
        The served model, or a sequence of model replicas (one per worker;
        typically converted + deployed — any callable ``Module`` works).
        Every forward runs under the thread-local ``no_grad``.
    max_batch_size:
        Upper bound on requests fused into one forward call.
    max_wait_ms:
        Admission window: how long a compatibility bucket may wait for
        co-riders after its first request.
    pad_value:
        Fill value for axis-0 padding of rank >= 2 groups.
    slice_padded_outputs:
        Contract for padded variable-length groups.  ``True`` (default)
        declares that the model preserves the leading (sequence) axis, so
        each padded request's output is sliced back to its own length.  Set
        ``False`` for models that *reduce* over the sequence axis (pooling,
        classification heads): outputs are then returned unsliced.  This is
        an explicit declaration, not a runtime shape guess — with the wrong
        setting a sequence-reducing model whose feature width happens to
        equal the padded length would be silently truncated.
    workers:
        Number of driver threads.  Defaults to one per replica (1 for a
        single model).  With a single model and ``workers>1`` all workers
        share it (see the module docstring for the thread-safety contract).
    plan_cache:
        Compiled-plan dispatch for worker forwards (see :mod:`repro.graph`).
        ``"auto"`` (default) installs a plan cache on each distinct replica:
        the first forward for a scheduler compat-key traces and compiles a
        fused plan, and steady-state batched traffic replays it with zero
        per-layer Python dispatch (plan lookup is thread-safe; replay buffers
        are per-thread, so shared-model workers replay concurrently).  Eager
        execution remains the fallback — and the bit-exactness oracle — for
        untraceable models, so ``"auto"`` is always safe.  ``False`` disables
        plan dispatch entirely.  Aggregated cache counters appear in
        :attr:`stats` under ``"plan_cache"``.
    decode_slots:
        KV-cache row budget of the generation tier (see :meth:`generate`):
        how many beams may decode concurrently before new arrivals queue or
        preempt.  The decode state is allocated lazily on the first
        ``generate`` call, so non-generating engines pay nothing.
    decode_memory_budget:
        Optional cap in **bytes** on per-storage decode-state memory; when
        given, ``decode_slots`` is lowered to ``budget // row_nbytes`` (the
        cost of one float32 cache row at full capacity).
    generation_admission:
        ``"continuous"`` (default) co-batches prefills of new generation
        requests with decode steps of in-flight ones each tick;
        ``"drain"`` admits new requests only once the running set empties —
        the lock-step baseline ``benchmarks/bench_generation.py`` measures
        against.
    max_queue_depth:
        Optional cap on queued one-shot requests.  At the cap, admission
        fast-fails with :class:`~repro.serving.errors.QueueFull` (or sheds
        under ``shed_policy="priority"``) instead of growing latency without
        bound.
    shed_policy:
        ``"reject"`` (default) or ``"priority"`` — see
        :class:`~repro.serving.scheduler.ContinuousScheduler`.
    hung_forward_timeout_ms:
        When set, a worker whose single forward exceeds this budget is
        *abandoned*: its in-flight requests are recovered (retried or failed
        with :class:`~repro.serving.errors.WorkerCrashed`) and a replacement
        worker takes over its slot.  ``None`` (default) disables hang
        detection — a legitimate forward can be arbitrarily slow, so this
        must be sized against measured forward cost, not guessed.
    restart_crashed_workers:
        ``True`` (default): the supervisor restarts a dead worker against the
        same (shared mmap) replica, preserving serving capacity.  ``False``
        leaves the slot dead after recovering its requests.
    supervision_interval_ms:
        Supervisor polling period — bounds crash-detection latency.
    worker_mode:
        ``"thread"`` (default): N driver threads over shared/replicated
        models — zero IPC cost, GIL-bound, supports :meth:`generate`.
        ``"process"``: N worker *processes*, each building its own replica
        (from the checkpoint via :meth:`from_checkpoint`, or from this
        pickled template model) and serving batches over a pipe — GIL-free
        scale-out whose crash isolation extends to native-tier segfaults,
        OOM kills and ``SIGKILL``: any process death surfaces as the same
        :class:`~repro.serving.errors.WorkerCrashed` + requeue + restart
        flow as a thread death.  Results are bit-identical to thread/cached
        mode (same kernels, same replica build).  One-shot forwards only in
        this mode; :meth:`generate` raises ``ValueError``.
    worker_start_method:
        ``multiprocessing`` start method for process workers (``"spawn"``
        default — safest with threads; ``"fork"``/``"forkserver"`` where the
        platform supports them; the container layer re-inits its mapping
        cache after a fork either way).
    max_worker_restarts:
        Crash-loop containment for **both** worker modes: how many
        supervisor restarts the rolling ``restart_window_s`` window admits.
        On exhaustion the engine stops restarting, fails all pending
        requests with :class:`~repro.serving.errors.EngineFailed` (cause
        chained) and ``stats()["state"]`` reads ``"failed"`` — restarting
        harder cannot heal a replica that kills every worker.  ``None``
        (default) keeps the pre-PR-10 behaviour: unlimited restarts.
    restart_window_s:
        Length of the rolling restart-rate window (seconds).
    worker_spec:
        Internal (used by :meth:`from_checkpoint`): how worker processes
        build their replica; overrides pickling the template model.
    """

    #: consecutive process-worker deaths *before the ready handshake* that
    #: fail the engine even with unlimited restarts — a child that cannot
    #: start will not be fixed by starting another one
    _MAX_NEVER_READY_DEATHS = 3

    def __init__(
        self,
        model: Union[Module, Sequence[Module]],
        max_batch_size: int = 8,
        max_wait_ms: float = 2.0,
        pad_value: float = 0.0,
        slice_padded_outputs: bool = True,
        workers: Optional[int] = None,
        plan_cache: Union[str, bool] = "auto",
        decode_slots: int = 16,
        decode_memory_budget: Optional[int] = None,
        generation_admission: str = "continuous",
        max_queue_depth: Optional[int] = None,
        shed_policy: str = "reject",
        hung_forward_timeout_ms: Optional[float] = None,
        restart_crashed_workers: bool = True,
        supervision_interval_ms: float = 20.0,
        worker_mode: str = "thread",
        worker_start_method: str = "spawn",
        max_worker_restarts: Optional[int] = None,
        restart_window_s: float = 30.0,
        worker_spec: Optional[WorkerSpec] = None,
    ) -> None:
        worker_mode = validate_worker_mode(worker_mode)
        if isinstance(model, Module):
            replicas = [model]
        else:
            replicas = list(model)
            if not replicas or not all(isinstance(m, Module) for m in replicas):
                raise TypeError("model must be a Module or a non-empty sequence of Modules")
        if workers is None:
            workers = len(replicas)
        if int(workers) < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        workers = int(workers)
        if worker_mode == "process":
            if len(replicas) != 1:
                raise ValueError(
                    "worker_mode='process' takes a single template model — worker "
                    "processes build their own replicas (from the checkpoint or the "
                    "pickled template), so per-worker replica lists are thread-mode only"
                )
        elif len(replicas) == 1:
            replicas = replicas * workers
        elif len(replicas) != workers:
            raise ValueError(
                f"got {len(replicas)} replicas for {workers} workers; pass a single "
                "model (shared by every worker) or exactly one replica per worker"
            )
        if int(max_batch_size) < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size!r}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms!r}")
        if plan_cache not in ("auto", True, False):
            raise ValueError(f"plan_cache must be 'auto', True or False, got {plan_cache!r}")
        if int(decode_slots) < 1:
            raise ValueError(f"decode_slots must be >= 1, got {decode_slots!r}")
        if generation_admission not in ("continuous", "drain"):
            raise ValueError(
                f"generation_admission must be 'continuous' or 'drain', got {generation_admission!r}"
            )
        if hung_forward_timeout_ms is not None and hung_forward_timeout_ms <= 0:
            raise ValueError(
                f"hung_forward_timeout_ms must be > 0, got {hung_forward_timeout_ms!r}"
            )
        if supervision_interval_ms <= 0:
            raise ValueError(
                f"supervision_interval_ms must be > 0, got {supervision_interval_ms!r}"
            )
        if max_worker_restarts is not None and int(max_worker_restarts) < 0:
            raise ValueError(
                f"max_worker_restarts must be >= 0 or None, got {max_worker_restarts!r}"
            )
        if restart_window_s <= 0:
            raise ValueError(f"restart_window_s must be > 0, got {restart_window_s!r}")
        self.model = replicas[0]
        self.replicas: List[Module] = replicas
        self.workers = workers
        self.worker_mode = worker_mode
        self._plan_caches = []
        # process mode installs no parent-side plan caches: each worker
        # process traces/compiles its own (the spec carries the setting)
        if plan_cache and worker_mode != "process":
            # lazy import: serving stays importable without the graph package
            from repro.graph import install_plan_cache

            seen = set()
            for replica in replicas:
                if id(replica) in seen:
                    continue  # shared-model workers share one cache too
                seen.add(id(replica))
                self._plan_caches.append(install_plan_cache(replica))
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self.pad_value = pad_value
        self.slice_padded_outputs = bool(slice_padded_outputs)
        self.decode_slots = int(decode_slots)
        self.decode_memory_budget = decode_memory_budget
        self.generation_admission = generation_admission
        self.max_queue_depth = None if max_queue_depth is None else int(max_queue_depth)
        self.shed_policy = shed_policy
        self.hung_forward_timeout_s = (
            None if hung_forward_timeout_ms is None else float(hung_forward_timeout_ms) / 1000.0
        )
        self.restart_crashed_workers = bool(restart_crashed_workers)
        self.supervision_interval_s = float(supervision_interval_ms) / 1000.0
        self.max_worker_restarts = (
            None if max_worker_restarts is None else int(max_worker_restarts)
        )
        self.restart_window_s = float(restart_window_s)
        self._restart_times: deque = deque()
        self._never_ready_deaths = 0
        self._failure_cause: Optional[BaseException] = None
        self._generation_driver: Optional[GenerationDriver] = None
        self._state = "serving"
        self._lock = threading.Lock()
        self._order = itertools.count()
        self._stats = {
            "requests": 0,
            "batches": 0,
            "batched_requests": 0,
            "padded_requests": 0,
            "failed_requests": 0,
            "expired_requests": 0,
            "max_batch": 0,
            "worker_crashes": 0,
            "worker_restarts": 0,
            "hung_workers": 0,
            "retried_requests": 0,
            "shed_requests": 0,
            "rejected_requests": 0,
        }
        self._queue_wait_s: deque = deque(maxlen=_STATS_WINDOW)
        self._forward_s: deque = deque(maxlen=_STATS_WINDOW)
        self._group_sizes: deque = deque(maxlen=_STATS_WINDOW)
        self._scheduler = ContinuousScheduler(
            self.max_batch_size,
            self.max_wait_s,
            on_expired=self._note_expired,
            max_queue_depth=self.max_queue_depth,
            shed_policy=self.shed_policy,
            on_shed=self._note_shed,
        )
        #: (due time, tiebreak, request) — requests backing off before a retry
        self._retry_heap: List[Tuple[float, int, Request]] = []
        self._retry_seq = itertools.count()
        self._worker_spec: Optional[WorkerSpec] = None
        self._mp_ctx = None
        if worker_mode == "process":
            self._mp_ctx = multiprocessing.get_context(worker_start_method)
            if worker_spec is not None:
                self._worker_spec = worker_spec
            else:
                # fail fast in the constructor, not in N children: the
                # template must cross the process boundary
                try:
                    blob = pickle.dumps(self.model)
                except Exception as exc:
                    raise TypeError(
                        "worker_mode='process' requires a picklable model — or use "
                        "ServingEngine.from_checkpoint(..., worker_mode='process'), "
                        "which ships the checkpoint path instead of the model"
                    ) from exc
                self._worker_spec = WorkerSpec(
                    model_pickle=blob, plan_cache=bool(plan_cache)
                )
            self._slots: List[_WorkerSlot] = [
                self._start_process_slot(index) for index in range(workers)
            ]
        else:
            self._slots = [
                self._start_slot(index, replica) for index, replica in enumerate(replicas)
            ]
        self._stop_supervisor = threading.Event()
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-serving-supervisor", daemon=True
        )
        self._supervisor.start()

    # ------------------------------------------------------------------
    # lifecycle / convenience construction
    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls,
        path: str,
        model_factory: Callable[[], Module],
        mmap: bool = True,
        serving_mode: str = "streaming",
        block_channels: Optional[int] = None,
        prefetch: Union[bool, str, None] = True,
        workers: int = 1,
        worker_mode: str = "thread",
        **engine_kwargs,
    ) -> "ServingEngine":
        """The full cold-start wiring: mmap load → serving mode → engine.

        ``worker_mode="thread"`` (default) loads ``workers`` replicas of the
        packed checkpoint zero-copy (codes paged on first touch; with
        ``workers > 1`` and ``mmap=True`` the replicas share **one** file
        mapping via ``share_views=True``, so the packed bytes are mapped
        exactly once per process), puts every wrapper into ``serving_mode``
        with the requested block size and prefetch setting
        (``prefetch="pipeline"`` enables cross-layer pipelined block decode),
        and returns a running engine with one worker per replica.

        ``worker_mode="process"`` instead ships the *checkpoint path* to
        ``workers`` worker processes: each child re-runs
        ``load_quantized(path, model_factory, mmap=True)`` in its own address
        space (one mapping per process; the OS page cache shares the packed
        bytes machine-wide, so N processes still cost one physical copy) and
        serves batches over IPC — crash-isolated and GIL-free.
        ``model_factory`` must then be picklable (a module-level callable,
        not a lambda), because the spec crosses the process boundary.  The
        parent keeps one replica of its own as ``engine.model`` for
        inspection; it never serves requests.
        """
        # local import: repro.serialization pulls the quantization workflow,
        # which this module must not require at import time
        from repro.quantization.workflow import set_serving_mode
        from repro.serialization import load_quantized

        worker_mode = validate_worker_mode(worker_mode)
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        if worker_mode == "process":
            spec = WorkerSpec(
                checkpoint_path=os.fspath(path),
                model_factory=model_factory,
                mmap=bool(mmap),
                serving_mode=serving_mode,
                block_channels=block_channels,
                prefetch=prefetch,
                plan_cache=bool(engine_kwargs.get("plan_cache", "auto")),
            )
            template = load_quantized(path, model_factory, mmap=mmap)
            set_serving_mode(
                template, serving_mode, block_channels=block_channels, prefetch=prefetch
            )
            return cls(
                template,
                workers=workers,
                worker_mode="process",
                worker_spec=spec,
                **engine_kwargs,
            )
        replicas = []
        for _ in range(workers):
            replica = load_quantized(
                path, model_factory, mmap=mmap, share_views=bool(mmap) and workers > 1
            )
            set_serving_mode(
                replica, serving_mode, block_channels=block_channels, prefetch=prefetch
            )
            replicas.append(replica)
        return cls(replicas if workers > 1 else replicas[0], workers=workers, **engine_kwargs)

    def drain(self) -> None:
        """Stop admitting new work but keep serving everything already queued.

        The graceful half of shutdown: new :meth:`submit`/:meth:`generate`
        calls fail fast with :class:`~repro.serving.errors.EngineDraining`
        while queued and in-flight work runs to completion; follow with
        :meth:`close` once :attr:`stats`'s ``pending`` reaches zero (or on a
        deadline).  Irreversible, idempotent, a no-op after ``close()``.
        """
        with self._lock:
            if self._state == "serving":
                self._state = "draining"

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Stop accepting requests, serve everything already queued, stop the workers.

        Idempotent, and every call blocks until the workers have drained (or
        ``timeout`` expires) — a second concurrent ``close()`` returning is
        the same quiescence guarantee as the first.  The supervisor keeps
        recovering crashed workers *during* the drain, so a worker death
        mid-drain no longer hangs the caller; once ``timeout`` expires, any
        request still unresolved (queued, backing off before a retry, or
        in-flight on a dead/hung worker) fails with
        :class:`~repro.serving.errors.WorkerCrashed` — close never returns
        with a hung future outstanding.
        """
        with self._lock:
            self._state = "closed"
            driver = self._generation_driver
        # admission stops under the same lock submit() uses, so nothing can
        # land in the scheduler after close(); workers drain what is queued
        self._scheduler.close()
        deadline = None if timeout is None else time.monotonic() + timeout
        if driver is not None:
            driver.close(timeout=1e9 if timeout is None else timeout)
        for slot in list(self._slots):
            thread = slot.thread
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            if thread is not None:
                thread.join(timeout=remaining)
        self._stop_supervisor.set()
        self._supervisor.join(timeout=self.supervision_interval_s + 5.0)
        # failsafe: whatever could not drain — queued requests, retries still
        # backing off, groups in-flight on dead or hung workers — must not
        # leave a caller blocked on a future that can no longer resolve
        leftovers = self._scheduler.drain_pending()
        with self._lock:
            while self._retry_heap:
                leftovers.append(heapq.heappop(self._retry_heap)[2])
        for slot in list(self._slots):
            leftovers.extend(slot.inflight)
            slot.inflight = ()
        failed = 0
        for request in leftovers:
            failed += request.fail(
                WorkerCrashed(
                    "engine closed before this request was served "
                    "(drain timed out or its worker died)"
                )
            )
        if failed:
            with self._lock:
                self._stats["failed_requests"] += failed
        # zero-zombie guarantee: every worker process is dead *and* waited on
        # before close() returns (the drained dispatchers already shut their
        # children down; this catches drain timeouts and crashed dispatchers)
        for slot in list(self._slots):
            if isinstance(slot, _ProcessSlot):
                remaining = (
                    5.0 if deadline is None else max(0.5, deadline - time.monotonic())
                )
                slot.reap(timeout=remaining)

    @property
    def state(self) -> str:
        """``"serving"``, ``"draining"``, ``"failed"`` or ``"closed"``."""
        with self._lock:
            return self._state

    @property
    def alive_workers(self) -> int:
        """How many workers are currently serving (for liveness checks).

        A process worker counts only while *both* halves live: its parent
        dispatcher thread and the worker process itself.
        """
        alive = 0
        for slot in self._slots:
            if slot.abandoned or slot.thread is None or not slot.thread.is_alive():
                continue
            if isinstance(slot, _ProcessSlot):
                proc = slot.proc
                if proc is None or not proc.is_alive():
                    continue
            alive += 1
        return alive

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # request API
    # ------------------------------------------------------------------
    def submit(
        self,
        sample,
        options: Optional[SubmitOptions] = None,
        *,
        priority: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> Future:
        """Enqueue one sample; the Future resolves to its output array.

        ``options`` is a :class:`~repro.serving.api.SubmitOptions`:
        ``priority`` orders scheduling (higher served first); ``deadline_ms``
        is a queue-time budget — the bucket closes early to start the forward
        before the deadline, and a request still queued past it fails with
        :class:`~repro.serving.errors.DeadlineExceeded`.  ``max_retries`` /
        ``retry_backoff_ms`` budget transparent re-runs after a worker crash
        or transient forward error (exhausted budget fails the future with
        :class:`~repro.serving.errors.WorkerCrashed`, or the original
        exception for ordinary forward errors).  Admission can fail fast:
        :class:`~repro.serving.errors.EngineClosed` /
        :class:`~repro.serving.errors.EngineDraining` by lifecycle state,
        :class:`~repro.serving.errors.QueueFull` at the queue-depth cap.  The
        bare ``priority=``/``deadline_ms=`` kwargs are deprecated shims (a
        zero or negative deadline budget can never be met, so it is rejected
        loudly instead of guaranteeing a DeadlineExceeded).
        """
        options = resolve_submit_options(options, priority, deadline_ms, "submit")
        if isinstance(sample, Tensor):
            sample = sample.data
        sample = np.asarray(sample)
        future: Future = Future()
        now = time.monotonic()
        request = Request(
            sample,
            future,
            priority=options.priority,
            deadline=(
                None if options.deadline_ms is None else now + float(options.deadline_ms) / 1000.0
            ),
            submitted=now,
            key=compat_key(sample),
            order=next(self._order),
            max_retries=options.max_retries,
            retry_backoff_s=float(options.retry_backoff_ms) / 1000.0,
        )
        with self._lock:
            if self._state == "closed":
                raise EngineClosed("cannot submit to a closed ServingEngine")
            if self._state == "failed":
                raise self._failed_error_locked()
            if self._state == "draining":
                raise EngineDraining(
                    "engine is draining toward shutdown; new requests are rejected"
                )
        # admit outside the engine lock: shedding resolves a victim's future,
        # which may run client callbacks that read engine stats (same lock)
        try:
            self._scheduler.add(request)
        except EngineClosed:
            # close() won the race between our state check and admission
            raise EngineClosed("cannot submit to a closed ServingEngine") from None
        except QueueFull:
            with self._lock:
                self._stats["rejected_requests"] += 1
            raise
        with self._lock:
            self._stats["requests"] += 1
        return future

    def serve(
        self,
        sample,
        options: Optional[SubmitOptions] = None,
        timeout: Optional[float] = None,
        *,
        priority: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> np.ndarray:
        """Blocking single-request convenience: submit + wait."""
        options = resolve_submit_options(options, priority, deadline_ms, "serve")
        return self.submit(sample, options).result(timeout=timeout)

    def serve_batch(
        self,
        samples: Sequence,
        options: Optional[SubmitOptions] = None,
        timeout: Optional[float] = None,
        *,
        priority: Optional[int] = None,
        deadline_ms: Optional[float] = None,
    ) -> List[np.ndarray]:
        """Submit a burst of samples and wait for all results (input order).

        ``timeout`` is a **shared deadline** for the whole burst, not a
        per-future allowance: waiting for result *k* consumes budget from the
        same clock as result *k+1*, so the call never blocks longer than
        ``timeout`` in total (it used to wait up to ``timeout × len(samples)``).
        """
        options = resolve_submit_options(options, priority, deadline_ms, "serve_batch")
        futures = [self.submit(sample, options) for sample in samples]
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        results = []
        for future in futures:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            results.append(future.result(timeout=remaining))
        return results

    def generate(
        self,
        prompt,
        request: Optional[GenerationRequest] = None,
    ) -> Union[Future, GenerationStream]:
        """Queue an autoregressive generation; decode steps batch across requests.

        ``prompt`` is a 1D token array (or single-row 2D array / Tensor);
        ``request`` a :class:`~repro.serving.api.GenerationRequest`.  Returns
        a :class:`~concurrent.futures.Future` resolving to the full sequence
        (prompt + continuation, best beam), or a
        :class:`~repro.serving.generation.GenerationStream` token iterator
        when ``request.stream``.  Generation runs on the engine's primary
        model through its per-request KV cache
        (``request.kv_cache="float32"`` exact, or an FP8 format name for a
        packed quantized cache) and stops per sequence on EOS,
        ``max_new_tokens`` or the model's ``max_seq_len``.  In-flight decode
        steps and new prefills co-batch each scheduler tick; when more than
        ``decode_slots`` beams are in flight, lower-priority sequences are
        preempted (cache rows released, decoded tokens kept) and restored
        later by replaying prompt+suffix as one prefill.
        """
        if self.worker_mode == "process":
            raise ValueError(
                "generate() is not supported under worker_mode='process' (the decode "
                "state lives parent-side); build the engine with worker_mode='thread' "
                "for generation workloads"
            )
        # local import: repro.serving must stay importable without the model zoo
        from repro.models.transformer import coerce_prompt

        request = (request if request is not None else GenerationRequest()).validated()
        max_seq_len = getattr(self.model, "max_seq_len", None)
        if max_seq_len is None:
            raise TypeError(
                f"{type(self.model).__name__} does not support generation "
                "(needs max_seq_len/new_decode_state/forward_step, e.g. GPTStyleLM)"
            )
        prompt = coerce_prompt(prompt, max_seq_len)
        if prompt.size >= max_seq_len:
            raise ValueError(
                f"prompt of {prompt.size} tokens leaves no room to generate within "
                f"max_seq_len={max_seq_len}"
            )
        with self._lock:
            if self._state == "closed":
                raise EngineClosed("cannot submit to a closed ServingEngine")
            if self._state == "failed":
                raise self._failed_error_locked()
            if self._state == "draining":
                raise EngineDraining(
                    "engine is draining toward shutdown; new requests are rejected"
                )
            driver = self._generation_driver
            if driver is None or driver.crashed:
                # a crashed tick thread failed every open session; later
                # arrivals get a fresh driver instead of a dead letterbox
                driver = GenerationDriver(
                    self.model,
                    slots=self.decode_slots,
                    admission=self.generation_admission,
                    memory_budget=self.decode_memory_budget,
                    max_waiting=self.max_queue_depth,
                )
                self._generation_driver = driver
        try:
            session = driver.submit(prompt, request)
        except QueueFull:
            with self._lock:
                self._stats["rejected_requests"] += 1
            raise
        return session.stream if request.stream else session.future

    @property
    def stats(self) -> dict:
        """Snapshot of served-traffic counters plus latency/occupancy metrics.

        Beyond the raw counters: ``queue_wait_p50_ms``/``queue_wait_p95_ms``
        (submit → forward start), ``forward_p50_ms``/``forward_p95_ms`` (model
        call alone) and ``occupancy_mean`` (mean group size as a fraction of
        ``max_batch_size``) over a sliding window of recent groups.
        """
        with self._lock:
            snapshot = dict(self._stats)
            waits = list(self._queue_wait_s)
            forwards = list(self._forward_s)
            sizes = list(self._group_sizes)
        snapshot["mean_batch"] = (
            snapshot["batched_requests"] / snapshot["batches"] if snapshot["batches"] else 0.0
        )
        snapshot["workers"] = self.workers
        snapshot["alive_workers"] = self.alive_workers
        snapshot["state"] = self.state
        snapshot["worker_mode"] = self.worker_mode
        snapshot["pending"] = self._scheduler.pending()
        if self.worker_mode == "process":
            details = []
            for slot in list(self._slots):
                if not isinstance(slot, _ProcessSlot):
                    continue
                proc = slot.proc
                details.append(
                    {
                        "index": slot.index,
                        "pid": slot.ready_info.get("pid", proc.pid if proc else None),
                        "alive": bool(proc is not None and proc.is_alive()),
                        "ready": slot.ready,
                        "exitcode": slot.last_exitcode,
                        "mapped_files": slot.ready_info.get("mapped_files"),
                    }
                )
            snapshot["process_workers"] = details
        occupancy = float(np.mean(sizes)) / self.max_batch_size if sizes else 0.0
        snapshot["occupancy_mean"] = occupancy
        snapshot["queue_wait_p50_ms"], snapshot["queue_wait_p95_ms"] = _percentiles_ms(waits)
        snapshot["forward_p50_ms"], snapshot["forward_p95_ms"] = _percentiles_ms(forwards)
        if self._plan_caches:
            totals: dict = {}
            for cache in self._plan_caches:
                for key, value in cache.stats().items():
                    totals[key] = totals.get(key, 0) + value
            snapshot["plan_cache"] = totals
        with self._lock:
            driver = self._generation_driver
        if driver is not None:
            snapshot["generation"] = driver.stats
        return snapshot

    def _note_expired(self, count: int) -> None:
        with self._lock:
            self._stats["expired_requests"] += count
            self._stats["failed_requests"] += count

    def _note_shed(self, count: int) -> None:
        with self._lock:
            self._stats["shed_requests"] += count
            self._stats["failed_requests"] += count

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def _start_slot(self, index: int, replica: Module) -> _WorkerSlot:
        slot = _WorkerSlot(index, replica)
        slot.thread = threading.Thread(
            target=self._work,
            args=(slot,),
            name=f"repro-serving-{index}",
            daemon=True,
        )
        slot.thread.start()
        return slot

    def _work(self, slot: _WorkerSlot) -> None:
        try:
            while True:
                group = self._scheduler.next_group()
                if group is None:
                    break
                slot.inflight = tuple(group)
                slot.forward_started = time.monotonic()
                self._forward_group(group, slot)
                slot.inflight = ()
                slot.forward_started = None
                if slot.abandoned:
                    # written off as hung while we were forwarding: a
                    # replacement owns this slot now, so stop pulling groups
                    return
            slot.finished = True
        except BaseException as exc:  # noqa: BLE001 - the supervisor owns recovery
            # a crash (injected or real) leaves slot.inflight populated; the
            # supervisor recovers those requests and restarts the slot.
            # Swallow rather than re-raise: threading.excepthook would only
            # spam stderr for a death that is handled.
            slot.crash_exc = exc

    # -- process workers ------------------------------------------------
    def _start_process_slot(self, index: int) -> _ProcessSlot:
        slot = _ProcessSlot(index)
        parent_conn, child_conn = self._mp_ctx.Pipe(duplex=True)
        slot.proc = self._mp_ctx.Process(
            target=worker_main,
            args=(child_conn, self._worker_spec),
            name=f"repro-serving-proc-{index}",
            daemon=True,
        )
        slot.proc.start()
        # close the parent's copy of the child end: the child's death must
        # surface as EOF on our end, which it cannot while we hold this open
        child_conn.close()
        slot.channel = ipc.Channel(parent_conn)
        slot.thread = threading.Thread(
            target=self._work_process,
            args=(slot,),
            name=f"repro-serving-{index}",
            daemon=True,
        )
        slot.thread.start()
        return slot

    def _work_process(self, slot: _ProcessSlot) -> None:
        """Dispatcher loop: the process-mode twin of :meth:`_work`.

        Pulls groups exactly like a thread worker; :meth:`_forward_group`
        routes the actual model call over IPC.  A dead pipe raises
        :class:`~repro.serving.ipc.WorkerProcessDied` (``BaseException``),
        landing in the same crash handler — the supervisor cannot tell a
        process death from a thread death, by design.
        """
        try:
            self._await_ready(slot)
            while True:
                group = self._scheduler.next_group()
                if group is None:
                    break
                if slot.abandoned:
                    # the supervisor retired this slot (e.g. idle child died)
                    # while we were blocked on the scheduler: hand the group
                    # to the replacement instead of a dead pipe
                    self._requeue_group(group)
                    return
                slot.inflight = tuple(group)
                slot.forward_started = time.monotonic()
                self._forward_group(group, slot)
                slot.inflight = ()
                slot.forward_started = None
                if slot.abandoned:
                    return
            slot.finished = True
            slot.shutdown_child()
        except BaseException as exc:  # noqa: BLE001 - the supervisor owns recovery
            slot.crash_exc = exc

    def _await_ready(self, slot: _ProcessSlot) -> None:
        """Block until the child reports ready (or its build failed, or we stop)."""
        while True:
            if slot.channel.poll(0.1):
                kind, _seq, payload = slot.channel.recv()
                if kind == "ready":
                    slot.ready = True
                    slot.ready_info = payload if isinstance(payload, dict) else {}
                    with self._lock:
                        self._never_ready_deaths = 0
                    return
                if kind == "init_error":
                    # restarting cannot fix a replica that will not build —
                    # mark it so recovery fails the engine instead of looping
                    slot.init_failed = True
                    raise ipc.WorkerProcessDied(
                        f"worker process {slot.index} failed to build its replica"
                    ) from payload
                continue  # unknown handshake frames are ignored
            if slot.abandoned or self._stop_supervisor.is_set():
                return
            with self._lock:
                if self._state in ("closed", "failed"):
                    return

    def _requeue_group(self, group: Sequence[Request]) -> None:
        failed = 0
        for request in group:
            if request.future.done():
                continue
            try:
                self._scheduler.add(request)
            except (EngineClosed, QueueFull):
                failed += request.fail(
                    WorkerCrashed(
                        "worker slot was retired before this request could be requeued"
                    )
                )
        if failed:
            with self._lock:
                self._stats["failed_requests"] += failed

    def _ipc_forward(self, slot: _ProcessSlot, stacked: np.ndarray) -> np.ndarray:
        """One batch round trip to the worker process; returns the output array.

        The ``ipc.roundtrip`` fault site fires here with ``kill=`` wired to
        SIGKILL the child — the injected hard death is then *observed* the
        same way a real one is: the pipe EOFs and
        :class:`~repro.serving.ipc.WorkerProcessDied` kills the dispatcher.
        An ordinary exception from the child re-raises here and stays scoped
        to the group (thread-mode semantics).
        """
        faults.fire(
            "ipc.roundtrip",
            worker=slot.index,
            kill=slot.kill,
            pid=slot.proc.pid if slot.proc is not None else None,
        )
        slot.seq += 1
        seq = slot.seq
        slot.channel.send("forward", seq, stacked)
        while True:
            kind, rseq, payload = slot.channel.recv()
            if rseq != seq:
                continue  # stale frame from a superseded round trip
            if kind == "result":
                output, _child_forward_s = payload
                return np.asarray(output)
            if kind == "error":
                raise payload
            raise ipc.WorkerProcessDied(f"unexpected IPC reply kind {kind!r}")

    def _forward_group(self, requests: List[Request], slot: _WorkerSlot) -> None:
        model = slot.replica
        # transition every future to RUNNING; a request cancelled while it
        # waited in the queue is dropped here (and a RUNNING future can no
        # longer be cancelled, so resolving it below cannot hit
        # InvalidStateError and kill the worker thread).  A retried request
        # was claimed on its first attempt; claim() only checks liveness then.
        requests = [r for r in requests if r.claim()]
        slot.inflight = tuple(requests)
        if not requests:
            return
        started = time.monotonic()
        waits = [started - request.submitted for request in requests]
        samples = [request.sample for request in requests]
        lengths = [sample.shape[0] if sample.ndim else 0 for sample in samples]
        padded = samples[0].ndim >= 2 and len(set(lengths)) > 1
        forward_s = None
        try:
            faults.fire("engine.forward", worker=slot.index, group_size=len(requests))
            if padded:
                target = max(lengths)
                stacked = np.full(
                    (len(samples), target) + samples[0].shape[1:],
                    self.pad_value,
                    dtype=samples[0].dtype,
                )
                for row, sample in zip(stacked, samples):
                    row[: sample.shape[0]] = sample
            else:
                stacked = np.stack(samples)
            t0 = time.perf_counter()
            if isinstance(slot, _ProcessSlot):
                # forward_s then includes the IPC round trip — the honest
                # per-group cost of process mode, not just child compute
                output = self._ipc_forward(slot, stacked)
            else:
                with no_grad():
                    output = model(Tensor(stacked))
                output = output.data if isinstance(output, Tensor) else np.asarray(output)
            forward_s = time.perf_counter() - t0
            if output.shape[0] != len(samples):
                raise RuntimeError(
                    f"model returned leading dimension {output.shape[0]} for a batch of "
                    f"{len(samples)} requests; the served model must preserve the batch axis"
                )
        except Exception as exc:  # noqa: BLE001 - ordinary failures belong to the futures
            # (BaseException — an injected or real crash — escapes to _work
            # and kills the worker; the supervisor recovers slot.inflight)
            with self._lock:
                self._queue_wait_s.extend(waits)
                if forward_s is not None:
                    self._forward_s.append(forward_s)
            self._recover_group(requests, exc)
            return
        # count the batch before resolving any future: a client unblocked by
        # set_result may read .stats immediately and must see this batch
        with self._lock:
            self._stats["batches"] += 1
            self._stats["batched_requests"] += len(requests)
            self._stats["padded_requests"] += len(requests) if padded else 0
            self._stats["max_batch"] = max(self._stats["max_batch"], len(requests))
            self._queue_wait_s.extend(waits)
            self._forward_s.append(forward_s)
            self._group_sizes.append(len(requests))
        for index, request in enumerate(requests):
            row = output[index]
            if padded and self.slice_padded_outputs:
                if row.ndim < 1 or row.shape[0] != stacked.shape[1]:
                    request.fail(
                        RuntimeError(
                            f"padded group output has leading shape {row.shape}, expected "
                            f"length {stacked.shape[1]}; the served model does not preserve "
                            "the sequence axis — construct the engine with "
                            "slice_padded_outputs=False"
                        )
                    )
                    continue
                row = row[: lengths[index]]
            request.succeed(row)

    # ------------------------------------------------------------------
    # supervision: crash/hang detection, retry with backoff, restart
    # ------------------------------------------------------------------
    def _recover_group(self, requests: Sequence[Request], exc: BaseException) -> None:
        """Route a failed group: requeue requests with retry budget, fail the rest.

        ``exc`` is what exhausted-budget futures reject with — the original
        exception for an ordinary forward error, or a
        :class:`~repro.serving.errors.WorkerCrashed` (cause attached) from
        the supervisor's crash/hang paths.
        """
        retried: List[Request] = []
        failed = 0
        for request in requests:
            if request.future.done():
                continue  # e.g. resolved late by an abandoned-then-finished worker
            if request.attempts < request.max_retries:
                retried.append(request)
            else:
                failed += request.fail(exc)
        if failed:
            with self._lock:
                self._stats["failed_requests"] += failed
        if not retried:
            return
        now = time.monotonic()
        with self._lock:
            for request in retried:
                request.attempts += 1
                delay = request.retry_backoff_s * (2 ** (request.attempts - 1))
                heapq.heappush(
                    self._retry_heap, (now + delay, next(self._retry_seq), request)
                )
                self._stats["retried_requests"] += 1

    def _flush_due_retries(self, now: float) -> None:
        due: List[Request] = []
        with self._lock:
            while self._retry_heap and self._retry_heap[0][0] <= now:
                due.append(heapq.heappop(self._retry_heap)[2])
        for request in due:
            if request.future.done():
                continue  # cancelled or resolved while backing off
            try:
                self._scheduler.add(request)
            except (EngineClosed, QueueFull) as exc:
                error: BaseException = exc
                if isinstance(exc, EngineClosed):
                    error = WorkerCrashed(
                        "engine closed before this request's retry could be requeued"
                    )
                if request.fail(error):
                    with self._lock:
                        self._stats["failed_requests"] += 1

    def _replace_slot(self, slot: _WorkerSlot) -> None:
        if not self._restart_allowed():
            self._fail_engine(
                f"worker restarts exceeded max_worker_restarts={self.max_worker_restarts} "
                f"within {self.restart_window_s:g} s — the replica (or checkpoint) is "
                "poisoning every worker started against it",
                slot.crash_exc,
            )
            return
        if isinstance(slot, _ProcessSlot):
            replacement: _WorkerSlot = self._start_process_slot(slot.index)
        else:
            replacement = self._start_slot(slot.index, slot.replica)
        with self._lock:
            self._stats["worker_restarts"] += 1
            for position, existing in enumerate(self._slots):
                if existing is slot:
                    self._slots[position] = replacement
                    break

    def _restart_allowed(self) -> bool:
        """Crash-loop containment: admit this restart into the rolling window?"""
        if self.max_worker_restarts is None:
            return True
        now = time.monotonic()
        with self._lock:
            if self._state == "failed":
                return False
            while self._restart_times and now - self._restart_times[0] > self.restart_window_s:
                self._restart_times.popleft()
            if len(self._restart_times) >= self.max_worker_restarts:
                return False
            self._restart_times.append(now)
            return True

    def _failed_error_locked(self) -> EngineFailed:
        """Build the typed rejection for a failed engine (call with the lock held)."""
        error = EngineFailed(
            "engine is in the failed state (worker crash-loop exhausted "
            f"max_worker_restarts={self.max_worker_restarts}); build a new engine"
        )
        error.__cause__ = self._failure_cause
        return error

    def _fail_engine(self, reason: str, cause: Optional[BaseException]) -> None:
        """Stop restarting, fail every pending request typed, refuse new work.

        Terminal (until ``close()``): restarting harder cannot heal whatever
        kills every worker, so the engine stops burning restarts and makes
        the failure loud instead.  Idempotent; a live worker still finishing
        a group resolves its futures normally.
        """
        with self._lock:
            if self._state in ("closed", "failed"):
                return
            self._state = "failed"
            self._failure_cause = cause
        self._scheduler.close()
        leftovers = self._scheduler.drain_pending()
        with self._lock:
            while self._retry_heap:
                leftovers.append(heapq.heappop(self._retry_heap)[2])
        failed = 0
        for request in leftovers:
            error = EngineFailed(f"engine entered the failed state: {reason}")
            error.__cause__ = cause
            failed += request.fail(error)
        if failed:
            with self._lock:
                self._stats["failed_requests"] += failed

    def _supervise(self) -> None:
        while not self._stop_supervisor.wait(self.supervision_interval_s):
            try:
                self._supervise_once(time.monotonic())
            except Exception:  # noqa: BLE001 - supervision must outlive one bad sweep
                continue

    def _supervise_once(self, now: float) -> None:
        self._flush_due_retries(now)
        for slot in list(self._slots):
            if slot.abandoned or slot.finished:
                continue
            thread = slot.thread
            if thread is not None and thread.is_alive():
                if (
                    isinstance(slot, _ProcessSlot)
                    and slot.ready
                    and not slot.inflight
                    and slot.proc is not None
                    and slot.proc.exitcode is not None
                ):
                    # the child died *between* forwards: no round trip is in
                    # flight to trip over the EOF, so the dispatcher would
                    # block on the scheduler forever — retire the slot here
                    # (a mid-forward death surfaces through the pipe instead)
                    self._abandon_dead_process_slot(slot)
                    continue
                if (
                    self.hung_forward_timeout_s is not None
                    and slot.forward_started is not None
                    and now - slot.forward_started > self.hung_forward_timeout_s
                ):
                    self._abandon_hung_slot(slot)
                continue
            self._recover_crashed_slot(slot)

    def _abandon_hung_slot(self, slot: _WorkerSlot) -> None:
        """Write off a worker stuck in one forward; a replacement takes its slot.

        A hung *thread* cannot be killed — it is left to finish (or never
        finish) as a zombie that stops pulling groups; if it does finish, its
        late results lose the future-resolution race harmlessly: recovered
        requests were either failed (fail wins) or requeued (a late success
        just resolves the future first, bit-identically).  A hung *process*
        can be killed, so it is: SIGKILL, then reap — process mode never
        leaks a runaway forward.
        """
        slot.abandoned = True
        inflight, slot.inflight = list(slot.inflight), ()
        with self._lock:
            self._stats["hung_workers"] += 1
            self._stats["worker_crashes"] += 1
        error = WorkerCrashed(
            f"worker {slot.index} abandoned as hung: forward exceeded "
            f"{self.hung_forward_timeout_s * 1e3:.0f} ms"
        )
        self._recover_group(inflight, error)
        if isinstance(slot, _ProcessSlot):
            slot.kill()
            slot.reap(timeout=2.0)
        if self.restart_crashed_workers:
            self._replace_slot(slot)

    def _abandon_dead_process_slot(self, slot: _ProcessSlot) -> None:
        """Retire a slot whose child died while idle (no in-flight group to recover)."""
        slot.abandoned = True
        exitcode = slot.reap(timeout=2.0)
        slot.crash_exc = ipc.WorkerProcessDied(
            f"worker process {slot.index} exited while idle ({_describe_exit(exitcode)})",
            exitcode,
        )
        with self._lock:
            self._stats["worker_crashes"] += 1
        if self.restart_crashed_workers:
            self._replace_slot(slot)

    def _recover_crashed_slot(self, slot: _WorkerSlot) -> None:
        slot.finished = True  # handled: never recover the same death twice
        inflight, slot.inflight = list(slot.inflight), ()
        with self._lock:
            self._stats["worker_crashes"] += 1
        if isinstance(slot, _ProcessSlot):
            exitcode = slot.reap(timeout=2.0)
            error = WorkerCrashed(
                f"worker process {slot.index} died mid-forward ({_describe_exit(exitcode)})"
            )
        else:
            error = WorkerCrashed(f"worker {slot.index} died mid-forward")
        error.__cause__ = slot.crash_exc
        self._recover_group(inflight, error)
        if isinstance(slot, _ProcessSlot) and slot.init_failed:
            # the replica will not build in *any* child; restarting is a loop
            self._fail_engine(
                f"worker process {slot.index} cannot build its model replica",
                error,
            )
            return
        if isinstance(slot, _ProcessSlot) and not slot.ready:
            # died before ever handshaking: the child could not even start
            # (spawn re-import failure, missing interpreter state, OOM at
            # import).  Unlike a mid-forward death, restarting cannot help
            # once it repeats — contain it even with unlimited restarts.
            with self._lock:
                self._never_ready_deaths += 1
                doomed = self._never_ready_deaths >= self._MAX_NEVER_READY_DEATHS
            if doomed:
                self._fail_engine(
                    f"{self._MAX_NEVER_READY_DEATHS} consecutive worker processes "
                    "died before becoming ready — worker startup is broken in this "
                    "environment, so restarting is a loop",
                    error,
                )
                return
        if self.restart_crashed_workers:
            self._replace_slot(slot)
