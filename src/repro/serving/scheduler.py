"""Continuous-batching scheduler: per-key admission with deadlines and priorities.

PR 4's engine served in lock-step: collect a time window of requests, split it
by compatibility, forward every group, and only then collect again.  Requests
arriving while a forward ran waited behind a drain barrier, and a mixed-key
window fragmented into several underfilled forwards — expensive on the
streaming path, where each forward pays the full block-decode cost no matter
how few rows ride it.

:class:`ContinuousScheduler` replaces the window with **per-compatibility
buckets** and continuous admission:

* every request lands in the bucket for its :func:`compat_key` the moment it
  arrives — including while workers are mid-forward, so arrivals join the
  *next* forward of an in-flight stream of groups instead of waiting for a
  drain;
* a bucket becomes *ready* when it is full (``max_batch_size``), its admission
  window (``max_wait_s`` after the bucket opened) expires, the scheduler is
  closing, or a member's deadline is about to pass — a lone request therefore
  still never waits longer than the admission window;
* among ready buckets, workers are handed the one holding the most urgent
  request, and within a bucket the most urgent ``max_batch_size`` requests go
  first.  Urgency orders by priority (higher first), then deadline (earlier
  first), then arrival.

Deadlines are honoured on both sides of admission: a bucket closes early so a
tight-deadline request starts before its deadline, and a request whose
deadline passes while still queued fails with :class:`DeadlineExceeded`
instead of silently running late.

The scheduler is engine-agnostic: it never touches models or samples, only
:class:`Request` records, and any number of worker threads may block in
:meth:`~ContinuousScheduler.next_group` concurrently.
"""

from __future__ import annotations

import math
import threading
import time
from concurrent.futures import Future
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "DeadlineExceeded",
    "Request",
    "ContinuousScheduler",
    "TokenScheduler",
    "compat_key",
]

#: how far ahead of a deadline the admission window closes, so the forward
#: can start before the deadline instead of expiring exactly on it
_DEADLINE_GUARD_S = 0.002


class DeadlineExceeded(TimeoutError):
    """The request's deadline passed before a worker could start its forward."""


def compat_key(sample: np.ndarray) -> Tuple:
    """Group key: which requests may share one stacked/padded forward call.

    rank-0/rank-1 samples must match exactly and are stacked; rank >= 2
    samples must agree on every dimension except the first (they are padded
    along axis 0 by the engine).
    """
    if sample.ndim <= 1:
        return ("exact", sample.dtype.str, sample.shape)
    return ("padded", sample.dtype.str, sample.ndim, sample.shape[1:])


class Request:
    """One queued sample plus its future and scheduling attributes."""

    __slots__ = ("sample", "future", "priority", "deadline", "submitted", "key", "order")

    def __init__(
        self,
        sample: np.ndarray,
        future: Future,
        priority: int = 0,
        deadline: Optional[float] = None,
        submitted: Optional[float] = None,
        key: Optional[Tuple] = None,
        order: int = 0,
    ) -> None:
        self.sample = sample
        self.future = future
        self.priority = int(priority)
        self.deadline = deadline
        self.submitted = time.monotonic() if submitted is None else submitted
        self.key = compat_key(sample) if key is None else key
        self.order = order

    def urgency(self) -> Tuple[int, float, int]:
        """Sort key: higher priority, then earlier deadline, then arrival order."""
        return (
            -self.priority,
            math.inf if self.deadline is None else self.deadline,
            self.order,
        )

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline

    def fail(self, exc: BaseException) -> bool:
        """Resolve the future with ``exc`` unless it was already cancelled."""
        if self.future.set_running_or_notify_cancel():
            self.future.set_exception(exc)
            return True
        return False


class ContinuousScheduler:
    """Thread-safe per-compatibility-bucket admission for N worker threads.

    Parameters
    ----------
    max_batch_size:
        Upper bound on requests handed out per group.
    max_wait_s:
        Admission window: how long a bucket may wait for co-riders after its
        first (oldest pending) request opened it.
    on_expired:
        Optional callback invoked with the number of requests that were failed
        with :class:`DeadlineExceeded` (used by the engine's stats).
    """

    def __init__(
        self,
        max_batch_size: int,
        max_wait_s: float,
        on_expired: Optional[Callable[[int], None]] = None,
    ) -> None:
        if int(max_batch_size) < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size!r}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s!r}")
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_s)
        self._on_expired = on_expired
        self._cond = threading.Condition()
        self._buckets: Dict[Tuple, List[Request]] = {}
        #: when each bucket's admission window opened = the arrival time of
        #: its oldest pending request
        self._opened: Dict[Tuple, float] = {}
        #: cached per-bucket (min urgency, earliest deadline or None) so a
        #: scheduling decision is O(buckets), not O(total pending requests);
        #: maintained incrementally on add, recomputed from leftovers on pop
        self._meta: Dict[Tuple, Tuple] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def add(self, request: Request) -> None:
        """Admit one request into its compatibility bucket (wakes waiting workers)."""
        with self._cond:
            if self._closed:
                raise RuntimeError("cannot add to a closed scheduler")
            bucket = self._buckets.setdefault(request.key, [])
            if not bucket:
                self._opened[request.key] = request.submitted
                self._meta[request.key] = (request.urgency(), request.deadline)
            else:
                urgency, deadline = self._meta[request.key]
                if request.deadline is not None:
                    deadline = (
                        request.deadline if deadline is None else min(deadline, request.deadline)
                    )
                self._meta[request.key] = (min(urgency, request.urgency()), deadline)
            bucket.append(request)
            self._cond.notify_all()

    def close(self) -> None:
        """Stop admission; queued requests stay servable until drained."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def pending(self) -> int:
        with self._cond:
            return sum(len(bucket) for bucket in self._buckets.values())

    # ------------------------------------------------------------------
    # consumer side (worker threads)
    # ------------------------------------------------------------------
    def next_group(self) -> Optional[List[Request]]:
        """Block until a group is ready; ``None`` once closed and drained.

        Expired requests are failed with :class:`DeadlineExceeded` (outside
        the scheduler lock — future resolution may run client callbacks) and
        never appear in a returned group.
        """
        while True:
            with self._cond:
                while True:
                    now = time.monotonic()
                    key = self._ready_key_locked(now)
                    if key is not None:
                        group, dropped = self._pop_locked(key, now)
                        break
                    if self._closed and not any(self._buckets.values()):
                        return None
                    self._cond.wait(timeout=self._next_ready_in_locked(now))
            expired = 0
            for request in dropped:
                # a request cancelled by its client is not an expiry — fail()
                # reports whether the DeadlineExceeded actually landed
                expired += request.fail(
                    DeadlineExceeded(
                        f"request deadline passed after {now - request.submitted:.3f}s in queue"
                    )
                )
            if expired and self._on_expired is not None:
                self._on_expired(expired)
            if group:
                return group

    # ------------------------------------------------------------------
    # internals (all *_locked methods assume self._cond is held)
    # ------------------------------------------------------------------
    def _ready_at_locked(self, key: Tuple) -> float:
        """When the bucket's admission window closes (deadline-aware)."""
        ready_at = self._opened[key] + self.max_wait_s
        deadline = self._meta[key][1]
        if deadline is not None:
            ready_at = min(ready_at, deadline - _DEADLINE_GUARD_S)
        return ready_at

    def _is_ready_locked(self, key: Tuple, now: float) -> bool:
        bucket = self._buckets[key]
        if self._closed or len(bucket) >= self.max_batch_size:
            return True
        return now >= self._ready_at_locked(key)

    def _ready_key_locked(self, now: float) -> Optional[Tuple]:
        """The ready bucket holding the globally most urgent request, if any."""
        best_key = None
        best_urgency = None
        for key, bucket in self._buckets.items():
            if not bucket or not self._is_ready_locked(key, now):
                continue
            head = self._meta[key][0]
            if best_urgency is None or head < best_urgency:
                best_key, best_urgency = key, head
        return best_key

    def _next_ready_in_locked(self, now: float) -> Optional[float]:
        """Seconds until the earliest bucket becomes ready (None = wait for traffic)."""
        waits = [
            self._ready_at_locked(key) - now for key, bucket in self._buckets.items() if bucket
        ]
        if not waits:
            return None
        return max(min(waits), 1e-4)

    def _pop_locked(self, key: Tuple, now: float) -> Tuple[List[Request], List[Request]]:
        """Take the most urgent ``max_batch_size`` alive requests from ``key``."""
        bucket = self._buckets[key]
        alive = [r for r in bucket if not r.expired(now)]
        dropped = [r for r in bucket if r.expired(now)]
        alive.sort(key=Request.urgency)
        group, rest = alive[: self.max_batch_size], alive[self.max_batch_size :]
        if rest:
            self._buckets[key] = rest
            # the leftovers' window stays anchored to their own arrival — a
            # request bumped by more urgent traffic keeps its already-elapsed
            # wait instead of restarting a full max_wait window
            self._opened[key] = min(r.submitted for r in rest)
            deadlines = [r.deadline for r in rest if r.deadline is not None]
            self._meta[key] = (
                min(r.urgency() for r in rest),
                min(deadlines) if deadlines else None,
            )
        else:
            del self._buckets[key]
            self._opened.pop(key, None)
            self._meta.pop(key, None)
        return group, dropped


class TokenScheduler:
    """Slot-budgeted admission for token-level generation batching.

    The one-shot :class:`ContinuousScheduler` hands out whole groups; a
    generation session instead *occupies* decode-state slots (one KV-cache row
    per beam) for many ticks.  :class:`TokenScheduler` owns that slot budget:
    each tick the generation driver calls :meth:`plan`, which decides

    * **expiry** — waiting sessions whose deadline passed before their prefill
      was admitted fail with :class:`DeadlineExceeded` (a *running* session is
      never killed by its deadline);
    * **admission** — waiting sessions start, most urgent first, while slots
      remain (``admission="continuous"``: new prefills co-batch with in-flight
      decodes; ``admission="drain"``: nothing is admitted until the running
      set empties — the lock-step baseline the benchmark compares against);
    * **preemption** — when slots are exhausted, a waiting session may evict
      **strictly less urgent** running sessions (least urgent first).  The
      strictness is the anti-thrash rule: an evictee can never immediately
      evict its evictor, because equal urgency never preempts.

    Urgency is ``(-priority, order)`` — deadlines affect expiry, not ordering,
    so a tight deadline does not let a late request leapfrog the queue.

    Scheduled items are opaque beyond five attributes: ``slots`` (rows
    needed), ``priority``, ``order``, ``deadline`` and ``submitted``.  The
    class is not itself thread-safe; the generation driver serialises calls
    under its own lock.
    """

    def __init__(self, total_slots: int, admission: str = "continuous") -> None:
        if int(total_slots) < 1:
            raise ValueError(f"total_slots must be >= 1, got {total_slots!r}")
        if admission not in ("continuous", "drain"):
            raise ValueError(f"admission must be 'continuous' or 'drain', got {admission!r}")
        self.total_slots = int(total_slots)
        self.admission = admission
        self._waiting: List = []
        self._running: List = []

    @staticmethod
    def _urgency(item) -> Tuple[int, int]:
        return (-item.priority, item.order)

    @property
    def free_slots(self) -> int:
        return self.total_slots - sum(item.slots for item in self._running)

    @property
    def waiting(self) -> List:
        return list(self._waiting)

    @property
    def running(self) -> List:
        return list(self._running)

    def add(self, item) -> None:
        """Queue a session for admission (it needs ``item.slots`` rows)."""
        if item.slots > self.total_slots:
            raise ValueError(
                f"session needs {item.slots} slots but the scheduler only has "
                f"{self.total_slots}; raise decode_slots or lower beam_size"
            )
        self._waiting.append(item)

    def on_finished(self, item) -> None:
        """Release a completed (or failed) running session's slots."""
        if item in self._running:
            self._running.remove(item)

    def discard(self, item) -> None:
        """Drop a session wherever it currently sits (cancellation path)."""
        if item in self._waiting:
            self._waiting.remove(item)
        if item in self._running:
            self._running.remove(item)

    def plan(self, now: float) -> Tuple[List, List, List]:
        """One tick's scheduling decision: ``(admitted, preempted, expired)``.

        ``admitted`` sessions moved waiting→running this tick (the driver owes
        them a prefill, or a restore-prefill if previously preempted);
        ``preempted`` moved running→waiting (the driver must release their
        decode rows); ``expired`` were removed entirely (the driver fails
        their futures).
        """
        expired = [s for s in self._waiting if s.deadline is not None and now > s.deadline]
        for item in expired:
            self._waiting.remove(item)

        admitted: List = []
        preempted: List = []
        if self.admission == "drain" and self._running:
            return admitted, preempted, expired

        free = self.free_slots
        for item in sorted(self._waiting, key=self._urgency):
            if item.slots <= free:
                free -= item.slots
                admitted.append(item)
                continue
            # preemption: evict strictly less urgent running sessions, least
            # urgent first, if that frees enough rows
            victims: List = []
            reclaim = 0
            for victim in sorted(self._running, key=self._urgency, reverse=True):
                if victim in preempted or self._urgency(victim) <= self._urgency(item):
                    continue
                victims.append(victim)
                reclaim += victim.slots
                if free + reclaim >= item.slots:
                    break
            if free + reclaim >= item.slots:
                preempted.extend(victims)
                free += reclaim - item.slots
                admitted.append(item)
        for item in preempted:
            self._running.remove(item)
            self._waiting.append(item)
        for item in admitted:
            self._waiting.remove(item)
            self._running.append(item)
        return admitted, preempted, expired
