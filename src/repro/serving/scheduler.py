"""Continuous-batching scheduler: per-key admission with deadlines and priorities.

PR 4's engine served in lock-step: collect a time window of requests, split it
by compatibility, forward every group, and only then collect again.  Requests
arriving while a forward ran waited behind a drain barrier, and a mixed-key
window fragmented into several underfilled forwards — expensive on the
streaming path, where each forward pays the full block-decode cost no matter
how few rows ride it.

:class:`ContinuousScheduler` replaces the window with **per-compatibility
buckets** and continuous admission:

* every request lands in the bucket for its :func:`compat_key` the moment it
  arrives — including while workers are mid-forward, so arrivals join the
  *next* forward of an in-flight stream of groups instead of waiting for a
  drain;
* a bucket becomes *ready* when it is full (``max_batch_size``), its admission
  window (``max_wait_s`` after the bucket opened) expires, the scheduler is
  closing, or a member's deadline is about to pass — a lone request therefore
  still never waits longer than the admission window;
* among ready buckets, workers are handed the one holding the most urgent
  request, and within a bucket the most urgent ``max_batch_size`` requests go
  first.  Urgency orders by priority (higher first), then deadline (earlier
  first), then arrival.

Deadlines are honoured on both sides of admission: a bucket closes early so a
tight-deadline request starts before its deadline, and a request whose
deadline passes while still queued fails with :class:`DeadlineExceeded`
instead of silently running late.

Overload control
----------------
An unbounded queue accepts work it can never serve; ``max_queue_depth``
bounds it.  At the cap, admission either fast-fails the new request with
:class:`~repro.serving.errors.QueueFull` (``shed_policy="reject"``) or, with
``shed_policy="priority"``, evicts the least urgent *strictly lower-priority*
queued request (failing its future with
:class:`~repro.serving.errors.RequestShed`) to admit the newcomer — the
lowest priority class is shed first, and work already handed to a worker is
never shed, so admitted work is never starved by arrivals.

The scheduler is engine-agnostic: it never touches models or samples, only
:class:`Request` records, and any number of worker threads may block in
:meth:`~ContinuousScheduler.next_group` concurrently.
"""

from __future__ import annotations

import math
import threading
import time
from concurrent.futures import Future
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.serving.errors import DeadlineExceeded, EngineClosed, QueueFull, RequestShed

__all__ = [
    "DeadlineExceeded",
    "Request",
    "ContinuousScheduler",
    "TokenScheduler",
    "compat_key",
]

#: how far ahead of a deadline the admission window closes, so the forward
#: can start before the deadline instead of expiring exactly on it
_DEADLINE_GUARD_S = 0.002


def compat_key(sample: np.ndarray) -> Tuple:
    """Group key: which requests may share one stacked/padded forward call.

    rank-0/rank-1 samples must match exactly and are stacked; rank >= 2
    samples must agree on every dimension except the first (they are padded
    along axis 0 by the engine).
    """
    if sample.ndim <= 1:
        return ("exact", sample.dtype.str, sample.shape)
    return ("padded", sample.dtype.str, sample.ndim, sample.shape[1:])


class Request:
    """One queued sample plus its future and scheduling attributes.

    ``max_retries``/``retry_backoff_s`` carry the caller's retry budget for
    idempotent forwards; ``attempts`` counts requeues so far and ``claimed``
    records that the future already transitioned to RUNNING on an earlier
    attempt (a RUNNING future must not be transitioned twice).
    """

    __slots__ = (
        "sample",
        "future",
        "priority",
        "deadline",
        "submitted",
        "key",
        "order",
        "max_retries",
        "retry_backoff_s",
        "attempts",
        "claimed",
    )

    def __init__(
        self,
        sample: np.ndarray,
        future: Future,
        priority: int = 0,
        deadline: Optional[float] = None,
        submitted: Optional[float] = None,
        key: Optional[Tuple] = None,
        order: int = 0,
        max_retries: int = 0,
        retry_backoff_s: float = 0.025,
    ) -> None:
        self.sample = sample
        self.future = future
        self.priority = int(priority)
        self.deadline = deadline
        self.submitted = time.monotonic() if submitted is None else submitted
        self.key = compat_key(sample) if key is None else key
        self.order = order
        self.max_retries = int(max_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.attempts = 0
        self.claimed = False

    def urgency(self) -> Tuple[int, float, int]:
        """Sort key: higher priority, then earlier deadline, then arrival order."""
        return (
            -self.priority,
            math.inf if self.deadline is None else self.deadline,
            self.order,
        )

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline

    def claim(self) -> bool:
        """Transition the future to RUNNING; False if cancelled or resolved.

        A request requeued by the retry path was already RUNNING on its first
        attempt — ``claimed`` short-circuits the (single-shot) state
        transition so a retried request is simply checked for liveness.
        """
        if self.claimed:
            return not self.future.done()
        self.claimed = self.future.set_running_or_notify_cancel()
        return self.claimed

    def succeed(self, result) -> bool:
        """Resolve the future with ``result``; False if it was already resolved.

        A future can race two resolvers — e.g. an abandoned hung worker
        completing after the supervisor already failed its group — so losing
        the race is reported, never raised.
        """
        try:
            self.future.set_result(result)
            return True
        except Exception:
            return False

    def fail(self, exc: BaseException) -> bool:
        """Resolve the future with ``exc`` unless it was already cancelled/resolved."""
        if not self.claim():
            return False
        try:
            self.future.set_exception(exc)
            return True
        except Exception:
            return False


class ContinuousScheduler:
    """Thread-safe per-compatibility-bucket admission for N worker threads.

    Parameters
    ----------
    max_batch_size:
        Upper bound on requests handed out per group.
    max_wait_s:
        Admission window: how long a bucket may wait for co-riders after its
        first (oldest pending) request opened it.
    on_expired:
        Optional callback invoked with the number of requests that were failed
        with :class:`DeadlineExceeded` (used by the engine's stats).
    max_queue_depth:
        Optional cap on total queued (not yet handed out) requests.  At the
        cap, :meth:`add` applies ``shed_policy``.
    shed_policy:
        ``"reject"`` (default): a request arriving at a full queue fast-fails
        with :class:`~repro.serving.errors.QueueFull`.  ``"priority"``: if a
        strictly lower-priority request is queued, the least urgent such
        request is shed (its future fails with
        :class:`~repro.serving.errors.RequestShed`) and the newcomer is
        admitted; otherwise the newcomer is rejected.
    on_shed:
        Optional callback invoked with the number of requests shed.
    """

    def __init__(
        self,
        max_batch_size: int,
        max_wait_s: float,
        on_expired: Optional[Callable[[int], None]] = None,
        max_queue_depth: Optional[int] = None,
        shed_policy: str = "reject",
        on_shed: Optional[Callable[[int], None]] = None,
    ) -> None:
        if int(max_batch_size) < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size!r}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s!r}")
        if max_queue_depth is not None and int(max_queue_depth) < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {max_queue_depth!r}")
        if shed_policy not in ("reject", "priority"):
            raise ValueError(f"shed_policy must be 'reject' or 'priority', got {shed_policy!r}")
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_s)
        self.max_queue_depth = None if max_queue_depth is None else int(max_queue_depth)
        self.shed_policy = shed_policy
        self._on_expired = on_expired
        self._on_shed = on_shed
        self._cond = threading.Condition()
        self._buckets: Dict[Tuple, List[Request]] = {}
        #: when each bucket's admission window opened = the arrival time of
        #: its oldest pending request
        self._opened: Dict[Tuple, float] = {}
        #: cached per-bucket (min urgency, earliest deadline or None) so a
        #: scheduling decision is O(buckets), not O(total pending requests);
        #: maintained incrementally on add, recomputed from leftovers on pop
        self._meta: Dict[Tuple, Tuple] = {}
        self._pending = 0
        self._closed = False

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def add(self, request: Request) -> None:
        """Admit one request into its compatibility bucket (wakes waiting workers).

        Raises :class:`~repro.serving.errors.QueueFull` at the queue-depth
        cap (after shedding a lower-priority victim instead, under
        ``shed_policy="priority"``, when one exists).
        """
        victim: Optional[Request] = None
        with self._cond:
            if self._closed:
                raise EngineClosed("cannot add to a closed scheduler")
            if self.max_queue_depth is not None and self._pending >= self.max_queue_depth:
                victim = self._shed_victim_locked(request)
                if victim is None:
                    raise QueueFull(
                        f"serving queue is at its depth cap ({self.max_queue_depth} "
                        f"pending requests); request rejected"
                    )
                self._remove_locked(victim)
            bucket = self._buckets.setdefault(request.key, [])
            if not bucket:
                self._opened[request.key] = request.submitted
                self._meta[request.key] = (request.urgency(), request.deadline)
            else:
                urgency, deadline = self._meta[request.key]
                if request.deadline is not None:
                    deadline = (
                        request.deadline if deadline is None else min(deadline, request.deadline)
                    )
                self._meta[request.key] = (min(urgency, request.urgency()), deadline)
            bucket.append(request)
            self._pending += 1
            self._cond.notify_all()
        if victim is not None:
            # resolve outside the lock: future resolution may run client code
            shed = victim.fail(
                RequestShed(
                    f"request shed after {time.monotonic() - victim.submitted:.3f}s queued: "
                    f"queue at depth cap and higher-priority traffic arrived"
                )
            )
            if shed and self._on_shed is not None:
                self._on_shed(1)

    def _shed_victim_locked(self, incoming: Request) -> Optional[Request]:
        """The least urgent queued request strictly below ``incoming``'s priority."""
        if self.shed_policy != "priority":
            return None
        victim: Optional[Request] = None
        for bucket in self._buckets.values():
            for queued in bucket:
                if queued.priority >= incoming.priority:
                    continue
                if victim is None or queued.urgency() > victim.urgency():
                    victim = queued
        return victim

    def _remove_locked(self, request: Request) -> None:
        """Drop one queued request, repairing its bucket's window/meta caches."""
        bucket = self._buckets.get(request.key)
        if bucket is None or request not in bucket:
            return
        bucket.remove(request)
        self._pending -= 1
        if bucket:
            self._opened[request.key] = min(r.submitted for r in bucket)
            deadlines = [r.deadline for r in bucket if r.deadline is not None]
            self._meta[request.key] = (
                min(r.urgency() for r in bucket),
                min(deadlines) if deadlines else None,
            )
        else:
            del self._buckets[request.key]
            self._opened.pop(request.key, None)
            self._meta.pop(request.key, None)

    def close(self) -> None:
        """Stop admission; queued requests stay servable until drained."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain_pending(self) -> List[Request]:
        """Remove and return every queued request (the close-timeout path).

        Used when draining can no longer make progress (e.g. worker death at
        shutdown): the caller owns the returned requests and must resolve
        their futures.
        """
        with self._cond:
            leftovers = [r for bucket in self._buckets.values() for r in bucket]
            self._buckets.clear()
            self._opened.clear()
            self._meta.clear()
            self._pending = 0
            self._cond.notify_all()
        return leftovers

    def pending(self) -> int:
        with self._cond:
            return self._pending

    # ------------------------------------------------------------------
    # consumer side (worker threads)
    # ------------------------------------------------------------------
    def next_group(self) -> Optional[List[Request]]:
        """Block until a group is ready; ``None`` once closed and drained.

        Expired requests are failed with :class:`DeadlineExceeded` (outside
        the scheduler lock — future resolution may run client callbacks) and
        never appear in a returned group.
        """
        while True:
            with self._cond:
                while True:
                    now = time.monotonic()
                    key = self._ready_key_locked(now)
                    if key is not None:
                        group, dropped = self._pop_locked(key, now)
                        break
                    if self._closed and not any(self._buckets.values()):
                        return None
                    self._cond.wait(timeout=self._next_ready_in_locked(now))
            expired = 0
            for request in dropped:
                # a request cancelled by its client is not an expiry — fail()
                # reports whether the DeadlineExceeded actually landed
                expired += request.fail(
                    DeadlineExceeded(
                        f"request deadline passed after {now - request.submitted:.3f}s in queue"
                    )
                )
            if expired and self._on_expired is not None:
                self._on_expired(expired)
            if group:
                return group

    # ------------------------------------------------------------------
    # internals (all *_locked methods assume self._cond is held)
    # ------------------------------------------------------------------
    def _ready_at_locked(self, key: Tuple) -> float:
        """When the bucket's admission window closes (deadline-aware)."""
        ready_at = self._opened[key] + self.max_wait_s
        deadline = self._meta[key][1]
        if deadline is not None:
            ready_at = min(ready_at, deadline - _DEADLINE_GUARD_S)
        return ready_at

    def _is_ready_locked(self, key: Tuple, now: float) -> bool:
        bucket = self._buckets[key]
        if self._closed or len(bucket) >= self.max_batch_size:
            return True
        return now >= self._ready_at_locked(key)

    def _ready_key_locked(self, now: float) -> Optional[Tuple]:
        """The ready bucket holding the globally most urgent request, if any."""
        best_key = None
        best_urgency = None
        for key, bucket in self._buckets.items():
            if not bucket or not self._is_ready_locked(key, now):
                continue
            head = self._meta[key][0]
            if best_urgency is None or head < best_urgency:
                best_key, best_urgency = key, head
        return best_key

    def _next_ready_in_locked(self, now: float) -> Optional[float]:
        """Seconds until the earliest bucket becomes ready (None = wait for traffic)."""
        waits = [
            self._ready_at_locked(key) - now for key, bucket in self._buckets.items() if bucket
        ]
        if not waits:
            return None
        return max(min(waits), 1e-4)

    def _pop_locked(self, key: Tuple, now: float) -> Tuple[List[Request], List[Request]]:
        """Take the most urgent ``max_batch_size`` alive requests from ``key``."""
        bucket = self._buckets[key]
        alive = [r for r in bucket if not r.expired(now)]
        dropped = [r for r in bucket if r.expired(now)]
        alive.sort(key=Request.urgency)
        group, rest = alive[: self.max_batch_size], alive[self.max_batch_size :]
        self._pending -= len(group) + len(dropped)
        if rest:
            self._buckets[key] = rest
            # the leftovers' window stays anchored to their own arrival — a
            # request bumped by more urgent traffic keeps its already-elapsed
            # wait instead of restarting a full max_wait window
            self._opened[key] = min(r.submitted for r in rest)
            deadlines = [r.deadline for r in rest if r.deadline is not None]
            self._meta[key] = (
                min(r.urgency() for r in rest),
                min(deadlines) if deadlines else None,
            )
        else:
            del self._buckets[key]
            self._opened.pop(key, None)
            self._meta.pop(key, None)
        return group, dropped


class TokenScheduler:
    """Slot-budgeted admission for token-level generation batching.

    The one-shot :class:`ContinuousScheduler` hands out whole groups; a
    generation session instead *occupies* decode-state slots (one KV-cache row
    per beam) for many ticks.  :class:`TokenScheduler` owns that slot budget:
    each tick the generation driver calls :meth:`plan`, which decides

    * **expiry** — waiting sessions whose deadline passed before their prefill
      was admitted fail with :class:`DeadlineExceeded` (a *running* session is
      never killed by its deadline);
    * **admission** — waiting sessions start, most urgent first, while slots
      remain (``admission="continuous"``: new prefills co-batch with in-flight
      decodes; ``admission="drain"``: nothing is admitted until the running
      set empties — the lock-step baseline the benchmark compares against);
    * **preemption** — when slots are exhausted, a waiting session may evict
      **strictly less urgent** running sessions (least urgent first).  The
      strictness is the anti-thrash rule: an evictee can never immediately
      evict its evictor, because equal urgency never preempts.

    Urgency is ``(-priority, order)`` — deadlines affect expiry, not ordering,
    so a tight deadline does not let a late request leapfrog the queue.

    Scheduled items are opaque beyond five attributes: ``slots`` (rows
    needed), ``priority``, ``order``, ``deadline`` and ``submitted``.  The
    class is not itself thread-safe; the generation driver serialises calls
    under its own lock.
    """

    def __init__(
        self,
        total_slots: int,
        admission: str = "continuous",
        max_waiting: Optional[int] = None,
    ) -> None:
        if int(total_slots) < 1:
            raise ValueError(f"total_slots must be >= 1, got {total_slots!r}")
        if admission not in ("continuous", "drain"):
            raise ValueError(f"admission must be 'continuous' or 'drain', got {admission!r}")
        if max_waiting is not None and int(max_waiting) < 1:
            raise ValueError(f"max_waiting must be >= 1, got {max_waiting!r}")
        self.total_slots = int(total_slots)
        self.admission = admission
        self.max_waiting = None if max_waiting is None else int(max_waiting)
        self._waiting: List = []
        self._running: List = []

    @staticmethod
    def _urgency(item) -> Tuple[int, int]:
        return (-item.priority, item.order)

    @property
    def free_slots(self) -> int:
        return self.total_slots - sum(item.slots for item in self._running)

    @property
    def waiting(self) -> List:
        return list(self._waiting)

    @property
    def running(self) -> List:
        return list(self._running)

    def add(self, item):
        """Queue a session for admission (it needs ``item.slots`` rows).

        With a ``max_waiting`` cap, a full waiting queue either sheds the
        least urgent strictly lower-priority waiting session — returned to
        the caller, which owes its future a
        :class:`~repro.serving.errors.RequestShed` — or raises
        :class:`~repro.serving.errors.QueueFull` for the newcomer.  Running
        sessions are never shed by admission pressure (preemption in
        :meth:`plan` is the only path that pauses running work, and it keeps
        the session queued).  Returns the shed session, or ``None``.
        """
        if item.slots > self.total_slots:
            raise ValueError(
                f"session needs {item.slots} slots but the scheduler only has "
                f"{self.total_slots}; raise decode_slots or lower beam_size"
            )
        victim = None
        if self.max_waiting is not None and len(self._waiting) >= self.max_waiting:
            candidates = [s for s in self._waiting if s.priority < item.priority]
            if not candidates:
                raise QueueFull(
                    f"generation queue is at its depth cap ({self.max_waiting} waiting "
                    f"sessions); request rejected"
                )
            victim = max(candidates, key=self._urgency)
            self._waiting.remove(victim)
        self._waiting.append(item)
        return victim

    def on_finished(self, item) -> None:
        """Release a completed (or failed) running session's slots."""
        if item in self._running:
            self._running.remove(item)

    def discard(self, item) -> None:
        """Drop a session wherever it currently sits (cancellation path)."""
        if item in self._waiting:
            self._waiting.remove(item)
        if item in self._running:
            self._running.remove(item)

    def plan(self, now: float) -> Tuple[List, List, List]:
        """One tick's scheduling decision: ``(admitted, preempted, expired)``.

        ``admitted`` sessions moved waiting→running this tick (the driver owes
        them a prefill, or a restore-prefill if previously preempted);
        ``preempted`` moved running→waiting (the driver must release their
        decode rows); ``expired`` were removed entirely (the driver fails
        their futures).
        """
        expired = [s for s in self._waiting if s.deadline is not None and now > s.deadline]
        for item in expired:
            self._waiting.remove(item)

        admitted: List = []
        preempted: List = []
        if self.admission == "drain" and self._running:
            return admitted, preempted, expired

        free = self.free_slots
        for item in sorted(self._waiting, key=self._urgency):
            if item.slots <= free:
                free -= item.slots
                admitted.append(item)
                continue
            # preemption: evict strictly less urgent running sessions, least
            # urgent first, if that frees enough rows
            victims: List = []
            reclaim = 0
            for victim in sorted(self._running, key=self._urgency, reverse=True):
                if victim in preempted or self._urgency(victim) <= self._urgency(item):
                    continue
                victims.append(victim)
                reclaim += victim.slots
                if free + reclaim >= item.slots:
                    break
            if free + reclaim >= item.slots:
                preempted.extend(victims)
                free += reclaim - item.slots
                admitted.append(item)
        for item in preempted:
            self._running.remove(item)
            self._waiting.append(item)
        for item in admitted:
            self._waiting.remove(item)
            self._running.append(item)
        return admitted, preempted, expired
