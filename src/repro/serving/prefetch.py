"""Double-buffered block prefetch for streaming serving.

Streaming mode decodes a packed weight in output-channel blocks and feeds
each float32 block to a matmul.  Run sequentially, the decode and the matmul
serialise: the CPU alternates between the dequantize kernel and BLAS.
:class:`BlockPrefetcher` overlaps them — a background thread decodes block
*k+1* (via :meth:`~repro.fp8.quantize.QuantizedTensor.dequantize_block`)
while the caller runs block *k*'s matmul.  Both sides are numpy calls that
release the GIL, so the overlap is real on a multi-core host.

The hand-off is a bounded queue of ``depth`` ready blocks (default 1: one
block in flight on each side — classic double buffering), which also bounds
the transient float32 working set to ``(depth + 2)`` blocks.  Decode order,
block boundaries and the decode kernel itself are identical to the
sequential path, so prefetched outputs are bit-identical to non-prefetched
streaming (and to cached mode, which shares the same codes).

Worker failures propagate: an exception raised inside ``dequantize_block``
re-raises in the consuming thread at the point of iteration.  Abandoning the
iterator mid-stream (e.g. a caller error between blocks) stops the worker
promptly via a shared event rather than leaking a blocked thread.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterator, Tuple

import numpy as np

from repro.fp8.quantize import QuantizedTensor

__all__ = ["BlockPrefetcher"]

#: sentinel the worker enqueues after the last block
_DONE = object()

#: how often a blocked queue hand-off re-checks the shared stop event (s)
_POLL_S = 0.05


class BlockPrefetcher:
    """Iterate ``(start, stop, float32 block)`` with background decode-ahead.

    Each iteration pass spawns a fresh daemon worker thread, so one
    prefetcher instance can be re-iterated (one pass at a time) — e.g. a
    streaming layer serving many forward calls.
    """

    def __init__(
        self,
        tensor: QuantizedTensor,
        block_channels: int,
        axis: int = 0,
        depth: int = 1,
    ) -> None:
        if int(block_channels) < 1:
            raise ValueError(f"block_channels must be >= 1, got {block_channels!r}")
        if int(depth) < 1:
            raise ValueError(f"depth must be >= 1, got {depth!r}")
        self.tensor = tensor
        self.block_channels = int(block_channels)
        self.axis = axis
        self.depth = int(depth)

    def spans(self) -> Iterator[Tuple[int, int]]:
        """The block boundaries, in decode order (identical to sequential)."""
        dim = self.tensor.shape[self.axis]
        for start in range(0, dim, self.block_channels):
            yield start, min(start + self.block_channels, dim)

    def __iter__(self) -> Iterator[Tuple[int, int, np.ndarray]]:
        ready: queue.Queue = queue.Queue(maxsize=self.depth)
        stop = threading.Event()

        def _put(item) -> bool:
            """Enqueue, re-checking for consumer abandonment; False = stopped."""
            while not stop.is_set():
                try:
                    ready.put(item, timeout=_POLL_S)
                    return True
                except queue.Full:
                    continue
            return False

        def _decode_ahead() -> None:
            try:
                for start, stop_channel in self.spans():
                    if stop.is_set():
                        return
                    block = self.tensor.dequantize_block(start, stop_channel, axis=self.axis)
                    if not _put((start, stop_channel, block)):
                        return
                _put(_DONE)
            except BaseException as exc:  # noqa: BLE001 - relayed to the consumer
                _put(exc)

        worker = threading.Thread(target=_decode_ahead, name="repro-block-prefetch", daemon=True)
        worker.start()
        try:
            while True:
                item = ready.get()
                if item is _DONE:
                    return
                if isinstance(item, BaseException):
                    raise item
                yield item
        finally:
            stop.set()
            worker.join(timeout=5.0)
