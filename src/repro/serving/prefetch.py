"""Block prefetch for streaming serving: per-layer double buffering and
cross-layer pipelining.

Streaming mode decodes a packed weight in output-channel blocks and feeds
each float32 block to a matmul.  Run sequentially, the decode and the matmul
serialise: the CPU alternates between the dequantize kernel and BLAS.
:class:`BlockPrefetcher` overlaps them — a background thread decodes block
*k+1* (via :meth:`~repro.fp8.quantize.QuantizedTensor.dequantize_block`)
while the caller runs block *k*'s matmul.  Both sides are numpy calls that
release the GIL, so the overlap is real on a multi-core host.

The hand-off is a bounded queue of ``depth`` ready blocks (default 1: one
block in flight on each side — classic double buffering), which also bounds
the transient float32 working set to ``(depth + 2)`` blocks.  Decode order,
block boundaries and the decode kernel itself are identical to the
sequential path, so prefetched outputs are bit-identical to non-prefetched
streaming (and to cached mode, which shares the same codes).

Worker failures propagate: an exception raised inside ``dequantize_block``
surfaces in the consuming thread at the point of iteration as a
:class:`~repro.serving.errors.PrefetchError` chained ``from`` the original
exception — the worker-side traceback survives the thread hop instead of
being flattened into a bare re-raise.  Abandoning the iterator mid-stream
(e.g. a caller error between blocks) stops the worker promptly via a shared
event rather than leaking a blocked thread.

Cross-layer pipelining
----------------------
Per-layer prefetch still stalls at every layer boundary: when layer *k*'s
matmul consumes its last block, layer *k+1*'s first block has not started
decoding, so the forward waits one full block-decode latency per boundary —
and each forward pass spawns (and joins) one short-lived thread per layer.
:class:`PipelinePrefetcher` removes both costs.  It owns the model's
streaming layers *in execution order* and a persistent shared decode pool,
and maintains a sliding window of ``depth`` decode tasks over the
**concatenated** block sequence of all layers: as layer *k*'s tail blocks
are consumed, the window naturally slides into layer *k+1*'s head blocks, so
their decode overlaps layer *k*'s remaining matmuls and the boundary stall
disappears.  With a pool of ``workers >= 2`` threads, block decodes also run
in parallel with each other (the decode kernels release the GIL), which is
where the throughput headroom on a multi-core host comes from.

Window state is **thread-local**: concurrent forwards (e.g. a multi-worker
:class:`~repro.serving.engine.ServingEngine` sharing one model) each get
their own pipeline run over the shared pool, so runs never interleave.
Decode results, order and boundaries are identical to the sequential path —
pipelined outputs stay bit-identical to cached mode.
"""

from __future__ import annotations

import queue
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Iterator, List, Tuple

import numpy as np

from repro.fp8.quantize import QuantizedTensor
from repro.serving import faults
from repro.serving.errors import PrefetchError

__all__ = ["BlockPrefetcher", "PipelinePrefetcher"]

#: sentinel the worker enqueues after the last block
_DONE = object()

#: how often a blocked queue hand-off re-checks the shared stop event (s)
_POLL_S = 0.05


class BlockPrefetcher:
    """Iterate ``(start, stop, float32 block)`` with background decode-ahead.

    Each iteration pass spawns a fresh daemon worker thread, so one
    prefetcher instance can be re-iterated (one pass at a time) — e.g. a
    streaming layer serving many forward calls.
    """

    def __init__(
        self,
        tensor: QuantizedTensor,
        block_channels: int,
        axis: int = 0,
        depth: int = 1,
    ) -> None:
        if int(block_channels) < 1:
            raise ValueError(f"block_channels must be >= 1, got {block_channels!r}")
        if int(depth) < 1:
            raise ValueError(f"depth must be >= 1, got {depth!r}")
        self.tensor = tensor
        self.block_channels = int(block_channels)
        self.axis = axis
        self.depth = int(depth)

    def spans(self) -> Iterator[Tuple[int, int]]:
        """The block boundaries, in decode order (identical to sequential)."""
        dim = self.tensor.shape[self.axis]
        for start in range(0, dim, self.block_channels):
            yield start, min(start + self.block_channels, dim)

    def __iter__(self) -> Iterator[Tuple[int, int, np.ndarray]]:
        ready: queue.Queue = queue.Queue(maxsize=self.depth)
        stop = threading.Event()

        def _put(item) -> bool:
            """Enqueue, re-checking for consumer abandonment; False = stopped."""
            while not stop.is_set():
                try:
                    ready.put(item, timeout=_POLL_S)
                    return True
                except queue.Full:
                    continue
            return False

        def _decode_ahead() -> None:
            try:
                for start, stop_channel in self.spans():
                    if stop.is_set():
                        return
                    faults.fire("prefetch.decode", start=start, stop=stop_channel)
                    block = self.tensor.dequantize_block(start, stop_channel, axis=self.axis)
                    if not _put((start, stop_channel, block)):
                        return
                _put(_DONE)
            except BaseException as exc:  # noqa: BLE001 - relayed to the consumer
                _put(exc)

        worker = threading.Thread(target=_decode_ahead, name="repro-block-prefetch", daemon=True)
        worker.start()
        try:
            while True:
                item = ready.get()
                if item is _DONE:
                    return
                if isinstance(item, BaseException):
                    # chain instead of bare-raising the worker's exception:
                    # the decode traceback survives the thread hop as __cause__
                    raise PrefetchError(f"block prefetch worker failed: {item}") from item
                yield item
        finally:
            stop.set()
            worker.join(timeout=5.0)


class _PipelineRun:
    """One thread's sliding decode window over the pipeline's block sequence."""

    __slots__ = ("_pipeline", "_source", "_pending")

    def __init__(self, pipeline: "PipelinePrefetcher", start_module) -> None:
        self._pipeline = pipeline
        self._source = pipeline.block_sequence(start_module)
        self._pending: deque = deque()
        self._fill()

    def _fill(self) -> None:
        """Keep ``depth`` decode tasks in flight, crossing layer boundaries."""
        pool = self._pipeline._ensure_pool()
        while len(self._pending) < self._pipeline.depth:
            item = next(self._source, None)
            if item is None:
                return
            module, start, stop = item
            future = pool.submit(self._pipeline._decode, module, start, stop)
            self._pending.append((module, start, stop, future))

    def expects(self, module) -> bool:
        """True if this run is positioned at ``module``'s first block."""
        if not self._pending:
            return False
        head_module, head_start = self._pending[0][0], self._pending[0][1]
        return head_module is module and head_start == 0

    def consume(self, module) -> Iterator[Tuple[int, int, np.ndarray]]:
        """Yield ``module``'s blocks in order, refilling the window as they drain."""
        while self._pending and self._pending[0][0] is module:
            _, start, stop, future = self._pending.popleft()
            # refill before blocking on the result: this is the moment the
            # next layer's head blocks start decoding while this layer's
            # tail is still being consumed
            self._fill()
            try:
                block = future.result()
            except Exception as exc:
                raise PrefetchError(f"pipelined block decode failed: {exc}") from exc
            yield start, stop, block

    def cancel(self) -> None:
        for *_, future in self._pending:
            future.cancel()
        self._pending.clear()


class PipelinePrefetcher:
    """Cross-layer pipelined block decode over one shared background pool.

    ``modules`` are the streaming wrappers in **execution order** (each must
    expose ``weight_q`` and ``streaming_block_size()``; module definition
    order is the usual proxy — the same assumption the quantization workflow
    makes elsewhere).  A consuming layer calls :meth:`iter_blocks` and gets
    its own ``(start, stop, float32 block)`` stream; behind it, a sliding
    window of ``depth`` decode tasks runs on a persistent pool of ``workers``
    threads and crosses layer boundaries ahead of the consumer.

    A layer asked for out of expected order (dynamic control flow, a second
    forward pass, an abandoned previous pass) simply restarts the window at
    that layer — correctness never depends on the declared order, only the
    amount of overlap does.
    """

    def __init__(self, modules: Iterable, depth: int = 4, workers: int = 2) -> None:
        self.order: List = list(modules)
        if not self.order:
            raise ValueError("PipelinePrefetcher needs at least one streaming module")
        if int(depth) < 1:
            raise ValueError(f"depth must be >= 1, got {depth!r}")
        if int(workers) < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        self.depth = int(depth)
        self.workers = int(workers)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------
    def block_sequence(self, start_module) -> Iterator[Tuple]:
        """``(module, start, stop)`` spans from ``start_module`` to the end.

        This is the concatenated decode order the window slides over; span
        boundaries per layer are identical to the sequential path.
        """
        try:
            index = next(i for i, m in enumerate(self.order) if m is start_module)
            modules = self.order[index:]
        except StopIteration:
            modules = [start_module]
        for module in modules:
            tensor = module.weight_q
            if tensor is None:
                continue
            block = module.streaming_block_size()
            dim = tensor.shape[0]
            for start in range(0, dim, block):
                yield module, start, min(start + block, dim)

    def iter_blocks(self, module) -> Iterator[Tuple[int, int, np.ndarray]]:
        """Blocks of ``module`` in order, decoded ahead on the shared pool.

        Continues the calling thread's pipeline run when ``module`` is the
        expected next layer; otherwise cancels the stale window and restarts
        at ``module``.
        """
        run = getattr(self._local, "run", None)
        if run is None or not run.expects(module):
            if run is not None:
                run.cancel()
            run = _PipelineRun(self, module)
            self._local.run = run
        return run.consume(module)

    # ------------------------------------------------------------------
    def _decode(self, module, start: int, stop: int) -> np.ndarray:
        faults.fire("prefetch.decode", start=start, stop=stop)
        return module.weight_q.dequantize_block(start, stop)

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="repro-pipeline-decode"
                )
            return self._pool

    def close(self) -> None:
        """Shut the decode pool down (it is re-created lazily if used again)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
