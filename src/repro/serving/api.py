"""Typed request API for the serving engine.

PR 5 grew the engine's entry points a loose kwarg at a time
(``submit(sample, priority=, deadline_ms=)``); generation serving would have
doubled that surface again.  This module replaces the kwarg sprawl with two
small request dataclasses:

* :class:`SubmitOptions` — scheduling attributes of a one-shot forward
  (priority, queue-time deadline).  ``engine.submit(x, SubmitOptions(...))``.
* :class:`GenerationRequest` — everything describing an autoregressive
  generation: decode budget (``max_new_tokens``), search (``beam_size``),
  termination (``eos_token``), delivery (``stream``), KV-cache storage
  (``kv_cache``: ``"float32"`` or an FP8 format name), plus the same
  scheduling attributes.  ``engine.generate(prompt, GenerationRequest(...))``.

The legacy kwargs keep working through :func:`resolve_submit_options`, which
folds them into a :class:`SubmitOptions` and emits one
:class:`DeprecationWarning` per entry point — existing call sites run
unmodified while new code gets a single typed surface.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, replace
from typing import Optional

__all__ = [
    "SubmitOptions",
    "GenerationRequest",
    "resolve_submit_options",
    "WORKER_MODES",
    "validate_worker_mode",
]

#: execution tiers for engine workers — ``"thread"`` (N driver threads over
#: shared/replicated models, GIL-bound, supports generation) or ``"process"``
#: (N worker processes over one re-mapped checkpoint, crash-isolated,
#: GIL-free; one-shot forwards only)
WORKER_MODES = ("thread", "process")


def validate_worker_mode(worker_mode: str) -> str:
    """Normalise and validate an engine ``worker_mode`` value."""
    if worker_mode not in WORKER_MODES:
        raise ValueError(
            f"worker_mode must be one of {WORKER_MODES}, got {worker_mode!r}"
        )
    return worker_mode


@dataclass(frozen=True)
class SubmitOptions:
    """Scheduling options for one submitted request.

    Parameters
    ----------
    priority:
        Higher values are served first.  Under overload with
        ``shed_policy="priority"`` the lowest priority class is shed first.
    deadline_ms:
        Queue-time budget: the admission window closes early to start the
        forward before the deadline, and a request still queued past it fails
        with :class:`~repro.serving.errors.DeadlineExceeded`.
    max_retries:
        How many times the engine may *requeue* this request after a worker
        crash or a transient forward error before failing the future with
        :class:`~repro.serving.errors.WorkerCrashed` (crashes) or the
        original exception (forward errors).  One budget covers every crash
        flavour: thread-worker deaths and — under ``worker_mode="process"``
        — worker-*process* deaths (``SIGKILL``/segfault/OOM-kill) count
        against the same ``max_retries``.  Only meaningful for idempotent
        forwards — a retried request re-runs the whole forward.  Default 0:
        fail fast on the first error, exactly the pre-retry behaviour.
    retry_backoff_ms:
        Base of the exponential backoff between retry attempts: attempt *k*
        is requeued after ``retry_backoff_ms * 2**(k-1)`` milliseconds.
    """

    priority: int = 0
    deadline_ms: Optional[float] = None
    max_retries: int = 0
    retry_backoff_ms: float = 25.0

    def validated(self) -> "SubmitOptions":
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {self.deadline_ms!r}")
        if int(self.max_retries) < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries!r}")
        if self.retry_backoff_ms < 0:
            raise ValueError(f"retry_backoff_ms must be >= 0, got {self.retry_backoff_ms!r}")
        return self


@dataclass(frozen=True)
class GenerationRequest:
    """Everything describing one autoregressive generation request.

    Parameters
    ----------
    max_new_tokens:
        Decode budget; generation also stops at the model's ``max_seq_len``.
    beam_size:
        1 for greedy decoding, larger for beam search.
    stream:
        Return a token iterator instead of a future (greedy only).
    eos_token:
        Stop a sequence early after emitting this token id.
    kv_cache:
        Decode-state storage: ``"float32"`` (exact) or an FP8 format name
        (``"E4M3"``, ``"E5M2"``, ...) for a packed quantized cache.
    priority / deadline_ms:
        Scheduling attributes; the deadline bounds queue time until the
        prefill is admitted (a running generation is never killed by it).
    """

    max_new_tokens: int = 32
    beam_size: int = 1
    stream: bool = False
    eos_token: Optional[int] = None
    kv_cache: str = "float32"
    priority: int = 0
    deadline_ms: Optional[float] = None

    def validated(self) -> "GenerationRequest":
        if int(self.max_new_tokens) < 1:
            raise ValueError(f"max_new_tokens must be >= 1, got {self.max_new_tokens!r}")
        if int(self.beam_size) < 1:
            raise ValueError(f"beam_size must be >= 1, got {self.beam_size!r}")
        if self.stream and int(self.beam_size) > 1:
            raise ValueError("stream=True requires beam_size=1 (beam tokens are not final)")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {self.deadline_ms!r}")
        if not isinstance(self.kv_cache, str) or not self.kv_cache:
            raise ValueError(
                f"kv_cache must be 'float32' or an FP8 format name, got {self.kv_cache!r}"
            )
        return self


# one DeprecationWarning per engine entry point, not one per call
_WARNED: set = set()
_WARNED_LOCK = threading.Lock()


def _warn_deprecated(method: str) -> None:
    with _WARNED_LOCK:
        if method in _WARNED:
            return
        _WARNED.add(method)
    warnings.warn(
        f"ServingEngine.{method}(priority=..., deadline_ms=...) kwargs are deprecated; "
        f"pass SubmitOptions(priority=..., deadline_ms=...) instead",
        DeprecationWarning,
        stacklevel=4,
    )


def resolve_submit_options(
    options: Optional[SubmitOptions],
    priority: Optional[int],
    deadline_ms: Optional[float],
    method: str,
) -> SubmitOptions:
    """Fold legacy ``priority``/``deadline_ms`` kwargs into a :class:`SubmitOptions`.

    Passing both the typed object and legacy kwargs is ambiguous and raises;
    legacy kwargs alone warn once per entry point and keep working.
    """
    if priority is None and deadline_ms is None:
        resolved = options if options is not None else SubmitOptions()
        if not isinstance(resolved, SubmitOptions):
            raise TypeError(f"options must be a SubmitOptions, got {type(resolved).__name__}")
        return resolved.validated()
    if options is not None:
        raise TypeError(
            "pass either SubmitOptions or the legacy priority/deadline_ms kwargs, not both"
        )
    _warn_deprecated(method)
    resolved = SubmitOptions()
    if priority is not None:
        resolved = replace(resolved, priority=int(priority))
    if deadline_ms is not None:
        resolved = replace(resolved, deadline_ms=float(deadline_ms))
    return resolved.validated()
