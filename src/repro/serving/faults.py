"""Deterministic, seedable fault injection for the serving and storage stacks.

Every recovery path in the resilience layer — worker supervision and restart,
retry with backoff, generation-driver crash propagation, prefetch error
relay, checkpoint integrity — is exercised by *injecting* its failure at a
named site rather than hoping for one.  A :class:`FaultInjector` holds a
site → :class:`FaultSpec` table; instrumented code calls :func:`fire` at each
site and the active injector decides, deterministically, whether that call
crashes, stalls, errors or corrupts.

Sites instrumented in this package (callers may add their own):

=======================  ====================================================
site                     fired
=======================  ====================================================
``engine.forward``       in an engine worker, after its group's futures are
                         RUNNING, just before the model call
``generation.tick``      in the generation driver, just before each
                         ``forward_step``
``prefetch.decode``      in a prefetch worker, before each block decode
``container.read_span``  per payload span on a copied checkpoint read, with
                         ``buffer=`` the mutable span bytes (``corrupt``
                         flips one byte, exercising integrity verification)
``ipc.roundtrip``        in an engine dispatcher thread, just before the
                         batch is sent to a worker process, with ``kill=``
                         a handle that SIGKILLs that process
=======================  ====================================================

The same table is importable as :data:`KNOWN_SITES`, and a configured
injector lists its own sites via :meth:`FaultInjector.sites` — tests assert
against these instead of hard-coding strings.

Fault kinds:

* ``"crash"`` — raises :class:`InjectedCrash`, a ``BaseException`` that
  passes through ``except Exception`` handlers and kills the worker thread,
  modelling a worker death mid-forward;
* ``"error"`` — raises :class:`InjectedError` (an ordinary ``RuntimeError``),
  modelling a transient compute failure the retry path should absorb;
* ``"slow"`` — sleeps ``delay_s``, modelling a hung/slow forward for
  heartbeat supervision to detect;
* ``"corrupt"`` — flips one byte of the ``buffer=`` keyword argument
  (bytearray or writable uint8 array), modelling a corrupted span read;
* ``"kill"`` — hard process death: calls the site's ``kill=`` context handle
  (the engine wires it to ``SIGKILL`` the worker process), modelling a
  segfault/OOM-kill that no ``except`` clause ever sees.  **Process-only**:
  a thread worker shares the engine's address space, and the honest
  thread-mode equivalent (``os._exit``) would take the whole engine down —
  so at a site with no ``kill=`` handle the injector refuses with an
  ordinary ``RuntimeError`` instead of approximating.

Determinism: ``on_calls={3}`` fires on exactly the 3rd call to that site
(1-based, counted per site across all threads), so a test provokes a crash
mid-stream reproducibly; ``probability`` draws from a ``random.Random(seed)``
owned by the injector, so a chaos bench is seed-reproducible too.

Install an injector process-wide with :func:`install` / :func:`uninstall`,
or scoped with the :func:`injected` context manager.  With no injector
installed :func:`fire` is a single attribute check — the instrumented hot
paths pay nothing in production.
"""

from __future__ import annotations

import contextlib
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Union

__all__ = [
    "FaultSpec",
    "FaultInjector",
    "InjectedCrash",
    "InjectedError",
    "KNOWN_SITES",
    "install",
    "uninstall",
    "active_injector",
    "injected",
    "fire",
]

_KINDS = ("crash", "error", "slow", "corrupt", "kill")

#: every site instrumented by this package (callers may fire their own)
KNOWN_SITES = {
    "engine.forward": "engine worker, group futures RUNNING, before the model call",
    "generation.tick": "generation driver, before each forward_step",
    "prefetch.decode": "prefetch worker, before each block decode",
    "container.read_span": "per payload span on a copied checkpoint read",
    "ipc.roundtrip": "engine dispatcher, before the batch crosses to a worker process",
}


class InjectedCrash(BaseException):
    """An injected worker death: passes through ``except Exception`` handlers.

    Deliberately **not** an ``Exception`` subclass — a crash models the thread
    dying without running any recovery code of its own, so it must not be
    absorbed by the per-request failure handlers that route ordinary errors
    to futures.
    """


class InjectedError(RuntimeError):
    """An injected transient compute error (ordinary, retryable)."""


@dataclass
class FaultSpec:
    """One fault rule at one site.

    Parameters
    ----------
    kind:
        ``"crash"``, ``"error"``, ``"slow"`` or ``"corrupt"`` (see module
        docstring).
    probability:
        Chance of firing per eligible call, drawn from the injector's seeded
        RNG.  Defaults to 1.0 (always fire when eligible).
    on_calls:
        Optional explicit 1-based call indices (counted per site) at which
        the fault fires — the deterministic trigger tests use.  When given,
        ``probability`` applies only at those calls.
    max_fires:
        Stop firing after this many hits (e.g. one crash, then recovery runs
        clean).  ``None`` = unlimited.
    delay_s:
        Sleep length for ``"slow"`` faults.
    """

    kind: str
    probability: float = 1.0
    on_calls: Optional[Iterable[int]] = None
    max_fires: Optional[int] = None
    delay_s: float = 0.05
    #: internal fire counter (per spec)
    fires: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {_KINDS}")
        if not 0.0 <= float(self.probability) <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability!r}")
        if self.on_calls is not None:
            self.on_calls = frozenset(int(c) for c in self.on_calls)
        if self.max_fires is not None and int(self.max_fires) < 1:
            raise ValueError(f"max_fires must be >= 1, got {self.max_fires!r}")


class FaultInjector:
    """A seedable site → fault table; thread-safe and deterministic.

    ``faults`` maps site names to one :class:`FaultSpec` or a sequence of
    them (evaluated in order; the first that fires wins).  ``calls`` and
    ``fired`` expose per-site counters so tests can assert exactly which
    faults ran.
    """

    def __init__(
        self,
        faults: Mapping[str, Union[FaultSpec, Iterable[FaultSpec]]],
        seed: int = 0,
    ) -> None:
        self._faults: Dict[str, list] = {}
        for site, specs in faults.items():
            if isinstance(specs, FaultSpec):
                specs = [specs]
            specs = list(specs)
            if not all(isinstance(spec, FaultSpec) for spec in specs):
                raise TypeError(f"site {site!r}: every fault must be a FaultSpec")
            self._faults[site] = specs
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.calls: Dict[str, int] = {}
        self.fired: Dict[str, int] = {}

    def sites(self) -> tuple:
        """The sites this injector is configured to fault, sorted (for tests)."""
        return tuple(sorted(self._faults))

    def fire(self, site: str, **ctx) -> None:
        """Evaluate ``site``'s rules; may raise, sleep or mutate ``ctx``."""
        with self._lock:
            call = self.calls.get(site, 0) + 1
            self.calls[site] = call
            chosen = None
            for spec in self._faults.get(site, ()):
                if spec.max_fires is not None and spec.fires >= spec.max_fires:
                    continue
                if spec.on_calls is not None and call not in spec.on_calls:
                    continue
                if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                    continue
                spec.fires += 1
                self.fired[site] = self.fired.get(site, 0) + 1
                chosen = spec
                break
        if chosen is None:
            return
        if chosen.kind == "slow":
            time.sleep(chosen.delay_s)
            return
        if chosen.kind == "corrupt":
            self._corrupt(site, call, ctx)
            return
        if chosen.kind == "kill":
            self._kill(site, call, ctx)
            return
        if chosen.kind == "error":
            raise InjectedError(f"injected transient error at {site} (call {call})")
        raise InjectedCrash(f"injected worker crash at {site} (call {call})")

    def _kill(self, site: str, call: int, ctx: dict) -> None:
        kill = ctx.get("kill")
        if not callable(kill):
            # process-only by design: a thread worker shares the engine's
            # address space, and the honest equivalent (os._exit) would kill
            # the engine itself — refuse loudly instead of approximating
            raise RuntimeError(
                f"kill fault at {site} (call {call}) has no kill= handle: hard "
                "process death is only injectable under worker_mode='process'"
            )
        kill()

    def _corrupt(self, site: str, call: int, ctx: dict) -> None:
        buffer = ctx.get("buffer")
        if buffer is None or len(buffer) == 0:
            return
        with self._lock:
            index = self._rng.randrange(len(buffer))
        buffer[index] = buffer[index] ^ 0xFF


# ----------------------------------------------------------------------
# process-wide installation
# ----------------------------------------------------------------------
_ACTIVE: Optional[FaultInjector] = None
_INSTALL_LOCK = threading.Lock()


def install(injector: FaultInjector) -> FaultInjector:
    """Make ``injector`` the process-wide active injector (replaces any prior)."""
    global _ACTIVE
    if not isinstance(injector, FaultInjector):
        raise TypeError(f"expected a FaultInjector, got {type(injector).__name__}")
    with _INSTALL_LOCK:
        _ACTIVE = injector
        # the container's copied-read loop lives below the serving package and
        # must not import it; hand it the fire hook instead
        from repro.serialization import container

        container.set_fault_hook(fire)
    return injector


def uninstall() -> None:
    """Deactivate fault injection (instrumented sites become no-ops again)."""
    global _ACTIVE
    with _INSTALL_LOCK:
        _ACTIVE = None
        from repro.serialization import container

        container.set_fault_hook(None)


def active_injector() -> Optional[FaultInjector]:
    return _ACTIVE


@contextlib.contextmanager
def injected(faults: Mapping[str, Union[FaultSpec, Iterable[FaultSpec]]], seed: int = 0):
    """Scoped installation: ``with injected({...}) as injector: ...``."""
    injector = install(FaultInjector(faults, seed=seed))
    try:
        yield injector
    finally:
        uninstall()


def fire(site: str, **ctx) -> None:
    """Fire ``site`` on the active injector; free no-op when none installed."""
    injector = _ACTIVE
    if injector is not None:
        injector.fire(site, **ctx)
