"""Token-level generation serving: decode-state pool + batching driver.

The one-shot engine path batches whole forwards; autoregressive generation
needs batching *per decode step*.  This module adds that tier:

* :class:`DecodeStatePool` — one batched per-layer KV cache
  (:class:`~repro.models.transformer.DecodeState`) per storage kind, with
  explicit row allocation so many requests multiplex one cache;
* :class:`GenerationSession` — the unit the :class:`TokenScheduler` schedules:
  a prompt, its :class:`~repro.serving.api.GenerationRequest`, the beams'
  decoded suffixes, and the cache rows it currently occupies (preemption drops
  the rows but keeps the suffixes — a restore replays prompt+suffix as one
  ragged prefill, which lands it exactly where it left off);
* :class:`GenerationStream` — queue-backed token iterator for
  ``GenerationRequest(stream=True)``;
* :class:`GenerationDriver` — the single background thread that ticks:
  each tick it asks the scheduler for admissions/preemptions/expiries, then
  co-batches **prefills of new arrivals with single-token decode steps of
  every in-flight sequence** into one padded
  :meth:`~repro.models.transformer.GPTStyleLM.forward_step` call per storage
  kind.  New requests submitted while a tick's forward runs join the next
  tick — mid-decode admission with no drain barrier.

The driver mirrors ``GPTStyleLM.generate``'s cached greedy/beam math
operation-for-operation, so a lone request through the engine reproduces the
model-level output token-for-token (float KV cache; dynamic-activation
quantized models see co-batch-dependent scales — see the README notes).
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Optional

import numpy as np

from repro.autograd.tensor import no_grad
from repro.serving import faults
from repro.serving.api import GenerationRequest
from repro.serving.errors import EngineClosed, QueueFull, RequestShed, WorkerCrashed
from repro.serving.scheduler import DeadlineExceeded, TokenScheduler

__all__ = [
    "DecodeStatePool",
    "GenerationSession",
    "GenerationStream",
    "GenerationDriver",
]


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    return shifted - np.log(np.sum(np.exp(shifted)))


class DecodeStatePool:
    """Row-slot allocator over one batched :class:`DecodeState`.

    The pool owns ``slots`` cache rows; sessions borrow contiguous-or-not row
    index arrays via :meth:`alloc` and give them back with :meth:`release`
    (which resets the rows' cached lengths so storage is reused).
    """

    def __init__(self, model, slots: int, storage: str = "float32") -> None:
        self.storage = storage
        self.state = model.new_decode_state(slots, storage=storage)
        self._free = list(range(slots))

    @property
    def free_slots(self) -> int:
        return len(self._free)

    def alloc(self, n: int) -> np.ndarray:
        if n > len(self._free):
            raise RuntimeError(
                f"decode-state pool exhausted: need {n} rows, have {len(self._free)}"
            )
        rows = np.asarray([self._free.pop() for _ in range(n)], dtype=np.int64)
        self.state.reset_rows(rows)
        return rows

    def release(self, rows: np.ndarray) -> None:
        self.state.reset_rows(rows)
        self._free.extend(int(r) for r in rows)


class GenerationSession:
    """One in-flight generation request, schedulable by :class:`TokenScheduler`.

    Exposes the scheduler protocol (``slots``/``priority``/``order``/
    ``deadline``/``submitted``) plus the decode bookkeeping: per-beam decoded
    ``suffixes``/``scores``/``done`` flags survive preemption, while ``rows``
    (the cache rows currently held) and ``needs_prefill`` describe the
    session's tenancy in a :class:`DecodeStatePool`.
    """

    def __init__(
        self,
        prompt: np.ndarray,
        request: GenerationRequest,
        future: Optional[Future],
        stream: Optional["GenerationStream"],
        order: int,
        deadline: Optional[float],
    ) -> None:
        self.prompt = prompt
        self.request = request
        self.future = future
        self.stream = stream
        self.order = order
        self.priority = int(request.priority)
        self.deadline = deadline
        self.submitted = time.monotonic()
        self.slots = int(request.beam_size)
        self.storage = request.kv_cache
        self.rows: Optional[np.ndarray] = None
        self.needs_prefill = True
        self.seeded = False  # beam search: first step seeds from row 0's top-k
        self.suffixes: List[List[int]] = [[] for _ in range(self.slots)]
        self.scores: List[float] = [0.0] * self.slots
        self.done: List[bool] = [False] * self.slots
        self.preemptions = 0
        self.finished = False

    # ------------------------------------------------------------------
    # tick-side helpers (called by the driver)
    # ------------------------------------------------------------------
    def step_inputs(self) -> List[List[int]]:
        """Token ids each of this session's rows feeds this tick.

        A prefill (fresh or restore) replays ``prompt + suffix`` per beam row;
        a decode step feeds each row's last emitted token.
        """
        prompt = self.prompt.tolist()
        if self.needs_prefill:
            return [prompt + suffix for suffix in self.suffixes]
        return [[suffix[-1]] for suffix in self.suffixes]

    def advance(self, last_logits: np.ndarray, state) -> None:
        """Consume this tick's last-position logits (one vector per beam row).

        Mirrors ``GPTStyleLM._generate_greedy_cached`` /
        ``_generate_beam_cached`` exactly so engine output matches the
        model-level reference token-for-token.
        """
        request = self.request
        max_total = min(state.max_seq_len, self.prompt.size + request.max_new_tokens)
        if request.beam_size == 1:
            token = int(np.argmax(last_logits[0]))
            self.suffixes[0].append(token)
            if self.stream is not None:
                self.stream._put_token(token)
            hit_eos = request.eos_token is not None and token == request.eos_token
            self.done[0] = hit_eos or self.prompt.size + len(self.suffixes[0]) >= max_total
        elif not self.seeded:
            logp0 = _log_softmax(last_logits[0])
            seeds = np.argsort(logp0)[-request.beam_size :]
            self.suffixes = [[int(t)] for t in seeds]
            self.scores = [float(logp0[t]) for t in seeds]
            self.done = [
                request.eos_token is not None and int(t) == request.eos_token for t in seeds
            ]
            self.seeded = True
        else:
            candidates = []  # (score, parent, token-or-None)
            for b in range(request.beam_size):
                if self.done[b]:
                    candidates.append((self.scores[b], b, None))
                    continue
                logp = _log_softmax(last_logits[b])
                for token in np.argsort(logp)[-request.beam_size :]:
                    candidates.append((self.scores[b] + float(logp[token]), b, int(token)))
            candidates.sort(key=lambda item: item[0], reverse=True)
            chosen = candidates[: request.beam_size]
            parents = [parent for _, parent, _ in chosen]
            state.permute_rows(self.rows, parents)
            self.suffixes = [
                self.suffixes[parent] + ([] if token is None else [token])
                for _, parent, token in chosen
            ]
            self.scores = [score for score, _, _ in chosen]
            self.done = [
                token is None or (request.eos_token is not None and token == request.eos_token)
                for _, _, token in chosen
            ]
        if request.beam_size > 1:
            # a beam that cannot take another step (budget or cache capacity)
            # is finished even without EOS
            limit = max_total - self.prompt.size
            self.done = [d or len(s) >= limit for d, s in zip(self.done, self.suffixes)]
        self.needs_prefill = False
        if all(self.done):
            self.finished = True

    def result_sequence(self) -> np.ndarray:
        best = int(np.argmax(self.scores)) if self.request.beam_size > 1 else 0
        return np.concatenate([self.prompt, np.asarray(self.suffixes[best], dtype=np.int64)])

    def resolve(self) -> None:
        """Deliver the finished sequence (outside the driver lock)."""
        sequence = self.result_sequence()
        if self.stream is not None:
            self.stream._finish(sequence)
        if self.future is not None and self.future.set_running_or_notify_cancel():
            self.future.set_result(sequence)

    def fail(self, exc: BaseException) -> None:
        if self.stream is not None:
            self.stream._fail(exc)
        if self.future is not None and self.future.set_running_or_notify_cancel():
            self.future.set_exception(exc)


class GenerationStream:
    """Token iterator returned by ``engine.generate(..., stream=True)``.

    Iterating yields token ids as the driver emits them; :meth:`result` blocks
    for (and returns) the full sequence including the prompt.
    """

    _DONE = object()

    def __init__(self) -> None:
        self._queue: "queue.Queue" = queue.Queue()
        self._final: Future = Future()

    def _put_token(self, token: int) -> None:
        self._queue.put(token)

    def _finish(self, sequence: np.ndarray) -> None:
        self._queue.put(self._DONE)
        if self._final.set_running_or_notify_cancel():
            self._final.set_result(sequence)

    def _fail(self, exc: BaseException) -> None:
        self._queue.put(exc)
        if self._final.set_running_or_notify_cancel():
            self._final.set_exception(exc)

    def __iter__(self):
        while True:
            item = self._queue.get()
            if item is self._DONE:
                return
            if isinstance(item, BaseException):
                raise item
            yield item

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        return self._final.result(timeout=timeout)


class GenerationDriver:
    """Single background thread running the token-level batching loop.

    Each tick:

    1. :meth:`TokenScheduler.plan` decides admissions (rows allocated, prefill
       owed), preemptions (rows released, suffixes kept) and expiries (futures
       failed with :class:`DeadlineExceeded`);
    2. every running session contributes its rows to **one padded ragged
       ``forward_step`` call per storage kind** — prompt replays (``S`` = full
       length) and decode steps (``S`` = 1) in the same batch;
    3. each session consumes its rows' last-valid-position logits: greedy
       append / beam seed / beam step, stream emission, completion on EOS,
       ``max_new_tokens`` or cache capacity.

    Submissions landing while a forward runs are queued by the scheduler and
    admitted next tick, so prefills co-batch with in-flight decodes instead of
    waiting for a drain.

    Failure behaviour: a tick-thread death (injected via the
    ``"generation.tick"`` fault site, or real) fails **every** open session
    with :class:`~repro.serving.errors.WorkerCrashed` — futures reject and
    streams terminate with the error instead of hanging — and the driver
    reports :attr:`crashed` so the engine builds a fresh one for later
    arrivals.  An *ordinary* forward exception stays scoped to the storage
    group that raised it: its sessions fail with the original exception,
    other storage kinds keep decoding.  ``max_waiting`` bounds the waiting
    queue (:class:`~repro.serving.errors.QueueFull` fast-fail, or shedding of
    a strictly lower-priority waiting session, which fails with
    :class:`~repro.serving.errors.RequestShed`).
    """

    def __init__(
        self,
        model,
        slots: int = 16,
        admission: str = "continuous",
        memory_budget: Optional[int] = None,
        max_waiting: Optional[int] = None,
    ) -> None:
        if not hasattr(model, "forward_step") or not hasattr(model, "new_decode_state"):
            raise TypeError(
                f"{type(model).__name__} does not support incremental decode "
                "(needs new_decode_state/forward_step, e.g. GPTStyleLM)"
            )
        self._model = model
        if memory_budget is not None:
            probe = model.new_decode_state(1, storage="float32")
            slots = min(int(slots), max(1, int(memory_budget) // max(1, probe.row_nbytes)))
        self._scheduler = TokenScheduler(int(slots), admission=admission, max_waiting=max_waiting)
        self._pools: Dict[str, DecodeStatePool] = {}
        self._cond = threading.Condition()
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._crash_exc: Optional[BaseException] = None
        self._order = itertools.count()
        self._stats = {
            "slots": int(slots),
            "sequences": 0,
            "generated_tokens": 0,
            "prefill_steps": 0,
            "decode_steps": 0,
            "preemptions": 0,
            "restores": 0,
            "expired": 0,
            "shed": 0,
            "tick_failures": 0,
        }
        self._prefill_s: List[float] = []
        self._decode_s: List[float] = []
        self._busy_s = 0.0

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def submit(self, prompt: np.ndarray, request: GenerationRequest) -> GenerationSession:
        """Queue one generation; the session carries its future/stream.

        Raises :class:`~repro.serving.errors.EngineClosed` after
        :meth:`close`, :class:`~repro.serving.errors.WorkerCrashed` if the
        tick thread died (the engine replaces crashed drivers, so only direct
        driver users see this), and :class:`~repro.serving.errors.QueueFull`
        at the ``max_waiting`` cap.
        """
        stream = GenerationStream() if request.stream else None
        future = None if request.stream else Future()
        deadline = None
        if request.deadline_ms is not None:
            deadline = time.monotonic() + request.deadline_ms / 1000.0
        with self._cond:
            if self._closed:
                raise EngineClosed("cannot submit to a closed GenerationDriver")
            if self._crash_exc is not None:
                error = WorkerCrashed("cannot submit: the generation tick thread crashed")
                error.__cause__ = self._crash_exc
                raise error
            session = GenerationSession(
                prompt, request, future, stream, next(self._order), deadline
            )
            victim = self._scheduler.add(session)
            if victim is not None:
                self._stats["shed"] += 1
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name="repro-generation-driver", daemon=True
                )
                self._thread.start()
            self._cond.notify_all()
        if victim is not None:
            # resolve outside the lock: future/stream delivery runs client code
            victim.fail(
                RequestShed(
                    "generation request shed while waiting: queue at depth cap and "
                    "higher-priority traffic arrived"
                )
            )
        return session

    def close(self, timeout: float = 10.0) -> None:
        """Stop admission of new requests and drain in-flight generations.

        If the tick thread cannot drain within ``timeout`` (hung forward) or
        already crashed, every still-open session fails with
        :class:`~repro.serving.errors.WorkerCrashed` — close never returns
        with a hung future or stream outstanding.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            if thread.is_alive():
                self._fail_open_sessions(
                    WorkerCrashed(
                        "generation driver could not drain before the close timeout"
                    )
                )

    @property
    def crashed(self) -> bool:
        """True once the tick thread died; open sessions were already failed."""
        return self._crash_exc is not None

    @property
    def stats(self) -> dict:
        with self._cond:
            snapshot = dict(self._stats)
            snapshot["tokens_per_s"] = (
                snapshot["generated_tokens"] / self._busy_s if self._busy_s > 0 else 0.0
            )
            for name, samples in (("prefill", self._prefill_s), ("decode", self._decode_s)):
                if samples:
                    arr = np.asarray(samples)
                    snapshot[f"{name}_p50_ms"] = float(np.percentile(arr, 50) * 1e3)
                    snapshot[f"{name}_p95_ms"] = float(np.percentile(arr, 95) * 1e3)
            return snapshot

    # ------------------------------------------------------------------
    # driver thread
    # ------------------------------------------------------------------
    def _pool(self, storage: str) -> DecodeStatePool:
        if storage not in self._pools:
            self._pools[storage] = DecodeStatePool(
                self._model, self._scheduler.total_slots, storage=storage
            )
        return self._pools[storage]

    def _run(self) -> None:
        try:
            self._run_loop()
        except BaseException as exc:  # noqa: BLE001 - a dead tick thread must not hang sessions
            self._on_crash(exc)

    def _on_crash(self, exc: BaseException) -> None:
        """Tick-thread death: fail every open session instead of hanging it."""
        with self._cond:
            self._crash_exc = exc
            self._cond.notify_all()
        error = WorkerCrashed("generation tick thread died; this session cannot finish")
        error.__cause__ = exc
        self._fail_open_sessions(error)

    def _fail_open_sessions(self, error: BaseException) -> None:
        with self._cond:
            open_sessions = list(self._scheduler.waiting) + list(self._scheduler.running)
            for session in open_sessions:
                self._scheduler.discard(session)
                if session.rows is not None:
                    self._pool(session.storage).release(session.rows)
                    session.rows = None
        for session in open_sessions:
            session.fail(error)

    def _run_loop(self) -> None:
        while True:
            with self._cond:
                while True:
                    busy = bool(self._scheduler.waiting or self._scheduler.running)
                    if busy or self._closed:
                        break
                    self._cond.wait()
                if self._closed and not busy:
                    return
                now = time.monotonic()
                admitted, preempted, expired = self._scheduler.plan(now)
                for session in preempted:
                    self._pool(session.storage).release(session.rows)
                    session.rows = None
                    session.needs_prefill = True
                    session.preemptions += 1
                    self._stats["preemptions"] += 1
                for session in admitted:
                    session.rows = self._pool(session.storage).alloc(session.slots)
                    session.needs_prefill = True
                    if session.preemptions:
                        self._stats["restores"] += 1
                self._stats["expired"] += len(expired)
                running = list(self._scheduler.running)
            for session in expired:
                session.fail(
                    DeadlineExceeded(
                        f"generation deadline passed after "
                        f"{time.monotonic() - session.submitted:.3f}s in queue"
                    )
                )
            if running:
                self._tick(running)

    def _tick(self, running: List[GenerationSession]) -> None:
        by_storage: Dict[str, List[GenerationSession]] = {}
        for session in running:
            by_storage.setdefault(session.storage, []).append(session)
        finished: List[GenerationSession] = []
        for storage, sessions in by_storage.items():
            try:
                self._tick_storage(storage, sessions, finished)
            except Exception as exc:  # noqa: BLE001 - scoped: other storages keep decoding
                self._fail_storage_group(sessions, finished, exc)
        for session in finished:
            session.resolve()

    def _fail_storage_group(
        self,
        sessions: List[GenerationSession],
        finished: List[GenerationSession],
        exc: Exception,
    ) -> None:
        """One storage group's forward failed: fail exactly its open sessions."""
        failed = [s for s in sessions if s not in finished]
        with self._cond:
            self._stats["tick_failures"] += 1
            for session in failed:
                self._scheduler.discard(session)
                if session.rows is not None:
                    self._pool(session.storage).release(session.rows)
                    session.rows = None
        for session in failed:
            session.fail(exc)

    def _tick_storage(
        self,
        storage: str,
        sessions: List[GenerationSession],
        finished: List[GenerationSession],
    ) -> None:
        pool = self._pool(storage)
        inputs: List[List[int]] = []
        row_ids: List[int] = []
        spans: List[tuple] = []  # (session, batch offset)
        any_prefill = False
        for session in sessions:
            any_prefill = any_prefill or session.needs_prefill
            spans.append((session, len(row_ids)))
            for row, tokens in zip(session.rows, session.step_inputs()):
                row_ids.append(int(row))
                inputs.append(tokens)
        new_lens = np.asarray([len(tokens) for tokens in inputs], dtype=np.int64)
        width = int(new_lens.max())
        tokens = np.zeros((len(inputs), width), dtype=np.int64)
        for i, ids in enumerate(inputs):
            tokens[i, : len(ids)] = ids
        faults.fire("generation.tick", storage=storage, batch=len(inputs))
        start = time.perf_counter()
        with no_grad():
            logits = self._model.forward_step(
                tokens, pool.state, rows=np.asarray(row_ids, dtype=np.int64), new_lens=new_lens
            ).data
        elapsed = time.perf_counter() - start
        last = logits[np.arange(len(inputs)), new_lens - 1]
        with self._cond:
            self._busy_s += elapsed
            (self._prefill_s if any_prefill else self._decode_s).append(elapsed)
            self._stats["prefill_steps" if any_prefill else "decode_steps"] += 1
            for session, offset in spans:
                before = sum(len(s) for s in session.suffixes)
                session.advance(last[offset : offset + session.slots], pool.state)
                self._stats["generated_tokens"] += max(
                    0, sum(len(s) for s in session.suffixes) - before
                )
                if session.finished:
                    pool.release(session.rows)
                    session.rows = None
                    self._scheduler.on_finished(session)
                    self._stats["sequences"] += 1
                    finished.append(session)
