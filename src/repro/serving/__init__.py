"""Serving layer: request batching and decode/compute overlap.

The throughput side of deployment, on top of the packed storage and
streaming serving modes:

* :class:`~repro.serving.engine.ServingEngine` — a request queue that fuses
  compatible single-sample requests (stack, or pad along axis 0) into one
  forward call, amortising the streaming path's per-forward decode cost
  across the whole batch;
* :class:`~repro.serving.prefetch.BlockPrefetcher` — double-buffered block
  decode for streaming ``QuantizedLinear``: a background thread decodes
  block *k+1* while the main thread runs block *k*'s matmul
  (enable via ``set_serving_mode(model, "streaming", prefetch=True)``).

Pair with ``load_quantized(..., mmap=True)`` for the cold-start half:
``ServingEngine.from_checkpoint`` wires mmap load, serving mode, block size,
prefetch and the engine in one call.
"""

from repro.serving.engine import ServingEngine
from repro.serving.prefetch import BlockPrefetcher

__all__ = ["ServingEngine", "BlockPrefetcher"]
