"""Serving layer: continuous batching, multi-worker execution, decode overlap.

The throughput side of deployment, on top of the packed storage and
streaming serving modes:

* :class:`~repro.serving.engine.ServingEngine` — N worker threads over a
  continuous-batching scheduler: compatible single-sample requests fuse into
  one forward call (stack, or pad along axis 0), newly-arrived requests join
  the next forward of an in-flight compatibility group instead of waiting
  for a drain, and per-request priorities/deadlines order admission;
* :class:`~repro.serving.scheduler.ContinuousScheduler` — the engine-agnostic
  per-compatibility-bucket admission core (deadline-aware windows,
  :class:`~repro.serving.scheduler.DeadlineExceeded` on queue-time misses);
* :class:`~repro.serving.prefetch.BlockPrefetcher` — double-buffered block
  decode for one streaming ``QuantizedLinear``: a background thread decodes
  block *k+1* while the main thread runs block *k*'s matmul
  (``set_serving_mode(model, "streaming", prefetch=True)``);
* :class:`~repro.serving.prefetch.PipelinePrefetcher` — cross-layer pipelined
  decode: a shared pool slides a decode window across consecutive streaming
  layers, so layer *k+1*'s first blocks decode while layer *k* finishes
  (``set_serving_mode(model, "streaming", prefetch="pipeline")``).

Pair with ``load_quantized(..., mmap=True)`` for the cold-start half;
``share_views=True`` lets multi-worker replicas alias one file mapping.
``ServingEngine.from_checkpoint(..., workers=N)`` wires mmap load, shared
views, serving mode, prefetch and the engine in one call.
"""

from repro.serving.engine import ServingEngine
from repro.serving.prefetch import BlockPrefetcher, PipelinePrefetcher
from repro.serving.scheduler import (
    ContinuousScheduler,
    DeadlineExceeded,
    Request,
    compat_key,
)

__all__ = [
    "ServingEngine",
    "BlockPrefetcher",
    "PipelinePrefetcher",
    "ContinuousScheduler",
    "DeadlineExceeded",
    "Request",
    "compat_key",
]
