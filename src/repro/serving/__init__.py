"""Serving layer: continuous batching, multi-worker execution, decode overlap.

The throughput side of deployment, on top of the packed storage and
streaming serving modes:

* :class:`~repro.serving.engine.ServingEngine` — N worker threads over a
  continuous-batching scheduler: compatible single-sample requests fuse into
  one forward call (stack, or pad along axis 0), newly-arrived requests join
  the next forward of an in-flight compatibility group instead of waiting
  for a drain, and per-request priorities/deadlines order admission;
* :class:`~repro.serving.api.SubmitOptions` /
  :class:`~repro.serving.api.GenerationRequest` — the typed request surface:
  ``engine.submit(x, SubmitOptions(...))`` for one-shot forwards,
  ``engine.generate(prompt, GenerationRequest(...))`` for autoregressive
  generation (future, or token stream with ``stream=True``); the old
  ``priority=``/``deadline_ms=`` kwargs remain as warn-once shims;
* :class:`~repro.serving.scheduler.ContinuousScheduler` — the engine-agnostic
  per-compatibility-bucket admission core (deadline-aware windows,
  :class:`~repro.serving.scheduler.DeadlineExceeded` on queue-time misses);
* :class:`~repro.serving.scheduler.TokenScheduler` +
  :mod:`repro.serving.generation` — the token-level generation tier: one
  decode-state pool multiplexes per-request KV caches (float32 or FP8
  packed), a single driver thread co-batches prefills of new arrivals with
  single-token decode steps of every in-flight sequence, and a slot budget
  with strict-urgency preemption bounds decode-state memory;
* :class:`~repro.serving.prefetch.BlockPrefetcher` — double-buffered block
  decode for one streaming ``QuantizedLinear``: a background thread decodes
  block *k+1* while the main thread runs block *k*'s matmul
  (``set_serving_mode(model, "streaming", prefetch=True)``);
* :class:`~repro.serving.prefetch.PipelinePrefetcher` — cross-layer pipelined
  decode: a shared pool slides a decode window across consecutive streaming
  layers, so layer *k+1*'s first blocks decode while layer *k* finishes
  (``set_serving_mode(model, "streaming", prefetch="pipeline")``).

Pair with ``load_quantized(..., mmap=True)`` for the cold-start half;
``share_views=True`` lets multi-worker replicas alias one file mapping.
``ServingEngine.from_checkpoint(..., workers=N)`` wires mmap load, shared
views, serving mode, prefetch and the engine in one call.

Failure behaviour is part of the API: :mod:`repro.serving.errors` is the
typed exception taxonomy (:class:`~repro.serving.errors.ServingError` and
friends), and :mod:`repro.serving.faults` the deterministic fault injector
that exercises every recovery path (worker supervision and restart, retry
with backoff, queue caps and shedding, prefetch error relay, checkpoint
integrity).
"""

from repro.serving.api import WORKER_MODES, GenerationRequest, SubmitOptions
from repro.serving.engine import ServingEngine
from repro.serving.errors import (
    DeadlineExceeded,
    EngineClosed,
    EngineDraining,
    EngineFailed,
    PrefetchError,
    QueueFull,
    RequestShed,
    ServingError,
    WorkerCrashed,
)
from repro.serving.faults import FaultInjector, FaultSpec, InjectedCrash, InjectedError, injected
from repro.serving.generation import (
    DecodeStatePool,
    GenerationDriver,
    GenerationSession,
    GenerationStream,
)
from repro.serving.prefetch import BlockPrefetcher, PipelinePrefetcher
from repro.serving.scheduler import (
    ContinuousScheduler,
    Request,
    TokenScheduler,
    compat_key,
)

__all__ = [
    "ServingEngine",
    "SubmitOptions",
    "GenerationRequest",
    "GenerationStream",
    "GenerationSession",
    "GenerationDriver",
    "DecodeStatePool",
    "BlockPrefetcher",
    "PipelinePrefetcher",
    "ContinuousScheduler",
    "TokenScheduler",
    "Request",
    "compat_key",
    "ServingError",
    "EngineClosed",
    "EngineDraining",
    "QueueFull",
    "RequestShed",
    "DeadlineExceeded",
    "WorkerCrashed",
    "EngineFailed",
    "PrefetchError",
    "WORKER_MODES",
    "FaultInjector",
    "FaultSpec",
    "InjectedCrash",
    "InjectedError",
    "injected",
]
