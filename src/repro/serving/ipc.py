"""Pickle-framed IPC between the serving engine and its worker processes.

The process-worker tier (``ServingEngine(worker_mode="process")``) moves the
model call across a process boundary: the engine's dispatcher thread sends a
stacked batch down a duplex pipe, the child runs the forward, and the result
(or a typed error) comes back.  This module owns that boundary:

* :class:`Channel` — a thin framing layer over a
  ``multiprocessing.connection.Connection``: every message is one pickled
  ``(kind, seq, payload)`` tuple, and every transport-level failure (EOF,
  broken pipe, reset, an unpicklable frame) is normalised into
  :class:`WorkerProcessDied`;
* :class:`WorkerProcessDied` — deliberately a ``BaseException``: a dead pipe
  means the worker *process* is gone (``SIGKILL``, OOM-kill, segfault in a
  native kernel, ``os._exit``), which must kill the dispatcher thread and
  reach the supervisor's crash-recovery path, not be absorbed by the
  per-request ``except Exception`` handlers that route ordinary forward
  errors to futures (the same contract as
  :class:`~repro.serving.faults.InjectedCrash`);
* :class:`RemoteError` + :func:`wrap_exception` — an exception raised in the
  child may not survive pickling (closures, locks, exotic ``__init__``
  signatures); ``wrap_exception`` ships it as-is when it pickles and as a
  :class:`RemoteError` carrying the formatted remote traceback when it does
  not, so the parent always gets *an* exception with the original story.

Message kinds used by the worker protocol (see
:mod:`repro.serving.worker_proc`):

==============  =============================================================
kind            payload
==============  =============================================================
``ready``       child finished building its replica: ``{"pid", "mapped_files"}``
``init_error``  child failed to build its replica: the (wrapped) exception
``forward``     parent → child: the stacked batch (one ``np.ndarray``)
``result``      child → parent: ``(output array, forward_seconds)``
``error``       child → parent: the (wrapped) ordinary forward exception
``shutdown``    parent → child: drain complete, exit cleanly
==============  =============================================================
"""

from __future__ import annotations

import pickle
import traceback
from typing import Any, Optional, Tuple

__all__ = ["Channel", "WorkerProcessDied", "RemoteError", "wrap_exception"]


class WorkerProcessDied(BaseException):
    """The pipe to a worker process broke: the process is gone.

    A ``BaseException`` on purpose — see the module docstring.  ``exitcode``
    carries the child's exit status when the caller knows it (negative values
    are the killing signal, POSIX convention).
    """

    def __init__(self, message: str, exitcode: Optional[int] = None) -> None:
        super().__init__(message)
        self.exitcode = exitcode


class RemoteError(RuntimeError):
    """A worker-process exception that could not itself be pickled.

    Carries the remote type name and formatted traceback so the failure is
    debuggable from the parent even though the original object never crossed
    the pipe.
    """

    def __init__(self, remote_type: str, message: str, remote_traceback: str) -> None:
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type
        self.remote_traceback = remote_traceback

    def __str__(self) -> str:  # keep the remote traceback one print away
        return f"{super().__str__()}\n--- remote traceback ---\n{self.remote_traceback}"


def wrap_exception(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives a pickle round trip, else a :class:`RemoteError`."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        tb = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
        return RemoteError(type(exc).__name__, str(exc), tb)


class Channel:
    """Typed send/recv framing over one duplex ``Connection``.

    All transport failures surface as :class:`WorkerProcessDied`; the channel
    never half-works.  Thread-compatibility contract: one sender and one
    receiver at a time (the engine uses one dispatcher thread per channel,
    the child is single-threaded).
    """

    __slots__ = ("_conn",)

    def __init__(self, conn) -> None:
        self._conn = conn

    def send(self, kind: str, seq: int = 0, payload: Any = None) -> None:
        try:
            self._conn.send((kind, seq, payload))
        except WorkerProcessDied:
            raise
        except Exception as exc:
            raise WorkerProcessDied(f"IPC send of {kind!r} failed: {exc!r}") from exc

    def recv(self) -> Tuple[str, int, Any]:
        try:
            message = self._conn.recv()
        except WorkerProcessDied:
            raise
        except EOFError as exc:
            raise WorkerProcessDied("worker process closed its IPC pipe (EOF)") from exc
        except Exception as exc:
            raise WorkerProcessDied(f"IPC receive failed: {exc!r}") from exc
        if not isinstance(message, tuple) or len(message) != 3:
            raise WorkerProcessDied(f"malformed IPC frame: {type(message).__name__}")
        return message

    def poll(self, timeout: float = 0.0) -> bool:
        try:
            return self._conn.poll(timeout)
        except Exception:
            # a dead pipe is "readable" — the next recv turns it into a
            # WorkerProcessDied with the real story
            return True

    def close(self) -> None:
        try:
            self._conn.close()
        except Exception:
            pass
