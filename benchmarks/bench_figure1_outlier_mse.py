"""Figure 1 — quantization error of FP8 formats vs INT8 on an outlier-contaminated Gaussian."""

import numpy as np

from repro.evaluation.reporting import format_table
from repro.fp8 import E3M4, E4M3, E5M2
from repro.fp8.int8 import int8_quantize_dequantize
from repro.fp8.quantize import quantize_dequantize


def make_tensor(n=200_000, outlier_fraction=0.01, seed=0):
    """X ~ N(0, 0.5) with 1% outliers uniform in [-6, 6] (the Figure 1 setup)."""
    rng = np.random.default_rng(seed)
    x = rng.normal(0.0, np.sqrt(0.5), n)
    n_out = int(n * outlier_fraction)
    x[:n_out] = rng.uniform(-6.0, 6.0, n_out)
    return x


def figure1_rows(x):
    rows = []
    for fmt in (E5M2, E4M3, E3M4):
        q = quantize_dequantize(x, fmt)
        rows.append({"Format": fmt.name, "MSE": float(np.mean((q - x) ** 2))})
    q8 = int8_quantize_dequantize(x)
    rows.append({"Format": "INT8", "MSE": float(np.mean((q8 - x) ** 2))})
    return rows


def test_figure1_outlier_mse(benchmark):
    x = make_tensor()
    rows = benchmark.pedantic(lambda: figure1_rows(x), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 1: MSE on N(0, 0.5) with 1% outliers in [-6, 6]"))
    mse = {row["Format"]: row["MSE"] for row in rows}
    # the paper's qualitative ordering: E3M4 best, E5M2 worst among FP8; E3M4 beats INT8
    assert mse["E3M4"] < mse["INT8"]
    assert mse["E3M4"] < mse["E4M3"] < mse["E5M2"]
