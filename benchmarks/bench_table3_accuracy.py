"""Table 3 — accuracy of representative models per data format (derived from the sweep)."""

from repro.evaluation.reporting import format_table

REPRESENTATIVE = [
    "resnet18-imagenet",
    "densenet121-imagenet",
    "wav2vec2-librispeech",
    "dlrm-criteo",
    "bert-base-mrpc",
    "bert-large-rte",
    "distilbert-mrpc",
    "bloom-7b1-lambada",
    "bloom-176b-lambada",
    "llama-65b-lambada",
]

COLUMN_CONFIGS = {
    "E5M2": "E5M2-direct",
    "E4M3": "E4M3-static",
    "E3M4": "E3M4-static",
    "INT8": "INT8",
}


def table3_rows(report):
    rows = []
    for task in REPRESENTATIVE:
        records = [r for r in report.records if r.task == task]
        if not records:
            continue
        row = {"Model": task, "FP32": records[0].fp32_metric}
        for label, config in COLUMN_CONFIGS.items():
            match = [r for r in records if r.config == config]
            row[label] = match[0].quantized_metric if match else float("nan")
        rows.append(row)
    return rows


def test_table3_model_accuracy(benchmark, sweep_report):
    rows = benchmark.pedantic(lambda: table3_rows(sweep_report), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Table 3: accuracy of representative models"))
    assert rows, "sweep did not cover any representative task"
    # FP8 stays close to FP32 on the representative set (within 3% relative on average)
    for label in ("E4M3", "E3M4"):
        rel = [abs(r["FP32"] - r[label]) / r["FP32"] for r in rows]
        assert sum(rel) / len(rel) < 0.03
