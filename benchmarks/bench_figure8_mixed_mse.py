"""Figure 8 — MSE of a Linear operator's input/weight/output under single vs mixed FP8 formats."""

import numpy as np

from repro.autograd.tensor import no_grad
from repro.evaluation.reporting import format_table
from repro.fp8 import E3M4, E4M3, E5M2
from repro.fp8.quantize import quantize_dequantize
from repro.nn.layers import Linear


def capture_fc1(bundle):
    """Capture the input activation and weight of the first FFN Linear (BERT fc1)."""
    target_name = next(
        name for name, m in bundle.model.named_modules() if name.endswith("fc1") and isinstance(
            m, Linear
        )
    )
    module = bundle.model.get_submodule(target_name)
    captured = {}
    handle = module.register_forward_hook(
        lambda m, inputs, output: captured.setdefault("input", inputs[0].data.copy())
    )
    with no_grad():
        bundle.model(bundle.prepare_inputs(bundle.eval_data.inputs[:64]))
    handle.remove()
    return captured["input"], module.weight.data.copy()


def figure8_rows(activation, weight):
    act2d = activation.reshape(-1, activation.shape[-1])
    ref_out = act2d @ weight.T
    configs = [
        ("E5M2", E5M2, E5M2),
        ("E4M3", E4M3, E4M3),
        ("E3M4", E3M4, E3M4),
        ("Mixed (E4M3 act / E3M4 wt)", E4M3, E3M4),
    ]
    rows = []
    for name, act_fmt, w_fmt in configs:
        q_act = quantize_dequantize(act2d, act_fmt)
        q_w = quantize_dequantize(weight, w_fmt, axis=0)
        q_out = q_act @ q_w.T
        rows.append(
            {
                "Formats": name,
                "Input MSE": float(np.mean((q_act - act2d) ** 2)),
                "Weight MSE": float(np.mean((q_w - weight) ** 2)),
                "Output MSE": float(np.mean((q_out - ref_out) ** 2)),
            }
        )
    return rows


def test_figure8_mixed_format_mse(benchmark, bert_bundle):
    activation, weight = capture_fc1(bert_bundle)
    rows = benchmark.pedantic(lambda: figure8_rows(activation, weight), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 8: MSE with mixed vs single FP8 formats (BERT fc1)"))
    by_name = {r["Formats"]: r for r in rows}
    mixed = by_name["Mixed (E4M3 act / E3M4 wt)"]
    # mixed formats combine the best of both: output error no worse than either uniform choice
    assert mixed["Output MSE"] <= by_name["E5M2"]["Output MSE"] + 1e-9
    assert mixed["Weight MSE"] <= by_name["E4M3"]["Weight MSE"] + 1e-9
