"""Native kernel tier: compiled fused decode vs the numpy fused path.

The native tier (:mod:`repro.fp8.native`) replaces the numpy decode chain —
int64 code widening, LUT gather, float64 divide, float32 narrow, roughly 61
bytes of memory traffic per element across four temporaries — with one
compiled C pass touching ~5 bytes per element (1 code byte in, 4 float32
bytes out).  Both are memory-bound, so the roofline-derived ceiling for the
decode is the traffic ratio, ~12x; the streaming matmul microbench gated
here spends the remainder of its time in the shared BLAS matmul, which
dilutes that ceiling to a conservative **2x floor** on the decode-dominated
small-batch workload (batch 2, 1024x1024 weight — exactly the serving regime
PRs 3-6 optimised around the kernels).

Gates:

* native-tier streaming matmul >= 2x the numpy ``fast`` tier on the blocked
  decode+matmul microbench — override with ``REPRO_BENCH_NATIVE_MIN_SPEEDUP``
  (CI uses a looser bound on contended shared runners);
* native outputs **bit-identical** to the ``fast`` tier on that workload
  (the tier keeps BLAS for the FLOPs, so this holds exactly);
* the opt-in fused FMA kernel (``REPRO_NATIVE_FMA=1``) is *exact* on a
  constructed workload where every partial sum is exactly representable —
  proving the accumulation itself correct — and its timing is recorded for
  the trajectory (informational: sequential FMA is not gated against
  multi-threaded BLAS).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_native_kernels.py

or through pytest::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_native_kernels.py
"""

from __future__ import annotations

import os
import time

import numpy as np

from bench_report import record
from repro import nn
from repro.evaluation.reporting import format_table
from repro.fp8 import E4M3, native
from repro.fp8.kernels import _decode_lut, use_kernel
from repro.quantization import quantize_model, set_serving_mode, standard_recipe
from repro.quantization.qconfig import Approach

IN_FEATURES = 1024
OUT_FEATURES = 1024
BATCH = 2
#: native must beat the numpy fused decode→matmul path by this factor on the
#: streaming microbench.  2x is the roofline-derived floor (see module
#: docstring); CI can loosen it for shared-runner jitter.
ACCEPTANCE_SPEEDUP = float(os.environ.get("REPRO_BENCH_NATIVE_MIN_SPEEDUP", "2.0"))

ROUNDS = 30
WARMUP = 3


def build_streaming_linear():
    """One packed E4M3 per-channel QuantizedLinear serving in streaming mode.

    Prefetch is disabled so the timing isolates the kernels themselves rather
    than the overlap schedule (bench_serving_path covers the schedules).
    """
    rng = np.random.default_rng(21)
    model = nn.Sequential(nn.Linear(IN_FEATURES, OUT_FEATURES, rng=rng))
    recipe = standard_recipe(
        "E4M3",
        approach=Approach.DYNAMIC,
        skip_first_operator=False,
        skip_last_operator=False,
    )
    qmodel = quantize_model(model, recipe).model
    qmodel.eval()
    set_serving_mode(qmodel, "streaming", prefetch=False)
    (qlinear,) = list(qmodel)
    return qlinear


def probe_batch(seed: int = 4) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, 1.0, (BATCH, IN_FEATURES)).astype(np.float32)


def _time(fn, rounds: int = ROUNDS, warmup: int = WARMUP) -> float:
    for _ in range(warmup):
        fn()
    best = np.inf
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_streaming_speedup() -> dict:
    """Time the blocked streaming matmul on the fast vs native tiers."""
    qlinear = build_streaming_linear()
    x = probe_batch()

    with use_kernel("fast"):
        fast_out = qlinear._stream_matmul(x)
        fast_s = _time(lambda: qlinear._stream_matmul(x))
    with use_kernel("native"):
        native_out = qlinear._stream_matmul(x)
        native_s = _time(lambda: qlinear._stream_matmul(x))

    bit_identical = bool(np.array_equal(fast_out.view(np.uint32), native_out.view(np.uint32)))
    if not bit_identical:
        raise AssertionError("native streaming matmul is not bit-identical to fast")

    return {
        "batch": BATCH,
        "in_features": IN_FEATURES,
        "out_features": OUT_FEATURES,
        "native_compiler_available": native.native_available(),
        "fast_us_per_forward": fast_s * 1e6,
        "native_us_per_forward": native_s * 1e6,
        "speedup": fast_s / native_s,
        "bit_identical": bit_identical,
    }


def run_fma_exactness_and_timing() -> dict:
    """The opt-in fused FMA kernel: exact on an exactly-representable workload.

    Activations are small integers and decoded weights are scaled ±1/0, so
    every product and partial sum is an exact float32 integer — any
    accumulation order gives identical bits, which lets the sequential C
    kernel be compared against BLAS *exactly* and proves the FMA loop itself
    correct.  Timing is informational (single sequential core vs BLAS).
    """
    rng = np.random.default_rng(8)
    qlinear = build_streaming_linear()
    wq = qlinear.weight_q
    # overwrite the packed weight with the exact-regime pattern: codes decode
    # to ±1.0/+0.0 and the scale is a power of two, so w = ±2.0 exactly and
    # every product/partial sum against integer activations is an exact
    # small float32 integer
    wq.codes[...] = rng.choice(np.array([0x38, 0xB8, 0x00], dtype=np.uint8), wq.codes.shape)
    np.asarray(wq.scale)[...] = 0.5
    x = rng.integers(-4, 5, (BATCH, IN_FEATURES)).astype(np.float32)
    lut = _decode_lut(wq.fmt)
    dense = (lut[wq.codes].astype(np.float64) / np.asarray(wq.scale)).astype(np.float32)
    oracle = x @ dense.T + qlinear.inner.bias.data

    os.environ[native.FMA_ENV_VAR] = "1"
    try:
        with use_kernel("native"):
            fma_out = qlinear._stream_matmul(x)
            fma_s = _time(lambda: qlinear._stream_matmul(x))
    finally:
        os.environ.pop(native.FMA_ENV_VAR, None)
    with use_kernel("fast"):
        blas_s = _time(lambda: qlinear._stream_matmul(x))

    exact = bool(np.array_equal(fma_out, oracle))
    if not exact:
        raise AssertionError("fused FMA kernel is not exact on the exact-regime workload")
    return {
        "fma_us_per_forward": fma_s * 1e6,
        "numpy_fast_us_per_forward": blas_s * 1e6,
        "fma_vs_fast": blas_s / fma_s,
        "exact_on_representable_workload": exact,
    }


def run() -> dict:
    return {
        "streaming": run_streaming_speedup(),
        "fused_fma": run_fma_exactness_and_timing(),
    }


def test_native_streaming_speedup():
    if not native.native_available():
        import pytest

        pytest.skip("no C compiler available")
    stats = run_streaming_speedup()
    record("native_kernels", {"streaming": stats})
    print(
        f"\nnative {stats['native_us_per_forward']:.0f} us/forward vs fast "
        f"{stats['fast_us_per_forward']:.0f} us/forward -> {stats['speedup']:.2f}x"
    )
    assert stats["bit_identical"]
    assert stats["speedup"] >= ACCEPTANCE_SPEEDUP, (
        f"native tier speedup {stats['speedup']:.2f}x is below the "
        f"{ACCEPTANCE_SPEEDUP}x acceptance bound on the streaming microbench"
    )


def test_fused_fma_exactness():
    if not native.native_available():
        import pytest

        pytest.skip("no C compiler available")
    stats = run_fma_exactness_and_timing()
    record("native_kernels", {"fused_fma": stats})
    assert stats["exact_on_representable_workload"]


def main():
    stats = run()
    s = stats["streaming"]
    f = stats["fused_fma"]
    rows = [
        {
            "Path": "fast (numpy decode + BLAS)",
            "us/forward": f"{s['fast_us_per_forward']:.0f}",
            "Speedup": "1.00x",
        },
        {
            "Path": "native (C decode + BLAS)",
            "us/forward": f"{s['native_us_per_forward']:.0f}",
            "Speedup": f"{s['speedup']:.2f}x",
        },
        {
            "Path": "native fused FMA (opt-in)",
            "us/forward": f"{f['fma_us_per_forward']:.0f}",
            "Speedup": f"{f['fma_vs_fast']:.2f}x",
        },
    ]
    print(format_table(rows))
    print(f"bit-identical (native vs fast): {s['bit_identical']}")
    print(f"FMA exact on representable workload: {f['exact_on_representable_workload']}")
    record("native_kernels", stats)
    gate = "PASS" if s["speedup"] >= ACCEPTANCE_SPEEDUP else "FAIL"
    print(f"acceptance (>= {ACCEPTANCE_SPEEDUP}x): {gate}")


if __name__ == "__main__":
    main()
