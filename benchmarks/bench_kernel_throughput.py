"""FP8 cast kernel throughput: bit-twiddling fast path vs. table-based reference.

Records elements/sec for both kernels registered in :mod:`repro.fp8.kernels`
(``fast`` — direct IEEE-754 bit manipulation; ``reference`` — the original
table-``searchsorted`` oracle) on 1M-element tensors, covering the raw cast
(`fp8_round` in float32 and float64), the fused Q/DQ round trip used by every
quantized operator and observer search, and encode/decode.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_kernel_throughput.py

or through pytest (the ``test_`` entry point asserts the acceptance target of
a >= 5x elements/sec speedup for the 1M-element round workloads)::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernel_throughput.py -s
"""

from __future__ import annotations

import os
import time

import numpy as np

from bench_report import record
from repro.evaluation.reporting import format_table
from repro.fp8 import E4M3, get_format
from repro.fp8.kernels import use_kernel
from repro.fp8.quantize import fp8_round, quantize_dequantize

N = 1_000_000
# The fast kernel must beat the searchsorted path by this factor.  The default
# is the acceptance target measured on a quiet machine; CI runs on contended
# shared runners where timing jitter is large, so it overrides this with a
# looser smoke threshold via REPRO_BENCH_MIN_SPEEDUP.
ACCEPTANCE_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "5.0"))


def _time(fn, rounds=5, warmup=1):
    for _ in range(warmup):
        fn()
    best = np.inf
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _workloads(fmt):
    rng = np.random.default_rng(0)
    x64 = rng.normal(0.0, 1.0, N)
    x32 = x64.astype(np.float32)
    scale = np.asarray(fmt.max_value / float(np.abs(x64).max()))
    codes = fmt.encode(x32)
    return [
        ("fp8_round f32", N, lambda: fp8_round(x32, fmt)),
        ("fp8_round f64", N, lambda: fp8_round(x64, fmt)),
        ("quantize_dequantize f32", N, lambda: quantize_dequantize(x32, fmt, scale=scale)),
        ("encode f32", N, lambda: fmt.encode(x32)),
        ("decode", N, lambda: fmt.decode(codes)),
    ]


def run(fmt=E4M3):
    rows = []
    speedups = {}
    for name, n, fn in _workloads(fmt):
        timings = {}
        for kernel in ("reference", "fast"):
            with use_kernel(kernel):
                timings[kernel] = _time(fn)
        speedup = timings["reference"] / timings["fast"]
        speedups[name] = speedup
        rows.append(
            {
                "Workload": f"{name} ({fmt.name})",
                "Reference Melem/s": f"{n / timings['reference'] / 1e6:.1f}",
                "Fast Melem/s": f"{n / timings['fast'] / 1e6:.1f}",
                "Speedup": f"{speedup:.1f}x",
            }
        )
    return rows, speedups


def main():
    all_rows = []
    round_speedups = {}
    for fmt_name in ("E4M3", "E5M2"):
        rows, speedups = run(get_format(fmt_name))
        all_rows.extend(rows)
        for name, s in speedups.items():
            if name.startswith("fp8_round"):
                round_speedups[f"{name} ({fmt_name})"] = s
    print()
    print(
        format_table(
            all_rows,
            title=f"FP8 cast kernel throughput ({N:,} elements, best of 5)",
        )
    )
    record("kernel_throughput", {"elements": N, "round_speedups": round_speedups})
    return round_speedups


def test_kernel_throughput():
    round_speedups = main()
    laggards = {k: v for k, v in round_speedups.items() if v < ACCEPTANCE_SPEEDUP}
    assert not laggards, (
        f"fast kernel below the {ACCEPTANCE_SPEEDUP}x acceptance speedup on: {laggards}"
    )


if __name__ == "__main__":
    main()
