"""Fault tolerance: crash-recovery time, fail-fast latency, overload control, scrub throughput.

The resilience layer's acceptance gates, measured rather than assumed:

1. **Crash recovery** — with a worker crash injected into the first forward
   of a 16-request burst, every request must still complete (bit-identical
   to the uncrashed run, via transparent retry on the restarted worker) and
   the whole burst must resolve within ``ACCEPTANCE_RESOLVE_S`` — zero hung
   futures.  The wall-clock overhead the crash adds over a clean burst is
   gated at ``ACCEPTANCE_RECOVERY_OVERHEAD_S`` (override with
   ``REPRO_BENCH_RECOVERY_MAX_S`` — shared CI runners jitter).
2. **Fail-fast** — a request with no retry budget on a crashing worker must
   receive its typed :class:`~repro.serving.errors.WorkerCrashed` within
   ``ACCEPTANCE_FAIL_FAST_S`` of submission: supervision latency, not a
   drain timeout, bounds the bad news.
3. **Overload** — at the queue-depth cap, :class:`QueueFull` must be raised
   in well under ``ACCEPTANCE_REJECT_S`` (admission is a fast-fail check,
   not a queue wait) and priority shedding must evict exactly the
   lowest-priority victim.
4. **Integrity scrub** — ``verify_container`` must stream a multi-megabyte
   checkpoint at ``>= ACCEPTANCE_SCRUB_MBPS`` and detect a single flipped
   payload byte.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py

or through pytest::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_fault_tolerance.py
"""

from __future__ import annotations

import os
import struct
import tempfile
import threading
import time

import numpy as np

import repro.nn as nn
from bench_report import record
from repro.autograd.tensor import Tensor
from repro.evaluation.reporting import format_table
from repro.serialization import ChecksumError, verify_container, write_container
from repro.serving import (
    FaultSpec,
    QueueFull,
    ServingEngine,
    SubmitOptions,
    WorkerCrashed,
    injected,
)

#: every future in the crashed burst must resolve within this bound
ACCEPTANCE_RESOLVE_S = 30.0
#: wall-clock overhead one crash may add to the burst (supervision + backoff)
ACCEPTANCE_RECOVERY_OVERHEAD_S = float(os.environ.get("REPRO_BENCH_RECOVERY_MAX_S", "2.0"))
#: submit -> typed WorkerCrashed latency with no retry budget
ACCEPTANCE_FAIL_FAST_S = float(os.environ.get("REPRO_BENCH_FAIL_FAST_MAX_S", "1.0"))
#: QueueFull must be immediate (an admission check, not a timeout)
ACCEPTANCE_REJECT_S = 0.05
#: verify_container streaming throughput floor
ACCEPTANCE_SCRUB_MBPS = float(os.environ.get("REPRO_BENCH_SCRUB_MIN_MBPS", "200"))

BURST = 16
FEATURES = 64


class Affine(nn.module.Module):
    """Elementwise forward: bit-identical across any batch composition."""

    def forward(self, x):
        return Tensor(np.asarray(x.data) * 2.0 + 1.0)


class Gate(nn.module.Module):
    """Forward blocks until released — deterministic queue buildup."""

    def __init__(self):
        super().__init__()
        self.release = threading.Event()
        self.entered = threading.Event()

    def forward(self, x):
        self.entered.set()
        assert self.release.wait(timeout=30)
        return Tensor(np.asarray(x.data) * 1.0)


def _samples(count=BURST, seed=1):
    rng = np.random.default_rng(seed)
    return [rng.normal(0, 1, (FEATURES,)).astype(np.float32) for _ in range(count)]


def _engine(model, **overrides):
    params = dict(max_batch_size=4, max_wait_ms=2, supervision_interval_ms=5)
    params.update(overrides)
    return ServingEngine(model, **params)


def measure_crash_recovery():
    samples = _samples()
    with _engine(Affine()) as clean_engine:
        start = time.perf_counter()
        expected = clean_engine.serve_batch(samples, timeout=ACCEPTANCE_RESOLVE_S)
        clean_s = time.perf_counter() - start

    options = SubmitOptions(max_retries=3, retry_backoff_ms=5.0)
    with injected({"engine.forward": FaultSpec(kind="crash", on_calls={1}, max_fires=1)}) as inj:
        with _engine(Affine()) as engine:
            start = time.perf_counter()
            futures = [engine.submit(s, options) for s in samples]
            deadline = start + ACCEPTANCE_RESOLVE_S
            outputs = [f.result(timeout=max(0.0, deadline - time.perf_counter())) for f in futures]
            faulted_s = time.perf_counter() - start
            stats = engine.stats
    identical = all(np.array_equal(out, exp) for out, exp in zip(outputs, expected))
    measured = {
        "burst": BURST,
        "clean_s": clean_s,
        "faulted_s": faulted_s,
        "recovery_overhead_s": faulted_s - clean_s,
        "crashes_injected": inj.fired["engine.forward"],
        "worker_crashes": stats["worker_crashes"],
        "worker_restarts": stats["worker_restarts"],
        "retried_requests": stats["retried_requests"],
        "failed_requests": stats["failed_requests"],
        "bit_identical": identical,
        "hung_futures": sum(0 if f.done() else 1 for f in futures),
    }
    rows = [
        {"scenario": "clean burst", "wall_s": f"{clean_s:.4f}", "failed": 0},
        {
            "scenario": "crash mid-burst + retry",
            "wall_s": f"{faulted_s:.4f}",
            "failed": stats["failed_requests"],
        },
    ]
    return rows, measured


def measure_fail_fast():
    with injected({"engine.forward": FaultSpec(kind="crash", max_fires=1)}):
        with _engine(Affine()) as engine:
            start = time.perf_counter()
            future = engine.submit(_samples(1)[0])
            exc = future.exception(timeout=ACCEPTANCE_RESOLVE_S)
            latency_s = time.perf_counter() - start
    return {
        "fail_fast_s": latency_s,
        "typed": isinstance(exc, WorkerCrashed),
    }


def measure_overload():
    gate = Gate()
    with _engine(gate, max_batch_size=1, max_wait_ms=1, max_queue_depth=4) as engine:
        inflight = engine.submit(_samples(1)[0])
        assert gate.entered.wait(timeout=30)
        queued = [engine.submit(s) for s in _samples(4, seed=2)]
        start = time.perf_counter()
        rejected = False
        try:
            engine.submit(_samples(1, seed=3)[0])
        except QueueFull:
            rejected = True
        reject_s = time.perf_counter() - start
        gate.release.set()
        for future in [inflight, *queued]:
            future.result(timeout=30)
        stats = engine.stats
    return {
        "queue_depth_cap": 4,
        "rejected": rejected,
        "reject_latency_s": reject_s,
        "rejected_requests": stats["rejected_requests"],
        "served_after_overload": stats["requests"] - stats["failed_requests"],
    }


def measure_scrub():
    rng = np.random.default_rng(0)
    arrays = {
        f"layer{i}.codes": rng.integers(0, 255, (1024, 1024)).astype(np.uint8) for i in range(8)
    }
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "scrub.rpq")
        total = write_container(path, arrays, {"kind": "bench"})
        start = time.perf_counter()
        report = verify_container(path)
        scrub_s = time.perf_counter() - start
        # flip one payload byte (last byte of the file is inside the last span)
        with open(path, "r+b") as fh:
            fh.seek(-1, 2)
            byte = fh.read(1)[0]
            fh.seek(-1, 2)
            fh.write(struct.pack("B", byte ^ 0xFF))
        try:
            verify_container(path)
            detected = False
        except ChecksumError:
            detected = True
    return {
        "file_mb": total / 1e6,
        "scrub_s": scrub_s,
        "scrub_mbps": (total / 1e6) / scrub_s,
        "spans_verified": report["verified"],
        "flipped_byte_detected": detected,
    }


def main():
    rows, recovery = measure_crash_recovery()
    print()
    print(format_table(rows, title=f"Crash recovery ({BURST}-request burst, 1 injected crash)"))
    fail_fast = measure_fail_fast()
    overload = measure_overload()
    scrub = measure_scrub()
    print()
    print(
        format_table(
            [
                {
                    "fail_fast_s": f"{fail_fast['fail_fast_s']:.4f}",
                    "reject_s": f"{overload['reject_latency_s']:.6f}",
                    "scrub_mbps": f"{scrub['scrub_mbps']:.0f}",
                }
            ],
            title="Fail-fast / overload / scrub",
        )
    )
    record(
        "fault_tolerance",
        {"recovery": recovery, "fail_fast": fail_fast, "overload": overload, "scrub": scrub},
    )
    return recovery, fail_fast, overload, scrub


def test_crash_recovery_gates():
    _, stats = measure_crash_recovery()
    record("fault_tolerance_recovery", stats)
    assert stats["hung_futures"] == 0, "a future was left unresolved after the crash"
    assert stats["failed_requests"] == 0, "retry should absorb the single injected crash"
    assert stats["bit_identical"], "recovered outputs diverge from the uncrashed run"
    assert stats["worker_restarts"] >= 1, "the crashed worker was never replaced"
    assert stats["recovery_overhead_s"] <= ACCEPTANCE_RECOVERY_OVERHEAD_S, (
        f"one crash added {stats['recovery_overhead_s']:.3f}s to the burst "
        f"(gate: <= {ACCEPTANCE_RECOVERY_OVERHEAD_S}s)"
    )


def test_fail_fast_gate():
    stats = measure_fail_fast()
    record("fault_tolerance_fail_fast", stats)
    assert stats["typed"], "crash without retry budget must fail with WorkerCrashed"
    assert stats["fail_fast_s"] <= ACCEPTANCE_FAIL_FAST_S, (
        f"typed failure took {stats['fail_fast_s']:.3f}s to reach the caller "
        f"(gate: <= {ACCEPTANCE_FAIL_FAST_S}s)"
    )


def test_overload_gates():
    stats = measure_overload()
    record("fault_tolerance_overload", stats)
    assert stats["rejected"], "submit above the queue-depth cap must raise QueueFull"
    assert stats["reject_latency_s"] <= ACCEPTANCE_REJECT_S, (
        f"QueueFull took {stats['reject_latency_s']:.4f}s (gate: <= {ACCEPTANCE_REJECT_S}s)"
    )
    assert stats["rejected_requests"] == 1


def test_scrub_gates():
    stats = measure_scrub()
    record("fault_tolerance_scrub", stats)
    assert stats["flipped_byte_detected"], "a flipped payload byte escaped the scrubber"
    assert stats["scrub_mbps"] >= ACCEPTANCE_SCRUB_MBPS, (
        f"verify_container streamed at {stats['scrub_mbps']:.0f} MB/s "
        f"(gate: >= {ACCEPTANCE_SCRUB_MBPS})"
    )


if __name__ == "__main__":
    main()
