"""Continuous batching + multi-worker serving + cross-layer pipelined prefetch.

The three serving hot-path optimisations of PR 5, each gated against the
architecture it replaces:

1. **Continuous batching** — under staggered mixed-key arrivals, the
   per-bucket continuous scheduler must beat PR 4's drain-then-batch loop
   (reimplemented below as :class:`DrainThenBatchEngine`) by >= 1.5x
   requests/sec.  The win is architectural: a drain window fragments into
   one underfilled forward per compatibility key and blocks admission while
   its groups run; per-key buckets keep every forward full and admit new
   arrivals into the next forward of the in-flight stream.
2. **Multi-worker over one shared mmap checkpoint** — ``workers=4`` replicas
   loaded with ``share_views=True`` must beat ``workers=1``, with the mapped
   checkpoint bytes counted exactly once across the whole fleet.
3. **Cross-layer pipelined prefetch** — ``prefetch="pipeline"`` on a
   >= 4-layer streaming model must beat per-layer double-buffered prefetch:
   layer k+1's first blocks decode while layer k finishes, and the shared
   pool decodes blocks in parallel.

Plus the correctness anchor: engine outputs (multi-worker, deterministic
groups) and pipelined streaming forwards are **bit-identical** to cached
mode.

PR 10 adds the **process-worker scaling** measurement: on a deep/narrow
cached model whose forward is dominated by Python-level dispatch (small
per-layer matmuls hold the GIL), ``worker_mode="process"`` must beat both
``workers=1`` and the GIL-bound ``workers=4`` thread tier, and must land
within a sane fraction of the measured per-core roofline
(``single-worker rate x min(workers, cores)``).

First-principles throughput ceilings (à la MLSYSIM): optimisations 2 and 3
monetise thread parallelism of GIL-releasing numpy kernels, so their ceiling
is ``min(workers, cores)``.  On a host with fewer cores than the gate
assumes, the default gate degrades to a no-regression bound instead of
pretending the hardware can exceed its roofline; CI (multi-core) enforces
the full targets.  Override with the ``REPRO_BENCH_*_MIN_SPEEDUP`` env vars.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_continuous_batching.py

or through pytest::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_continuous_batching.py
"""

from __future__ import annotations

import os
import queue
import tempfile
import threading
import time
from concurrent.futures import Future, wait

import numpy as np

import repro.nn as nn
from bench_report import record
from repro.autograd.tensor import Tensor, no_grad
from repro.evaluation.reporting import format_table
from repro.quantization import (
    Approach,
    quantize_model,
    resident_report,
    set_serving_mode,
    standard_recipe,
)
from repro.serialization import clear_mapping_cache, save_quantized
from repro.serving import ServingEngine
from repro.serving.scheduler import compat_key

_CORES = os.cpu_count() or 1


def _gate(env: str, full: float, cores_needed: int, floor: float) -> float:
    """Full acceptance target when the host has the cores for it, else ``floor``."""
    default = full if _CORES >= cores_needed else floor
    return float(os.environ.get(env, default))


#: continuous batching is an algorithmic win (fewer, fuller forwards) — the
#: full gate applies on any core count
ACCEPTANCE_CONTINUOUS = float(os.environ.get("REPRO_BENCH_CB_MIN_SPEEDUP", 1.5))
#: 4 workers need >= 4 cores to reach 2x; below that, bound regression only
ACCEPTANCE_WORKERS = _gate("REPRO_BENCH_WORKERS_MIN_SPEEDUP", 2.0, 4, 0.80)
#: pipelined decode needs >= 2 cores for parallel block decode
ACCEPTANCE_PIPELINE = _gate("REPRO_BENCH_PIPELINE_MIN_SPEEDUP", 1.2, 2, 0.80)
#: process workers escape the GIL, so 4 of them need >= 4 cores for 2x over a
#: single worker; on fewer cores the gate only bounds the IPC overhead
ACCEPTANCE_PROC = _gate("REPRO_BENCH_PROC_MIN_SPEEDUP", 2.0, 4, 0.55)
#: on a GIL-bound forward, 4 processes must beat 4 threads outright (>= 4
#: cores); a 1-core host runs both tiers serially, so only bound the gap
ACCEPTANCE_PROC_VS_THREAD = _gate("REPRO_BENCH_PROC_VS_THREAD_MIN", 1.1, 4, 0.55)
#: fraction of the measured per-core roofline (single rate x min(workers,
#: cores)) the process fleet must reach — the MLSYSIM-style absolute floor
ACCEPTANCE_PROC_ROOFLINE = _gate("REPRO_BENCH_PROC_ROOFLINE_FRACTION", 0.45, 4, 0.15)

#: staggered-arrival scenario; the gap keeps arrivals faster than the drain
#: baseline's service rate, so the makespan measures scheduling, not arrival
STAGGER_FEATURES = 512
STAGGER_LAYERS = 4
STAGGER_REQUESTS = 96
STAGGER_GAP_S = 0.00025
STAGGER_MAX_BATCH = 8
STAGGER_WAIT_MS = 8.0

#: multi-worker scenario
WORKER_FEATURES = 512
WORKER_LAYERS = 4
WORKER_COUNT = 4
WORKER_REQUESTS = 128

#: process-scaling scenario: deep/narrow *cached* MLP — per-layer matmuls too
#: small to release the GIL for long, so thread workers serialise and the
#: forward is CPU-bound in Python dispatch: the regime process workers target
PROC_FEATURES = 64
PROC_LAYERS = 16
PROC_WORKERS = 4
PROC_REQUESTS = 96

#: pipeline scenario (>= 4 streaming layers, per the acceptance criteria)
PIPELINE_FEATURES = 512
PIPELINE_LAYERS = 6
PIPELINE_ROWS = 2
ROUNDS = 5

#: >= 32 rows so the full-width and per-block matmuls hit the same BLAS
#: kernel and bit-identity with cached mode is exact (see PR 4's bench)
IDENTITY_BATCH = 32


def _build_mlp(layers: int, features: int, seed: int) -> nn.Sequential:
    rng = np.random.default_rng(seed)
    stack = []
    for _ in range(layers):
        stack.extend([nn.Linear(features, features, rng=rng), nn.ReLU()])
    return nn.Sequential(*stack[:-1])


def _streaming_model(layers: int, features: int, seed: int = 7):
    result = quantize_model(
        _build_mlp(layers, features, seed),
        standard_recipe("E4M3", approach=Approach.DYNAMIC),
        deploy=True,
        serving_mode="streaming",
    )
    return result.model


class DrainThenBatchEngine:
    """PR 4's serving loop, preserved as the baseline: collect, then serve.

    One driver thread blocks for a first request, waits up to ``max_wait_ms``
    to collect co-riders (any compatibility), splits the collected window by
    key, and runs the groups **sequentially before collecting again** — the
    drain barrier continuous batching removes.
    """

    _SHUTDOWN = object()

    def __init__(self, model, max_batch_size: int = 8, max_wait_ms: float = 2.0) -> None:
        self.model = model
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self._queue: queue.Queue = queue.Queue()
        self.batches = 0
        self._driver = threading.Thread(target=self._drive, daemon=True)
        self._driver.start()

    def submit(self, sample) -> Future:
        future: Future = Future()
        self._queue.put((np.asarray(sample), future))
        return future

    def close(self) -> None:
        self._queue.put(self._SHUTDOWN)
        self._driver.join(timeout=30)

    def _drive(self) -> None:
        while True:
            first = self._queue.get()
            if first is self._SHUTDOWN:
                return
            window = [first]
            deadline = time.monotonic() + self.max_wait_s
            while len(window) < self.max_batch_size:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is self._SHUTDOWN:
                    self._queue.put(self._SHUTDOWN)
                    break
                window.append(item)
            groups: dict = {}
            for sample, future in window:
                groups.setdefault(compat_key(sample), []).append((sample, future))
            for members in groups.values():
                stacked = np.stack([sample for sample, _ in members])
                with no_grad():
                    output = self.model(Tensor(stacked)).data
                self.batches += 1
                for index, (_, future) in enumerate(members):
                    future.set_result(output[index])


def _staggered_run(submit, samples, gap_s: float) -> float:
    """Submit ``samples`` on a fixed arrival schedule; return the makespan."""
    futures = []
    t0 = time.perf_counter()
    for index, sample in enumerate(samples):
        target = t0 + index * gap_s
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        futures.append(submit(sample))
    wait(futures, timeout=120)
    makespan = time.perf_counter() - t0
    for future in futures:
        future.result(timeout=0)  # surface any forward error
    return makespan


def _mixed_key_samples(count: int, features: int):
    """Alternating compatibility keys: feature vectors and 3-step sequences."""
    rng = np.random.default_rng(5)
    samples = []
    for index in range(count):
        shape = (features,) if index % 2 == 0 else (3, features)
        samples.append(rng.normal(0.0, 1.0, shape).astype(np.float32))
    return samples


def measure_continuous_vs_drain():
    """Staggered mixed-key arrivals: continuous scheduler vs drain-then-batch."""
    model = _streaming_model(STAGGER_LAYERS, STAGGER_FEATURES)
    samples = _mixed_key_samples(STAGGER_REQUESTS, STAGGER_FEATURES)

    # warmup both paths (first-touch decode, BLAS init)
    with no_grad():
        model(Tensor(samples[0][None]))
        model(Tensor(samples[1][None]))

    drain = DrainThenBatchEngine(
        model, max_batch_size=STAGGER_MAX_BATCH, max_wait_ms=STAGGER_WAIT_MS
    )
    drain_s = _staggered_run(drain.submit, samples, STAGGER_GAP_S)
    drain_batches = drain.batches
    drain.close()

    engine = ServingEngine(model, max_batch_size=STAGGER_MAX_BATCH, max_wait_ms=STAGGER_WAIT_MS)
    continuous_s = _staggered_run(engine.submit, samples, STAGGER_GAP_S)
    engine_stats = engine.stats
    engine.close()

    stats = {
        "requests": STAGGER_REQUESTS,
        "drain_s": drain_s,
        "continuous_s": continuous_s,
        "drain_req_per_s": STAGGER_REQUESTS / drain_s,
        "continuous_req_per_s": STAGGER_REQUESTS / continuous_s,
        "speedup": drain_s / continuous_s,
        "drain_batches": drain_batches,
        "continuous_batches": engine_stats["batches"],
        "continuous_occupancy": engine_stats["occupancy_mean"],
        "queue_wait_p95_ms": engine_stats["queue_wait_p95_ms"],
    }
    rows = [
        {
            "Scheduler": "drain-then-batch (PR 4)",
            "Requests/s": f"{stats['drain_req_per_s']:,.1f}",
            "Forwards": drain_batches,
        },
        {
            "Scheduler": "continuous",
            "Requests/s": f"{stats['continuous_req_per_s']:,.1f}",
            "Forwards": engine_stats["batches"],
        },
    ]
    return rows, stats


def _worker_checkpoint(tmp: str) -> str:
    result = quantize_model(
        _build_mlp(WORKER_LAYERS, WORKER_FEATURES, seed=11),
        standard_recipe("E4M3", approach=Approach.DYNAMIC),
        deploy=True,
        serving_mode="streaming",
    )
    path = os.path.join(tmp, "workers.rpq")
    save_quantized(result.model, path, recipe=result.recipe)
    return path


def _burst_throughput(engine: ServingEngine, samples) -> float:
    t0 = time.perf_counter()
    engine.serve_batch(samples, timeout=120)
    return time.perf_counter() - t0


def measure_multi_worker():
    """workers=4 replicas over one shared mmap checkpoint vs workers=1."""
    rng = np.random.default_rng(13)
    samples = [
        rng.normal(0.0, 1.0, (WORKER_FEATURES,)).astype(np.float32)
        for _ in range(WORKER_REQUESTS)
    ]

    def factory():
        return _build_mlp(WORKER_LAYERS, WORKER_FEATURES, seed=11)

    with tempfile.TemporaryDirectory(prefix="repro-bench-cb-") as tmp:
        path = _worker_checkpoint(tmp)
        clear_mapping_cache()
        timings = {}
        mapped = {}
        try:
            for workers in (1, WORKER_COUNT):
                engine = ServingEngine.from_checkpoint(
                    path,
                    factory,
                    workers=workers,
                    prefetch=False,
                    max_batch_size=8,
                    max_wait_ms=4.0,
                )
                report = resident_report(engine.replicas)
                mapped[workers] = report["mapped_bytes"]
                engine.serve_batch(samples[:16], timeout=60)  # warmup
                timings[workers] = min(_burst_throughput(engine, samples) for _ in range(3))
                engine.close()
        finally:
            clear_mapping_cache()

    stats = {
        "requests": WORKER_REQUESTS,
        "cores": _CORES,
        "workers": WORKER_COUNT,
        "single_s": timings[1],
        "multi_s": timings[WORKER_COUNT],
        "single_req_per_s": WORKER_REQUESTS / timings[1],
        "multi_req_per_s": WORKER_REQUESTS / timings[WORKER_COUNT],
        "speedup": timings[1] / timings[WORKER_COUNT],
        "mapped_bytes_single": int(mapped[1]),
        "mapped_bytes_fleet": int(mapped[WORKER_COUNT]),
        "mapped_once": bool(mapped[WORKER_COUNT] == mapped[1] > 0),
    }
    rows = [
        {
            "Engine": "workers=1",
            "Requests/s": f"{stats['single_req_per_s']:,.1f}",
            "Mapped ckpt": f"{mapped[1] / 1e6:.1f} MB",
        },
        {
            "Engine": f"workers={WORKER_COUNT} (shared mmap)",
            "Requests/s": f"{stats['multi_req_per_s']:,.1f}",
            "Mapped ckpt": f"{mapped[WORKER_COUNT] / 1e6:.1f} MB",
        },
    ]
    return rows, stats


def _process_factory():
    """Module-level on purpose: ``worker_mode="process"`` pickles the factory
    by reference into every spawned worker."""
    return _build_mlp(PROC_LAYERS, PROC_FEATURES, seed=31)


def _process_checkpoint(tmp: str) -> str:
    result = quantize_model(
        _process_factory(),
        standard_recipe("E4M3", approach=Approach.DYNAMIC),
        deploy=True,
    )
    path = os.path.join(tmp, "process.rpq")
    save_quantized(result.model, path, recipe=result.recipe)
    return path


def _wait_process_ready(engine: ServingEngine, timeout: float = 120.0) -> None:
    """Block until every worker process reports ready (spawn + import is slow)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        details = engine.stats.get("process_workers") or []
        if details and all(detail["ready"] for detail in details):
            return
        time.sleep(0.05)
    raise RuntimeError(f"process workers never became ready: {engine.stats}")


def measure_process_scaling():
    """workers=4 processes vs 4 threads vs 1 worker on a GIL-bound cached model."""
    rng = np.random.default_rng(37)
    samples = [
        rng.normal(0.0, 1.0, (PROC_FEATURES,)).astype(np.float32) for _ in range(PROC_REQUESTS)
    ]
    tiers = (
        ("thread_1", 1, "thread"),
        ("thread_4", PROC_WORKERS, "thread"),
        ("process_4", PROC_WORKERS, "process"),
    )
    timings = {}
    crashes = 0
    with tempfile.TemporaryDirectory(prefix="repro-bench-proc-") as tmp:
        path = _process_checkpoint(tmp)
        clear_mapping_cache()
        try:
            for label, workers, mode in tiers:
                engine = ServingEngine.from_checkpoint(
                    path,
                    _process_factory,
                    serving_mode="cached",
                    prefetch=False,
                    workers=workers,
                    worker_mode=mode,
                    max_batch_size=8,
                    max_wait_ms=4.0,
                )
                if mode == "process":
                    _wait_process_ready(engine)
                engine.serve_batch(samples[:16], timeout=120)  # warmup
                timings[label] = min(_burst_throughput(engine, samples) for _ in range(3))
                if mode == "process":
                    crashes = engine.stats["worker_crashes"]
                engine.close()

            # bit-identity anchor under process workers: deterministic full
            # groups (same key, long admission window) vs the parent template
            probe = samples[:8]
            with ServingEngine.from_checkpoint(
                path,
                _process_factory,
                serving_mode="cached",
                prefetch=False,
                workers=2,
                worker_mode="process",
                max_batch_size=8,
                max_wait_ms=2000.0,
            ) as engine:
                _wait_process_ready(engine)
                outputs = engine.serve_batch(probe, timeout=120)
                with no_grad():
                    reference = engine.model(Tensor(np.stack(probe))).data
            matches = bool(np.array_equal(np.stack(outputs), reference))
        finally:
            clear_mapping_cache()

    single_rate = PROC_REQUESTS / timings["thread_1"]
    process_rate = PROC_REQUESTS / timings["process_4"]
    roofline_rate = single_rate * min(PROC_WORKERS, _CORES)
    stats = {
        "requests": PROC_REQUESTS,
        "cores": _CORES,
        "workers": PROC_WORKERS,
        "layers": PROC_LAYERS,
        "features": PROC_FEATURES,
        "thread_1_s": timings["thread_1"],
        "thread_4_s": timings["thread_4"],
        "process_4_s": timings["process_4"],
        "thread_1_req_per_s": single_rate,
        "thread_4_req_per_s": PROC_REQUESTS / timings["thread_4"],
        "process_4_req_per_s": process_rate,
        "proc_speedup_vs_single": timings["thread_1"] / timings["process_4"],
        "proc_vs_thread_speedup": timings["thread_4"] / timings["process_4"],
        "roofline_req_per_s": roofline_rate,
        "roofline_fraction": process_rate / roofline_rate,
        "process_matches_cached": matches,
        "worker_crashes": int(crashes),
    }
    rows = [
        {"Engine": "workers=1 (thread)", "Requests/s": f"{single_rate:,.1f}"},
        {
            "Engine": f"workers={PROC_WORKERS} (thread)",
            "Requests/s": f"{stats['thread_4_req_per_s']:,.1f}",
        },
        {
            "Engine": f"workers={PROC_WORKERS} (process)",
            "Requests/s": f"{process_rate:,.1f}",
            "Roofline": f"{stats['roofline_fraction'] * 100:.0f}% of {roofline_rate:,.1f}",
        },
    ]
    return rows, stats


def measure_pipeline_prefetch():
    """Cross-layer pipelined decode vs per-layer double-buffered prefetch."""
    model = _streaming_model(PIPELINE_LAYERS, PIPELINE_FEATURES, seed=19)
    rng = np.random.default_rng(17)
    probe = Tensor(rng.normal(0.0, 1.0, (PIPELINE_ROWS, PIPELINE_FEATURES)).astype(np.float32))

    def _best_forward() -> float:
        best = np.inf
        with no_grad():
            model(probe)  # warmup (spawns pool / threads)
            for _ in range(ROUNDS):
                t0 = time.perf_counter()
                model(probe)
                best = min(best, time.perf_counter() - t0)
        return best

    set_serving_mode(model, "streaming", prefetch=True)
    per_layer_s = _best_forward()
    set_serving_mode(model, "streaming", prefetch="pipeline")
    pipeline_s = _best_forward()

    # bit-identity anchor: cached vs pipelined streaming on a >= 32-row batch
    identity_probe = Tensor(
        rng.normal(0.0, 1.0, (IDENTITY_BATCH, PIPELINE_FEATURES)).astype(np.float32)
    )
    with no_grad():
        pipelined_out = model(identity_probe).data
    set_serving_mode(model, "cached")
    with no_grad():
        cached_out = model(identity_probe).data

    stats = {
        "layers": PIPELINE_LAYERS,
        "cores": _CORES,
        "per_layer_s": per_layer_s,
        "pipeline_s": pipeline_s,
        "speedup": per_layer_s / pipeline_s,
        "pipeline_matches_cached": bool(np.array_equal(pipelined_out, cached_out)),
    }
    rows = [
        {"Prefetch": "per-layer (PR 4)", "Forward": f"{per_layer_s * 1e3:.1f} ms"},
        {
            "Prefetch": "cross-layer pipeline",
            "Forward": f"{pipeline_s * 1e3:.1f} ms",
            "== cached": stats["pipeline_matches_cached"],
        },
    ]
    return rows, stats


def measure_engine_identity():
    """Multi-worker engine outputs must be bit-identical to cached-mode forwards.

    Groups are made deterministic (same-key requests, max_batch 8, a long
    admission window), so every forward sees the same stacked batch that the
    cached-mode reference forward sees — dynamic activation scales included.
    """
    streaming = _streaming_model(STAGGER_LAYERS, STAGGER_FEATURES, seed=23)
    cached = quantize_model(
        _build_mlp(STAGGER_LAYERS, STAGGER_FEATURES, seed=23),
        standard_recipe("E4M3", approach=Approach.DYNAMIC),
        deploy=True,
    ).model
    rng = np.random.default_rng(29)
    samples = [
        rng.normal(0.0, 1.0, (STAGGER_FEATURES,)).astype(np.float32)
        for _ in range(2 * IDENTITY_BATCH)
    ]
    set_serving_mode(streaming, "streaming", prefetch="pipeline")
    with ServingEngine(
        streaming, max_batch_size=IDENTITY_BATCH, max_wait_ms=2000.0, workers=2
    ) as engine:
        outputs = engine.serve_batch(samples, timeout=60)
    matches = True
    for start in range(0, len(samples), IDENTITY_BATCH):
        with no_grad():
            reference = cached(Tensor(np.stack(samples[start : start + IDENTITY_BATCH]))).data
        matches = matches and np.array_equal(
            np.stack(outputs[start : start + IDENTITY_BATCH]), reference
        )
    return {"engine_matches_cached": bool(matches)}


def main():
    cont_rows, cont_stats = measure_continuous_vs_drain()
    print()
    print(format_table(cont_rows, title="Continuous batching vs drain-then-batch"))
    worker_rows, worker_stats = measure_multi_worker()
    print()
    print(format_table(worker_rows, title=f"Multi-worker over one shared mmap ({_CORES} cores)"))
    proc_rows, proc_stats = measure_process_scaling()
    print()
    print(format_table(proc_rows, title=f"Process-worker scaling ({_CORES} cores)"))
    pipe_rows, pipe_stats = measure_pipeline_prefetch()
    print()
    print(format_table(pipe_rows, title="Cross-layer pipelined prefetch"))
    identity_stats = measure_engine_identity()
    print()
    print(f"engine outputs bit-identical to cached mode: {identity_stats['engine_matches_cached']}")
    record(
        "continuous_batching",
        {
            "continuous": cont_stats,
            "multi_worker": worker_stats,
            "process_serving": proc_stats,
            "pipeline": pipe_stats,
            "identity": identity_stats,
        },
    )
    return cont_stats, worker_stats, proc_stats, pipe_stats, identity_stats


def test_continuous_batching_gate():
    _, stats = measure_continuous_vs_drain()
    record("continuous_batching_staggered", stats)
    assert stats["continuous_batches"] <= stats["drain_batches"], (
        "continuous batching ran more forwards than the drain baseline "
        f"({stats['continuous_batches']} vs {stats['drain_batches']})"
    )
    assert stats["speedup"] >= ACCEPTANCE_CONTINUOUS, (
        f"continuous batching only {stats['speedup']:.2f}x over drain-then-batch "
        f"(gate: >= {ACCEPTANCE_CONTINUOUS}x)"
    )


def test_multi_worker_gate():
    _, stats = measure_multi_worker()
    record("continuous_batching_workers", stats)
    assert stats["mapped_once"], (
        f"fleet maps {stats['mapped_bytes_fleet']} bytes vs "
        f"{stats['mapped_bytes_single']} for one replica; the shared checkpoint "
        "must be mapped exactly once"
    )
    assert stats["speedup"] >= ACCEPTANCE_WORKERS, (
        f"workers={WORKER_COUNT} only {stats['speedup']:.2f}x over workers=1 on "
        f"{_CORES} cores (gate: >= {ACCEPTANCE_WORKERS}x)"
    )


def test_process_scaling_gate():
    _, stats = measure_process_scaling()
    record("process_serving", stats)
    assert stats["process_matches_cached"], (
        "process-worker engine outputs diverge from the parent cached-mode forward"
    )
    assert stats["worker_crashes"] == 0, (
        f"{stats['worker_crashes']} worker crashes during a fault-free scaling run"
    )
    assert stats["proc_speedup_vs_single"] >= ACCEPTANCE_PROC, (
        f"workers={PROC_WORKERS} processes only {stats['proc_speedup_vs_single']:.2f}x "
        f"over workers=1 on {_CORES} cores (gate: >= {ACCEPTANCE_PROC}x)"
    )
    assert stats["proc_vs_thread_speedup"] >= ACCEPTANCE_PROC_VS_THREAD, (
        f"processes only {stats['proc_vs_thread_speedup']:.2f}x over the thread tier "
        f"on {_CORES} cores (gate: >= {ACCEPTANCE_PROC_VS_THREAD}x)"
    )
    assert stats["roofline_fraction"] >= ACCEPTANCE_PROC_ROOFLINE, (
        f"process fleet reaches only {stats['roofline_fraction'] * 100:.0f}% of the "
        f"measured per-core roofline ({stats['roofline_req_per_s']:,.1f} req/s; "
        f"gate: >= {ACCEPTANCE_PROC_ROOFLINE * 100:.0f}%)"
    )


def test_pipeline_prefetch_gate():
    _, stats = measure_pipeline_prefetch()
    record("continuous_batching_pipeline", stats)
    assert stats["pipeline_matches_cached"], "pipelined streaming diverges from cached mode"
    assert stats["speedup"] >= ACCEPTANCE_PIPELINE, (
        f"pipelined prefetch only {stats['speedup']:.2f}x over per-layer prefetch "
        f"on {_CORES} cores (gate: >= {ACCEPTANCE_PIPELINE}x)"
    )


def test_engine_bit_identity():
    stats = measure_engine_identity()
    record("continuous_batching_identity", stats)
    assert stats["engine_matches_cached"], (
        "multi-worker engine outputs diverge from cached-mode forwards"
    )


if __name__ == "__main__":
    main()
