"""Figure 3 — tensor distribution classes: range-bound NLP activations vs precision-bound CV tensors."""

import numpy as np

from repro.autograd.tensor import no_grad
from repro.evaluation.reporting import format_table
from repro.nn.layers import Linear
from repro.nn.norm import LayerNorm
from repro.quantization.mixed import classify_tensor, kurtosis


def capture_activations(bundle, module_types, limit=3):
    captured = {}
    handles = []
    for name, module in bundle.model.named_modules():
        if isinstance(module, module_types) and len(handles) < limit:
            handles.append(
                module.register_forward_hook(
                    lambda m, i, o, key=name: captured.setdefault(key, o.data.copy())
                )
            )
    with no_grad():
        bundle.model(bundle.prepare_inputs(bundle.eval_data.inputs[:64]))
    for handle in handles:
        handle.remove()
    return captured


def distribution_rows(bundle, domain, module_types):
    rows = []
    acts = capture_activations(bundle, module_types)
    for name, act in acts.items():
        rows.append(
            {
                "domain": domain,
                "tensor": f"activation {name}",
                "absmax": float(np.abs(act).max()),
                "p99": float(np.percentile(np.abs(act), 99)),
                "kurtosis": kurtosis(act),
                "class": classify_tensor(act),
            }
        )
    # a representative weight tensor
    for name, module in bundle.model.named_modules():
        if isinstance(module, Linear):
            w = module.weight.data
            rows.append(
                {
                    "domain": domain,
                    "tensor": f"weight {name}",
                    "absmax": float(np.abs(w).max()),
                    "p99": float(np.percentile(np.abs(w), 99)),
                    "kurtosis": kurtosis(w),
                    "class": classify_tensor(w),
                }
            )
            break
    return rows


def test_figure3_tensor_distributions(benchmark, bert_bundle, cnn_bundle):
    def run():
        rows = distribution_rows(bert_bundle, "nlp", LayerNorm)
        rows += distribution_rows(cnn_bundle, "cv", Linear)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 3: tensor distribution classes"))
    nlp_act = [r for r in rows if r["domain"] == "nlp" and r["tensor"].startswith("activation")]
    weights = [r for r in rows if r["tensor"].startswith("weight")]
    # NLP activations (with injected outliers) are range-bound; weights are precision-bound
    assert any(r["class"] == "range-bound" for r in nlp_act)
    assert all(r["class"] == "precision-bound" for r in weights)
