"""Figure 7 — BatchNorm calibration: calibration sample size × data augmentation transform."""

from repro.evaluation.reporting import format_table
from repro.quantization import extended_recipe, quantize_model, relative_accuracy_loss

SWEEP = [
    (300, "training"),
    (1000, "training"),
    (3000, "training"),
    (1000, "inference"),
    (3000, "inference"),
]


def figure7_rows(bundle):
    rows = []
    for num_samples, transform in SWEEP:
        recipe = extended_recipe(
            "E3M4",
            batchnorm_calibration=True,
            name=f"bncal-{num_samples}-{transform}",
        )
        recipe.bn_calibration_samples = num_samples
        recipe.bn_calibration_transform = transform
        result = quantize_model(
            bundle.model,
            recipe,
            calibration_data=bundle.train_data,
            prepare_inputs=bundle.prepare_inputs,
            is_convolutional=True,
        )
        metric = bundle.evaluate(result.model)
        rows.append(
            {
                "samples": num_samples,
                "transform": transform,
                "accuracy": metric,
                "loss %": relative_accuracy_loss(bundle.fp32_metric, metric) * 100,
            }
        )
    return rows


def test_figure7_batchnorm_calibration(benchmark, densenet_bundle):
    rows = benchmark.pedantic(lambda: figure7_rows(densenet_bundle), rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows,
            title=f"Figure 7: BatchNorm calibration on {densenet_bundle.spec.name} "
            f"(fp32={densenet_bundle.fp32_metric:.4f})",
        )
    )
    # the training transform at 3k samples (the paper's recommendation) must be competitive:
    best = min(r["loss %"] for r in rows)
    rec = next(r for r in rows if r["samples"] == 3000 and r["transform"] == "training")
    assert rec["loss %"] <= best + 2.0
