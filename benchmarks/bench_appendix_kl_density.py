"""Appendix A.1 — FP8 value-density analysis and the KL-clipping pathology for FP8."""

import numpy as np

from repro.evaluation.reporting import format_table
from repro.fp8 import E3M4, E4M3, E5M2
from repro.fp8.density import density_at, representable_count_in_range
from repro.fp8.quantize import quantize_dequantize
from repro.quantization.observers import KLObserver, MinMaxObserver
from repro.quantization.qconfig import QuantFormat, TensorQuantConfig


def density_rows():
    rows = []
    for value in (0.1, 0.5, 1.0, 2.0, 4.0):
        rows.append(
            {
                "N": value,
                "D E5M2": float(density_at(E5M2, value)),
                "D E4M3": float(density_at(E4M3, value)),
                "D E3M4": float(density_at(E3M4, value)),
            }
        )
    return rows


def kl_vs_max_rows(seed=0):
    """The Figure 10 demo: KL clipping hurts FP8 because its grid is already dense near zero."""
    rng = np.random.default_rng(seed)
    data = rng.normal(0, 1.0, 50_000)
    outliers = rng.uniform(5.5, 6.0, 500)
    data = np.concatenate([data, outliers])

    rows = []
    for observer_cls, name in ((MinMaxObserver, "max scaling"), (KLObserver, "KL clipping")):
        obs = observer_cls(TensorQuantConfig(fmt=QuantFormat.E4M3, observer="minmax"))
        obs.observe(data)
        absmax = float(obs.calibrated_absmax())
        clipped = np.clip(data, -absmax, absmax)
        scale = E4M3.max_value / absmax
        q = quantize_dequantize(clipped, E4M3, scale=np.asarray(scale))
        rows.append(
            {
                "Calibration": name,
                "clip threshold": absmax,
                "MSE": float(np.mean((q - data) ** 2)),
            }
        )
    return rows


def test_appendix_density_and_kl(benchmark):
    rows = benchmark.pedantic(kl_vs_max_rows, rounds=1, iterations=1)
    print()
    print(format_table(density_rows(), title="Appendix A.1: representable-value density (Eq. 4)"))
    print()
    print(format_table(rows, title="Appendix A.1 / Figure 10: max scaling vs KL clipping for E4M3"))
    # density doubles with every extra mantissa bit
    assert float(density_at(E3M4, 1.0)) == 2 * float(density_at(E4M3, 1.0))
    # near zero, FP8 has far more representable values than it has near the max
    assert representable_count_in_range(E4M3, -1, 1) > representable_count_in_range(E4M3, 300, 448)
    # on this outlier-heavy tensor, aggressive KL clipping must not beat max scaling by much
    by_name = {r["Calibration"]: r["MSE"] for r in rows}
    assert by_name["max scaling"] <= by_name["KL clipping"] * 1.5
