"""Figure 5 — accuracy loss grouped by model size class (tiny/small/medium/large)."""

from repro.evaluation.reporting import format_table

CONFIGS = ["E5M2-direct", "E4M3-static", "E3M4-static", "INT8"]


def figure5_rows(report):
    rows = []
    for config in CONFIGS:
        for size, stats in sorted(report.by_size_class(config).items()):
            rows.append(
                {
                    "config": config,
                    "size class": size,
                    "mean loss %": stats["mean_loss"] * 100,
                    "max loss %": stats["max_loss"] * 100,
                    "models": stats["count"],
                }
            )
    return rows


def test_figure5_accuracy_loss_by_model_size(benchmark, sweep_report):
    rows = benchmark.pedantic(lambda: figure5_rows(sweep_report), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 5: accuracy loss by model size class"))
    assert rows
    # every size class that appears is one of the paper's four bins
    assert {r["size class"] for r in rows} <= {"tiny", "small", "medium", "large"}
