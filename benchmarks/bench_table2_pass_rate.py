"""Table 2 — workload pass rate per data format and quantization approach."""

from repro.evaluation.reporting import format_pass_rate_table


def test_table2_workload_pass_rate(benchmark, sweep_report):
    rows = benchmark.pedantic(sweep_report.summary_rows, rounds=1, iterations=1)
    print()
    print(format_pass_rate_table(sweep_report, title="Table 2: workload pass rate"))

    by_fmt = {row["Data Type"]: row for row in rows}
    # Paper's headline claims (directional): FP8 beats INT8 on overall coverage,
    # and E4M3 has the best NLP coverage.
    assert by_fmt["E4M3"]["Pass Rate (All)"] >= by_fmt["INT8"]["Pass Rate (All)"]
    assert by_fmt["E4M3"]["Pass Rate (NLP)"] >= by_fmt["INT8"]["Pass Rate (NLP)"]
    assert by_fmt["E4M3"]["Pass Rate (NLP)"] >= by_fmt["E5M2"]["Pass Rate (NLP)"]
