"""Table 1 — FP8 binary format properties, plus the raw cost of the FP8 cast kernel."""

import numpy as np

from repro.evaluation.reporting import format_table
from repro.fp8 import E3M4, E4M3, E5M2
from repro.fp8.quantize import fp8_round


def table1_rows():
    rows = []
    for fmt in (E5M2, E4M3, E3M4):
        row = fmt.describe()
        rows.append(
            {
                "Format": row["format"],
                "Exponent bias": row["exponent_bias"],
                "Max value": row["max_value"],
                "Min value": row["min_value"],
                "Subnormals": "yes",
                "NaNs": row["nans"],
                "Infinity": "yes" if row["infinity"] else "no",
            }
        )
    return rows


def test_table1_format_properties(benchmark):
    x = np.random.default_rng(0).normal(0, 1, 1_000_000)
    benchmark.pedantic(lambda: fp8_round(x, E4M3), rounds=3, iterations=1)
    rows = table1_rows()
    print()
    print(format_table(rows, title="Table 1: FP8 binary formats"))
    # sanity: the paper's numbers
    assert rows[0]["Max value"] == 57344.0
    assert rows[1]["Max value"] == 448.0
    assert rows[2]["Max value"] == 30.0
