"""Table 4 / Appendix A.3 — text generation quality of the quantized causal LM."""


from repro.evaluation.reporting import format_table
from repro.evaluation.textgen import evaluate_generation_quality
from repro.quantization import Approach, int8_recipe, quantize_model, standard_recipe
from repro.quantization.mixed import assign_mixed_formats


def table4_rows(bundle, n_prompts=6, prompt_len=8, max_new_tokens=24):
    prompts = bundle.eval_data.inputs[:n_prompts, :prompt_len]
    transition = (
        bundle.eval_data.extras["transition_probs"][0] if bundle.eval_data.extras else None
    )
    configs = [
        ("FP32", None),
        ("E5M2", standard_recipe("E5M2")),
        ("E4M3 Static", standard_recipe("E4M3")),
        ("E4M3 Dynamic", standard_recipe("E4M3", approach=Approach.DYNAMIC)),
        ("E3M4 Static", standard_recipe("E3M4")),
        ("FP8 Mixed", assign_mixed_formats(standard_recipe("E4M3"))),
        ("INT8", int8_recipe(approach=Approach.DYNAMIC)),
    ]
    rows = []
    for name, recipe in configs:
        model = (
            bundle.model
            if recipe is None
            else quantize_model(
                bundle.model,
                recipe,
                calibration_data=bundle.calib_data,
                prepare_inputs=bundle.prepare_inputs,
            ).model
        )
        quality = evaluate_generation_quality(
            model, prompts, transition_probs=transition, max_new_tokens=max_new_tokens, beam_size=4
        )
        rows.append(
            {
                "Configuration": name,
                "repetition rate": quality.repetition,
                "distinct-2": quality.distinct2,
                "grammar log-lik": quality.grammar_loglik,
            }
        )
    return rows


def test_table4_text_generation_quality(benchmark, lm_bundle):
    rows = benchmark.pedantic(lambda: table4_rows(lm_bundle), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Table 4: generation quality of the quantized causal LM"))
    by_name = {r["Configuration"]: r for r in rows}
    # FP8 generations should stay at least as grammatical as INT8's (paper: INT8 degenerates)
    assert by_name["E3M4 Static"]["grammar log-lik"] >= by_name["INT8"]["grammar log-lik"] - 0.35
