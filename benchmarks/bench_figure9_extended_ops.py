"""Figure 9 — accuracy impact of the extended operator coverage.

CV models: the standard scheme (first/last kept in FP32) vs quantizing the
first and last operators too.  NLP models: Conv/Linear only vs adding
BatchMatMul, Embedding and LayerNorm coverage.
"""

import numpy as np

from repro.evaluation import evaluate_recipe_on_task
from repro.evaluation.reporting import format_table
from repro.models.registry import build_task
from repro.quantization import Approach, extended_recipe, int8_recipe, standard_recipe

CV_TASKS = ["resnet18-imagenet", "mobilenet-v2-imagenet"]
NLP_TASKS = ["bert-base-mrpc", "distilbert-mrpc", "bloom-7b1-lambada"]


def cv_configs():
    out = []
    for fmt in ("E5M2", "E4M3", "E3M4"):
        out.append((f"{fmt} (skip first/last)", standard_recipe(fmt)))
        out.append(
            (
                f"{fmt} (- first/last kept quantized)",
                standard_recipe(fmt, skip_first_operator=False, skip_last_operator=False),
            )
        )
    out.append(("INT8 (skip first/last)", int8_recipe()))
    return out


def nlp_configs():
    out = []
    for fmt, approach in (
        ("E5M2", Approach.STATIC),
        ("E4M3", Approach.STATIC),
        ("E4M3", Approach.DYNAMIC),
        ("E3M4", Approach.STATIC),
    ):
        out.append(
            (f"{fmt}-{approach.value} (Conv,Linear)", standard_recipe(fmt, approach=approach))
        )
        out.append(
            (
                f"{fmt}-{approach.value} (+BMM,Emb,LayerNorm)",
                extended_recipe(fmt, approach=approach, batchnorm_calibration=False),
            )
        )
    out.append(("INT8-dynamic (Conv,Linear)", int8_recipe(approach=Approach.DYNAMIC)))
    return out


def figure9_rows(tasks, configs, domain):
    rows = []
    for name, recipe in configs:
        losses = []
        for task in tasks:
            bundle = build_task(task)
            record = evaluate_recipe_on_task(bundle, recipe, config_name=name)
            losses.append(record.relative_loss)
        rows.append(
            {
                "domain": domain,
                "operator coverage": name,
                "mean loss %": float(np.mean(losses)) * 100,
                "max loss %": float(np.max(losses)) * 100,
            }
        )
    return rows


def test_figure9_extended_operator_coverage(benchmark):
    def run():
        return figure9_rows(CV_TASKS, cv_configs(), "CV") + figure9_rows(
            NLP_TASKS, nlp_configs(), "NLP"
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 9: accuracy impact of extended operator coverage"))
    nlp_rows = {r["operator coverage"]: r for r in rows if r["domain"] == "NLP"}
    # expanding operator coverage with E4M3 must not collapse accuracy (stays within a few %)
    assert nlp_rows["E4M3-static (+BMM,Emb,LayerNorm)"]["mean loss %"] < 5.0
