"""Packed 8-bit weight storage vs float32, and fused vs unfused per-channel Q/DQ.

Two measurements for the packed storage subsystem
(:class:`repro.fp8.quantize.QuantizedTensor` + the fused per-axis kernels in
:mod:`repro.fp8.kernels`):

1. **Memory footprint** — bytes of quantized weight storage (codes + scales)
   for FP8- and INT8-converted models, against the same weights in dense
   float32.  Acceptance: packed <= 0.3x of float32.
2. **Fused vs unfused per-channel Q/DQ latency** — one fused
   absmax → scale → round → rescale call against the old pipeline (separate
   absmax pass, materialised broadcast scale array, then Q/DQ), with a
   bit-identity check between the two on the active kernel.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_memory_footprint.py

or through pytest (the ``test_`` entry points assert the acceptance targets)::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_memory_footprint.py
"""

from __future__ import annotations

import time

import numpy as np

import repro.nn as nn
from bench_report import record
from repro.evaluation.reporting import format_table
from repro.fp8 import E4M3, get_format
from repro.fp8.quantize import compute_scale, fp8_round, quantize_dequantize
from repro.quantization import (
    Approach,
    int8_recipe,
    quantize_model,
    standard_recipe,
    storage_report,
)

#: packed weight storage must come in at or under this fraction of float32
ACCEPTANCE_RATIO = 0.3

PER_CHANNEL_SHAPE = (256, 4096)  # 1M elements, 256 channels


def _model(rng_seed: int = 0) -> nn.Sequential:
    rng = np.random.default_rng(rng_seed)
    return nn.Sequential(
        nn.Linear(256, 512, rng=rng),
        nn.ReLU(),
        nn.Linear(512, 512, rng=rng),
        nn.ReLU(),
        nn.Linear(512, 128, rng=rng),
    )


def measure_footprint():
    """Quantize the probe model with FP8 and INT8 recipes; tally packed bytes."""
    rows = []
    ratios = {}
    for recipe in (
        standard_recipe("E4M3", approach=Approach.DYNAMIC),
        standard_recipe("E3M4", approach=Approach.DYNAMIC),
        int8_recipe(approach=Approach.DYNAMIC),
    ):
        model = _model()
        model.eval()
        result = quantize_model(model, recipe, inplace=True)
        per_module = storage_report(result.model)
        assert per_module, "no packed weights found after convert"
        ratio = result.weight_compression_ratio
        ratios[recipe.name] = ratio
        rows.append(
            {
                "Recipe": recipe.name,
                "Quantized ops": result.num_quantized,
                "fp32 KiB": f"{result.weight_bytes_fp32 / 1024:.1f}",
                "Packed KiB": f"{result.weight_bytes_packed / 1024:.1f}",
                "Ratio": f"{ratio:.3f}x",
            }
        )
    record("memory_footprint", {"packed_vs_fp32_ratio": ratios})
    return rows, ratios


def _unfused_qdq(x, fmt, axis):
    """The pre-refactor pipeline: absmax pass, materialised scale array, Q/DQ."""
    scale = compute_scale(x, fmt, axis=axis)
    scale_full = np.ascontiguousarray(np.broadcast_to(scale, x.shape))
    q = fp8_round(np.multiply(x, scale_full, dtype=np.float64), fmt)
    return (q / scale_full).astype(np.float32)


def _time(fn, rounds=5, warmup=1):
    for _ in range(warmup):
        fn()
    best = np.inf
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_fused_qdq(fmt=E4M3):
    """Latency + bit-identity of fused vs unfused per-channel Q/DQ."""
    rng = np.random.default_rng(0)
    x = rng.normal(0.0, 1.0, PER_CHANNEL_SHAPE).astype(np.float32)
    n = x.size

    fused_out = quantize_dequantize(x, fmt, axis=0)
    unfused_out = _unfused_qdq(x, fmt, axis=0)
    bit_identical = np.array_equal(fused_out, unfused_out)

    t_fused = _time(lambda: quantize_dequantize(x, fmt, axis=0))
    t_unfused = _time(lambda: _unfused_qdq(x, fmt, axis=0))
    rows = [
        {
            "Path": f"per-channel Q/DQ {fmt.name} ({n:,} elems)",
            "Unfused Melem/s": f"{n / t_unfused / 1e6:.1f}",
            "Fused Melem/s": f"{n / t_fused / 1e6:.1f}",
            "Speedup": f"{t_unfused / t_fused:.2f}x",
            "Bit-identical": bit_identical,
        }
    ]
    return rows, bit_identical


def main():
    footprint_rows, ratios = measure_footprint()
    print()
    print(format_table(footprint_rows, title="Packed 8-bit weight storage vs float32"))
    qdq_rows = []
    identical = True
    for fmt_name in ("E4M3", "E5M2"):
        rows, ok = measure_fused_qdq(get_format(fmt_name))
        qdq_rows.extend(rows)
        identical &= ok
    print()
    print(format_table(qdq_rows, title="Fused vs unfused per-channel Q/DQ"))
    return ratios, identical


def test_memory_footprint():
    _, ratios = measure_footprint()
    laggards = {k: v for k, v in ratios.items() if v > ACCEPTANCE_RATIO}
    assert not laggards, (
        f"packed weight storage above the {ACCEPTANCE_RATIO}x acceptance ratio: {laggards}"
    )


def test_fused_qdq_bit_identical():
    for fmt_name in ("E4M3", "E5M2", "E3M4"):
        _, identical = measure_fused_qdq(get_format(fmt_name))
        assert identical, f"fused per-channel Q/DQ diverges from unfused on {fmt_name}"


if __name__ == "__main__":
    main()
