"""Figure 6 (and Appendix A.2) — generation quality (FID proxy) of the quantized denoiser."""


from repro.evaluation.fid import fid_proxy
from repro.evaluation.reporting import format_table
from repro.quantization import Approach, int8_recipe, quantize_model, standard_recipe


def generation_configs():
    return [
        ("FP32", None),
        ("FP8-E5M2", standard_recipe("E5M2", skip_first_operator=False, skip_last_operator=False)),
        (
            "FP8-E4M3-static",
            standard_recipe("E4M3", skip_first_operator=False, skip_last_operator=False),
        ),
        (
            "FP8-E4M3-dynamic",
            standard_recipe(
                "E4M3",
                approach=Approach.DYNAMIC,
                skip_first_operator=False,
                skip_last_operator=False,
            ),
        ),
        (
            "FP8-E3M4-static",
            standard_recipe("E3M4", skip_first_operator=False, skip_last_operator=False),
        ),
        ("INT8-static", int8_recipe(skip_first_operator=False, skip_last_operator=False)),
        (
            "INT8-dynamic",
            int8_recipe(
                approach=Approach.DYNAMIC, skip_first_operator=False, skip_last_operator=False
            ),
        ),
    ]


def figure6_rows(bundle, n_samples=96, num_steps=4):
    reference = bundle.eval_data.targets[:n_samples]  # clean images
    rows = []
    for name, recipe in generation_configs():
        if recipe is None:
            model = bundle.model
        else:
            model = quantize_model(
                bundle.model,
                recipe,
                calibration_data=bundle.calib_data,
                prepare_inputs=bundle.prepare_inputs,
                is_convolutional=True,
            ).model
        generated = model.sample(
            n_samples, image_shape=reference.shape[1:], num_steps=num_steps, rng=7
        )
        rows.append({"Configuration": name, "FID (proxy)": fid_proxy(reference, generated)})
    return rows


def test_figure6_generation_fid(benchmark, diffusion_bundle):
    rows = benchmark.pedantic(lambda: figure6_rows(diffusion_bundle), rounds=1, iterations=1)
    print()
    print(
        format_table(rows, title="Figure 6: FID proxy of the quantized denoiser (lower is better)")
    )
    fid = {row["Configuration"]: row["FID (proxy)"] for row in rows}
    # FP32 is the reference sampler; FP8 E4M3/E3M4 should stay closer to it than INT8-dynamic
    best_fp8 = min(fid["FP8-E4M3-static"], fid["FP8-E3M4-static"])
    assert best_fp8 <= fid["INT8-dynamic"] * 1.5 + 1e-6
