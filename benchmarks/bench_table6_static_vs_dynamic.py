"""Table 6 — static vs dynamic quantization accuracy on NLP workloads (E4M3 / E3M4)."""

from repro.evaluation.reporting import format_table


def table6_rows(report):
    rows = []
    for fmt in ("E4M3", "E3M4"):
        static_cfg, dynamic_cfg = f"{fmt}-static", f"{fmt}-dynamic"
        tasks = sorted({r.task for r in report.records if r.domain == "nlp"})
        for task in tasks:
            static = [r for r in report.records if r.task == task and r.config == static_cfg]
            dynamic = [r for r in report.records if r.task == task and r.config == dynamic_cfg]
            if not static or not dynamic:
                continue
            rows.append(
                {
                    "Model": task,
                    "FP8 Format": fmt,
                    "Static": static[0].quantized_metric,
                    "Dynamic": dynamic[0].quantized_metric,
                    "Improvement %": (dynamic[0].quantized_metric - static[0].quantized_metric)
                    / max(static[0].quantized_metric, 1e-12)
                    * 100,
                }
            )
    return rows


def test_table6_static_vs_dynamic(benchmark, sweep_report):
    rows = benchmark.pedantic(lambda: table6_rows(sweep_report), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Table 6: static vs dynamic quantization on NLP models"))
    assert rows
    # dynamic quantization should not be dramatically worse than static on average
    mean_improvement = sum(r["Improvement %"] for r in rows) / len(rows)
    assert mean_improvement > -2.0
