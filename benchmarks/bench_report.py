"""Perf-trajectory artifact: merge benchmark numbers into one BENCH_PR.json.

CI sets ``REPRO_BENCH_JSON`` to a file path before running the bench jobs;
every benchmark calls :func:`record` with its section name and a JSON-safe
payload, and the file accumulates a single diffable snapshot (kernel
throughput, storage ratios, serving-path numbers) that
``actions/upload-artifact`` preserves per PR.  Without the environment
variable set, :func:`record` is a no-op so local runs behave as before — but
in CI (``$CI`` set) a missing ``REPRO_BENCH_JSON`` raises instead of silently
dropping the numbers, so the cross-PR trajectory can never be empty again.

``tools/bench_trajectory.py`` appends each merged snapshot to the committed
history under ``benchmarks/trajectory/``.
"""

from __future__ import annotations

import json
import os
import platform
import sys


def record(section: str, payload: dict) -> None:
    """Merge ``payload`` under ``section`` into ``$REPRO_BENCH_JSON`` (if set)."""
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path:
        if os.environ.get("CI"):
            raise RuntimeError(
                "REPRO_BENCH_JSON is unset in CI: benchmark section %r would be "
                "silently dropped from the perf trajectory. Export "
                "REPRO_BENCH_JSON=$GITHUB_WORKSPACE/BENCH_PR.json in the job step." % section
            )
        return
    data = {}
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            data = {}
    if "env" not in data:
        import numpy as np

        data["env"] = {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "fp8_kernel": os.environ.get("REPRO_FP8_KERNEL", "fast"),
        }
    previous = data.get(section)
    if isinstance(previous, dict) and isinstance(payload, dict):
        data[section] = {**previous, **payload}
    else:
        data[section] = payload
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
