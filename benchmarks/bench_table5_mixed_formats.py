"""Table 5 — model accuracy with single vs mixed FP8 formats on NLP workloads."""

from repro.evaluation import evaluate_recipe_on_task
from repro.evaluation.reporting import format_table
from repro.models.registry import build_task
from repro.quantization import standard_recipe
from repro.quantization.mixed import assign_mixed_formats

TASKS = ["bert-base-mrpc", "bert-large-rte", "funnel-mrpc", "longformer-mrpc"]


def table5_rows():
    rows = []
    for task in TASKS:
        bundle = build_task(task)
        row = {"Model": task, "FP32": bundle.fp32_metric}
        for label, recipe in [
            ("E5M2", standard_recipe("E5M2")),
            ("E4M3", standard_recipe("E4M3")),
            ("E3M4", standard_recipe("E3M4")),
            ("Mixed", assign_mixed_formats(standard_recipe("E4M3"))),
        ]:
            record = evaluate_recipe_on_task(bundle, recipe, config_name=label)
            row[label] = record.quantized_metric
        rows.append(row)
    return rows


def test_table5_single_vs_mixed_formats(benchmark):
    rows = benchmark.pedantic(table5_rows, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Table 5: single vs mixed FP8 formats on NLP models"))
    # mixed formats should be competitive with the best single format on average
    diffs = [row["Mixed"] - max(row["E5M2"], row["E4M3"], row["E3M4"]) for row in rows]
    assert sum(diffs) / len(diffs) > -0.02
