"""Shared fixtures for the benchmark suite.

The expensive part of most benchmarks is the quantize-and-evaluate sweep over
the model zoo; it is computed once per session here and shared by the Table 2 /
Table 3 / Figure 4 / Figure 5 / Table 6 benchmarks.

By default the sweep runs over a representative subset of the registry so the
whole benchmark suite finishes in a few minutes on a laptop; set
``REPRO_BENCH_FULL=1`` to sweep every registered task (the full scaled-down
counterpart of the paper's 200+ task study).
"""

from __future__ import annotations

import os

import pytest

from repro.evaluation.harness import paper_configurations, run_pass_rate_sweep
from repro.models.registry import build_task, list_specs

#: representative subset used when REPRO_BENCH_FULL is not set
DEFAULT_BENCH_TASKS = [
    # CV
    "resnet18-imagenet",
    "resnet50-imagenet",
    "densenet121-imagenet",
    "mobilenet-v2-imagenet",
    "efficientnet-b0-imagenet",
    "vit-small-imagenet",
    "unet-carvana",
    # NLP
    "bert-base-mrpc",
    "bert-base-cola",
    "bert-large-rte",
    "distilbert-mrpc",
    "longformer-mrpc",
    "funnel-mrpc",
    "bloom-7b1-lambada",
    "bloom-176b-lambada",
    "llama-65b-lambada",
    # other domains
    "wav2vec2-librispeech",
    "dlrm-criteo",
]


def bench_task_names():
    if os.environ.get("REPRO_BENCH_FULL"):
        return [spec.name for spec in list_specs(in_pass_rate_suite=True)]
    return list(DEFAULT_BENCH_TASKS)


@pytest.fixture(scope="session")
def sweep_report():
    """The Table 2 sweep (every benchmark task × the paper's six configurations)."""
    return run_pass_rate_sweep(task_names=bench_task_names(), configurations=paper_configurations())


@pytest.fixture(scope="session")
def cnn_bundle():
    return build_task("resnet18-imagenet")


@pytest.fixture(scope="session")
def densenet_bundle():
    return build_task("densenet121-imagenet")


@pytest.fixture(scope="session")
def bert_bundle():
    return build_task("bert-base-mrpc")


@pytest.fixture(scope="session")
def lm_bundle():
    return build_task("bloom-7b1-lambada")


@pytest.fixture(scope="session")
def diffusion_bundle():
    return build_task("stable-diffusion-proxy")
