"""Dispatch roofline: compiled plan replay vs eager module dispatch.

The plan cache (:mod:`repro.graph`) exists to kill per-layer Python dispatch
on the serving forward: one traced-and-fused flat plan with preallocated
buffers replaces the ``Module.__call__`` / autograd-Tensor tower.  The win is
largest exactly where serving hurts most — deep, narrow models at small
batch, where every layer's useful arithmetic is a few microseconds and the
interpreter overhead dominates.

Gates:

* plan replay >= 1.3x eager on a plain float32 MLP (depth 32, width 128,
  batch 2) under ``no_grad`` — override with ``REPRO_BENCH_PLAN_MIN_SPEEDUP``
  (CI uses a looser bound on contended shared runners);
* plan replay is **bit-identical** to eager on the float model and on an
  E4M3-dynamic quantized model across cached/streaming serving modes x
  fast/reference FP8 kernels, and the quantized forwards genuinely compile
  (no silent eager fallback).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_plan_cache.py

or through pytest::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_plan_cache.py
"""

from __future__ import annotations

import os
import time

import numpy as np

from bench_report import record
from repro import nn
from repro.autograd.tensor import Tensor, no_grad
from repro.evaluation.reporting import format_table
from repro.fp8.kernels import use_kernel
from repro.graph import install_plan_cache, plan_cache_of, remove_plan_cache
from repro.quantization import quantize_model, set_serving_mode, standard_recipe
from repro.quantization.qconfig import Approach

DEPTH = 32
WIDTH = 128
BATCH = 2
#: plan replay must beat eager dispatch by this factor on the deep MLP.  The
#: default is the acceptance target on a quiet machine; CI overrides it with a
#: looser smoke bound via REPRO_BENCH_PLAN_MIN_SPEEDUP (shared-runner jitter).
ACCEPTANCE_SPEEDUP = float(os.environ.get("REPRO_BENCH_PLAN_MIN_SPEEDUP", "1.3"))

FORWARDS_PER_ROUND = 50


def build_mlp(depth: int = DEPTH, width: int = WIDTH, seed: int = 7) -> nn.Sequential:
    rng = np.random.default_rng(seed)
    layers = []
    for _ in range(depth - 1):
        layers.append(nn.Linear(width, width, rng=rng))
        layers.append(nn.ReLU())
    layers.append(nn.Linear(width, width, rng=rng))
    return nn.Sequential(*layers)


def probe_batch(seed: int = 11) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, 1.0, (BATCH, WIDTH)).astype(np.float32)


def _time(fn, rounds: int = 7, warmup: int = 2) -> float:
    for _ in range(warmup):
        fn()
    best = np.inf
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_dispatch_speedup() -> dict:
    """Time eager vs plan-replay forwards on the plain float32 deep MLP."""
    model = build_mlp()
    model.eval()
    x = Tensor(probe_batch())

    def forwards():
        with no_grad():
            for _ in range(FORWARDS_PER_ROUND):
                model(x)

    with no_grad():
        eager_out = model(x)
    eager_s = _time(forwards)

    cache = install_plan_cache(model)
    with no_grad():
        model(x)  # trace + compile
        plan_out = model(x)  # replay
    stats = cache.stats()
    if stats["plans"] != 1 or stats["compiles"] != 1:
        raise AssertionError(f"float MLP did not compile to a plan: {stats}")
    plan_s = _time(forwards)
    remove_plan_cache(model)

    if not np.array_equal(eager_out.data, plan_out.data):
        raise AssertionError("plan replay is not bit-identical to eager on the float MLP")

    return {
        "depth": DEPTH,
        "width": WIDTH,
        "batch": BATCH,
        "eager_us_per_forward": eager_s / FORWARDS_PER_ROUND * 1e6,
        "plan_us_per_forward": plan_s / FORWARDS_PER_ROUND * 1e6,
        "speedup": eager_s / plan_s,
        "bit_identical": True,
    }


def run_quantized_bit_identity() -> dict:
    """Plan replay == eager on E4M3-dynamic models, all serving modes x kernels."""
    recipe = standard_recipe(
        "E4M3",
        approach=Approach.DYNAMIC,
        skip_first_operator=False,
        skip_last_operator=False,
    )
    results = {}
    for kernel in ("fast", "reference"):
        with use_kernel(kernel):
            qmodel = quantize_model(build_mlp(depth=6), recipe).model
            qmodel.eval()
            x = Tensor(probe_batch())
            for mode in ("cached", "streaming"):
                set_serving_mode(qmodel, mode)
                with no_grad():
                    eager_out = qmodel(x)
                cache = install_plan_cache(qmodel)
                with no_grad():
                    qmodel(x)
                    plan_out = qmodel(x)
                stats = cache.stats()
                remove_plan_cache(qmodel)
                if stats["plans"] != 1 or stats["hits"] < 1:
                    raise AssertionError(
                        f"quantized model fell back to eager ({kernel}/{mode}): {stats}"
                    )
                identical = np.array_equal(eager_out.data, plan_out.data)
                results[f"{kernel}/{mode}"] = bool(identical)
                if not identical:
                    raise AssertionError(
                        f"plan replay differs from eager on E4M3-dynamic ({kernel}/{mode})"
                    )
    return results


def run() -> dict:
    dispatch = run_dispatch_speedup()
    quantized = run_quantized_bit_identity()
    return {"dispatch": dispatch, "quantized_bit_identical": quantized}


def test_plan_cache_dispatch_speedup():
    stats = run_dispatch_speedup()
    record("plan_cache", {"dispatch": stats})
    print(
        f"\nplan replay {stats['plan_us_per_forward']:.1f} us/forward vs eager "
        f"{stats['eager_us_per_forward']:.1f} us/forward -> {stats['speedup']:.2f}x"
    )
    assert stats["speedup"] >= ACCEPTANCE_SPEEDUP, (
        f"plan replay speedup {stats['speedup']:.2f}x is below the "
        f"{ACCEPTANCE_SPEEDUP}x acceptance bound on the depth-{DEPTH} MLP"
    )


def test_plan_cache_quantized_bit_identity():
    results = run_quantized_bit_identity()
    record("plan_cache", {"quantized_bit_identical": results})
    assert all(results.values())


def main():
    stats = run()
    dispatch = stats["dispatch"]
    rows = [
        {
            "Model": f"float32 MLP d{DEPTH} w{WIDTH} b{BATCH}",
            "Eager us/fwd": f"{dispatch['eager_us_per_forward']:.1f}",
            "Plan us/fwd": f"{dispatch['plan_us_per_forward']:.1f}",
            "Speedup": f"{dispatch['speedup']:.2f}x",
        }
    ]
    print(format_table(rows))
    for config, ok in stats["quantized_bit_identical"].items():
        print(f"E4M3-dynamic {config}: plan replay bit-identical = {ok}")
    record("plan_cache", stats)
    gate = "PASS" if dispatch["speedup"] >= ACCEPTANCE_SPEEDUP else "FAIL"
    print(f"acceptance (>= {ACCEPTANCE_SPEEDUP}x): {gate}")


if __name__ == "__main__":
    main()
