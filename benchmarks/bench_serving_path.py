"""Memory-bound serving paths: float32 vs cached vs streaming (decode-on-the-fly).

The deployment question the packed storage layer exists to answer: what does
it cost to *serve* from packed 8-bit weights?  Three paths over the same MLP
stack:

1. **float32** — the unquantized model; dense weights resident, plain matmul.
2. **cached**  — converted model, dequant cache materialised once and kept;
   fastest quantized path, resident ≈ packed + dense float32.
3. **streaming** — restore-free deployment (``deploy=True``), packed codes
   decoded block-by-block inside each forward
   (:meth:`~repro.fp8.quantize.QuantizedTensor.dequantize_block`); no
   persistent float32 view, resident ≈ the packed footprint.

For each path the benchmark reports resident weight bytes (via
:func:`repro.quantization.resident_report`, deduplicated by actual array
storage) and serving throughput in tokens/sec (rows of the input batch per
second of forward time).

Acceptance (asserted by the ``test_`` entry points and the CI
``checkpoint-roundtrip`` job):

* deployed streaming resident bytes <= 0.35x of the float32 model;
* streaming outputs match cached outputs (same grid, same codes — only the
  matmul blocking differs);
* a ``save_quantized`` → fresh ``load_quantized`` round trip preserves packed
  codes/scales bit-for-bit and produces bit-identical forward outputs.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serving_path.py

or through pytest::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_serving_path.py
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

import repro.nn as nn
from bench_report import record
from repro.autograd.tensor import Tensor, no_grad
from repro.evaluation.reporting import format_table
from repro.quantization import (
    Approach,
    QuantizedModule,
    int8_recipe,
    quantize_model,
    resident_report,
    standard_recipe,
)
from repro.serialization import load_quantized, save_quantized

#: deployed streaming resident bytes must come in at or under this fraction
#: of the dense float32 model (the PR's acceptance criterion)
ACCEPTANCE_RESIDENT_RATIO = 0.35

BATCH = 256
IN_FEATURES = 512
ROUNDS = 5


def build_model(rng_seed: int = 0) -> nn.Sequential:
    rng = np.random.default_rng(rng_seed)
    return nn.Sequential(
        nn.Linear(IN_FEATURES, 1024, rng=rng),
        nn.ReLU(),
        nn.Linear(1024, 1024, rng=rng),
        nn.ReLU(),
        nn.Linear(1024, 256, rng=rng),
    )


def _probe() -> Tensor:
    rng = np.random.default_rng(42)
    return Tensor(rng.normal(0.0, 1.0, (BATCH, IN_FEATURES)).astype(np.float32))


def _tokens_per_sec(model, probe: Tensor, rounds: int = ROUNDS) -> float:
    with no_grad():
        model(probe)  # warmup (materialises caches where applicable)
        best = np.inf
        for _ in range(rounds):
            t0 = time.perf_counter()
            model(probe)
            best = min(best, time.perf_counter() - t0)
    return BATCH / best


def measure_serving(recipe_name: str = "E4M3"):
    """Resident bytes + throughput for the three serving paths."""
    if recipe_name.upper().startswith("INT8"):
        recipe = int8_recipe(approach=Approach.DYNAMIC)
    else:
        recipe = standard_recipe(recipe_name, approach=Approach.DYNAMIC)
    probe = _probe()

    fp32_model = build_model()
    fp32_model.eval()
    fp32_out = fp32_model(probe).data
    fp32_resident = resident_report(fp32_model)
    fp32_tps = _tokens_per_sec(fp32_model, probe)

    cached = quantize_model(fp32_model, recipe)
    cached_out = cached.model(probe).data
    cached_tps = _tokens_per_sec(cached.model, probe)
    cached_resident = resident_report(cached.model)  # after forward: cache held

    streaming = quantize_model(fp32_model, recipe, deploy=True, serving_mode="streaming")
    streaming_resident = resident_report(streaming.model)  # at rest: packed only
    streaming_out = streaming.model(probe).data
    streaming_tps = _tokens_per_sec(streaming.model, probe)
    streaming_resident_after = resident_report(streaming.model)

    rows = [
        {
            "Path": "float32",
            "Resident KiB": f"{fp32_resident['resident_bytes'] / 1024:.1f}",
            "Resident ratio": f"{fp32_resident['ratio']:.3f}x",
            "Tokens/s": f"{fp32_tps:,.0f}",
        },
        {
            "Path": f"cached ({recipe.name})",
            "Resident KiB": f"{cached_resident['resident_bytes'] / 1024:.1f}",
            "Resident ratio": f"{cached_resident['ratio']:.3f}x",
            "Tokens/s": f"{cached_tps:,.0f}",
        },
        {
            "Path": f"streaming+deploy ({recipe.name})",
            "Resident KiB": f"{streaming_resident['resident_bytes'] / 1024:.1f}",
            "Resident ratio": f"{streaming_resident['ratio']:.3f}x",
            "Tokens/s": f"{streaming_tps:,.0f}",
        },
    ]
    stats = {
        "fp32_tokens_per_sec": fp32_tps,
        "cached_tokens_per_sec": cached_tps,
        "streaming_tokens_per_sec": streaming_tps,
        "fp32_resident_bytes": fp32_resident["resident_bytes"],
        "cached_resident_ratio": cached_resident["ratio"],
        "streaming_resident_ratio": streaming_resident["ratio"],
        "streaming_resident_ratio_after_forward": streaming_resident_after["ratio"],
        "streaming_matches_cached": bool(
            np.allclose(cached_out, streaming_out, rtol=1e-5, atol=1e-6)
        ),
        "max_quant_error_vs_fp32": float(np.abs(cached_out - fp32_out).max()),
    }
    return rows, stats


def measure_checkpoint_roundtrip(recipe_name: str = "E4M3"):
    """save_quantized → fresh load_quantized: bit-identity + file footprint."""
    recipe = standard_recipe(recipe_name, approach=Approach.DYNAMIC)
    probe = _probe()
    model = build_model()
    model.eval()
    result = quantize_model(model, recipe)
    reference_out = result.model(probe).data
    packed = {
        name: module.weight_q
        for name, module in result.model.named_modules()
        if isinstance(module, QuantizedModule) and module.weight_q is not None
    }

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "model.rpq")
        file_bytes = save_quantized(result.model, path, recipe=recipe)
        loaded = load_quantized(path, build_model)
        resident_at_rest = resident_report(loaded)  # before any forward: packed only
        loaded_out = loaded(probe).data
        def _same_payload(name, module):
            saved = packed[name]
            return np.array_equal(saved.codes, module.weight_q.codes) and np.array_equal(
                np.asarray(saved.scale), np.asarray(module.weight_q.scale)
            )

        codes_identical = all(
            _same_payload(name, module)
            for name, module in loaded.named_modules()
            if isinstance(module, QuantizedModule) and module.weight_q is not None
        )
    fp32_bytes = resident_at_rest["fp32_bytes"]
    stats = {
        "file_bytes": file_bytes,
        "file_ratio_vs_fp32": file_bytes / fp32_bytes,
        "loaded_resident_ratio": resident_at_rest["ratio"],
        "codes_scales_bit_identical": bool(codes_identical),
        "forward_bit_identical": bool(np.array_equal(reference_out, loaded_out)),
    }
    rows = [
        {
            "Checkpoint": recipe.name,
            "File KiB": f"{file_bytes / 1024:.1f}",
            "File ratio": f"{stats['file_ratio_vs_fp32']:.3f}x",
            "Loaded resident": f"{resident_at_rest['ratio']:.3f}x",
            "Codes bit-identical": stats["codes_scales_bit_identical"],
            "Forward bit-identical": stats["forward_bit_identical"],
        }
    ]
    return rows, stats


def main():
    serving_rows = []
    serving_stats = {}
    for recipe_name in ("E4M3", "INT8"):
        rows, stats = measure_serving(recipe_name)
        serving_rows.extend(rows)
        serving_stats[recipe_name] = stats
    print()
    print(
        format_table(
            serving_rows,
            title=f"Serving paths ({BATCH}x{IN_FEATURES} batch, best of {ROUNDS})",
        )
    )
    ckpt_rows, ckpt_stats = measure_checkpoint_roundtrip()
    print()
    print(format_table(ckpt_rows, title="Packed checkpoint round trip"))
    record("serving_path", serving_stats)
    record("checkpoint_roundtrip", ckpt_stats)
    return serving_stats, ckpt_stats


def test_streaming_resident_footprint():
    _, stats = measure_serving("E4M3")
    record("serving_path", {"E4M3": stats})
    ratio = stats["streaming_resident_ratio"]
    assert ratio <= ACCEPTANCE_RESIDENT_RATIO, (
        f"deployed streaming resident bytes {ratio:.3f}x above the "
        f"{ACCEPTANCE_RESIDENT_RATIO}x acceptance ratio"
    )
    # and the streaming forward itself must not leave a cache behind
    assert stats["streaming_resident_ratio_after_forward"] <= ACCEPTANCE_RESIDENT_RATIO


def test_streaming_matches_cached():
    for recipe_name in ("E4M3", "INT8"):
        _, stats = measure_serving(recipe_name)
        assert stats["streaming_matches_cached"], (
            f"streaming outputs diverge from cached outputs on {recipe_name}"
        )


def test_checkpoint_roundtrip_bit_identical():
    _, stats = measure_checkpoint_roundtrip()
    record("checkpoint_roundtrip", stats)
    assert stats["codes_scales_bit_identical"], "packed codes/scales changed across save/load"
    assert stats["forward_bit_identical"], "loaded model's forward outputs diverge"
    assert stats["loaded_resident_ratio"] <= ACCEPTANCE_RESIDENT_RATIO


if __name__ == "__main__":
    main()
