"""Cold start + throughput: mmap checkpoint loading and the batched serving engine.

The two ends of the serving hot path that PR 4 adds, with acceptance gates:

1. **Cold start** — ``load_quantized(..., mmap=True)`` on a >= 50 MB packed
   checkpoint must (a) materialise < 0.10x of the packed payload bytes before
   the first forward (codes stay as read-only page-on-touch views into the
   mapped file) and (b) load >= 5x faster than the copied load of the same
   file, because the mmap path is O(header + float leftovers).
2. **Throughput** — the :class:`~repro.serving.engine.ServingEngine` serving
   8 single-sample requests as one stacked forward must beat 8 sequential
   single-request streaming forwards by >= 2x: the per-forward block decode
   is paid once per batch instead of once per request.
3. **Bit-identity** — streaming with the double-buffered block prefetcher
   enabled must produce outputs bit-identical to cached mode on the same
   batch (same codes, same block boundaries, same kernels — only the decode
   schedule differs).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serving_engine.py

or through pytest::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_serving_engine.py
"""

from __future__ import annotations

import os
import tempfile
import time
from contextlib import contextmanager

import numpy as np

import repro.nn as nn
import repro.nn.init as init
from bench_report import record
from repro.autograd.tensor import Tensor, no_grad
from repro.evaluation.reporting import format_table
from repro.quantization import (
    Approach,
    int8_recipe,
    quantize_model,
    resident_report,
    set_serving_mode,
    standard_recipe,
)
from repro.serialization import load_quantized, save_quantized
from repro.serving import ServingEngine

#: cold-load gates (issue acceptance criteria)
ACCEPTANCE_TOUCHED_RATIO = 0.10
ACCEPTANCE_LOAD_SPEEDUP = 5.0
#: batched-throughput gate at batch 8
ACCEPTANCE_BATCH_SPEEDUP = 2.0

#: cold-start checkpoint: 4 x Linear(4096, 4096) packs to ~64 MiB of codes
COLD_FEATURES = 4096
COLD_LAYERS = 4
MIN_CHECKPOINT_BYTES = 50 * 1000 * 1000

#: throughput model + traffic shape
SERVE_FEATURES = 1024
SERVE_LAYERS = 4
BATCH = 8
ROUNDS = 5

#: batch used for the bit-identity check: BLAS picks a different small-M
#: kernel below ~32 rows for the full-width matmul than for the narrow
#: per-block matmuls, changing the K-summation order by ~1 ulp — at >= 32
#: rows both paths hit the same gemm kernel and the comparison is exact
IDENTITY_BATCH = 32


@contextmanager
def _cheap_init():
    """Zero-cost weight init for factories on the timed load path.

    The load benchmark measures the *checkpoint* path; the factory's random
    init is identical overhead on both sides and its weights are discarded
    anyway (quantized weights come back from packed codes, float leftovers
    from the container), so a deployment-grade factory allocates zeros.
    """
    saved = (init.kaiming_uniform, init.kaiming_normal, init.normal_)

    def _zeros(shape, **kwargs):
        return np.zeros(shape, dtype=np.float32)

    init.kaiming_uniform = _zeros
    init.kaiming_normal = _zeros
    init.normal_ = _zeros
    try:
        yield
    finally:
        init.kaiming_uniform, init.kaiming_normal, init.normal_ = saved


def build_cold_model() -> nn.Sequential:
    with _cheap_init():
        layers = []
        for _ in range(COLD_LAYERS):
            layers.extend([nn.Linear(COLD_FEATURES, COLD_FEATURES), nn.ReLU()])
        return nn.Sequential(*layers[:-1])


#: lazily built (path, file_bytes, packed_bytes, reference_out) shared by the
#: cold-load test and main(); the temp dir object keeps the file alive
_COLD_STATE: dict = {}


def _cold_checkpoint() -> dict:
    if _COLD_STATE:
        return _COLD_STATE
    model = build_cold_model()
    # deterministic non-trivial weights without paying RNG cost on 67M
    # elements: one periodic row broadcast across each weight matrix
    row = ((np.arange(COLD_FEATURES, dtype=np.float32) % 251.0) - 125.0) / 125.0
    for _, module in model.named_modules():
        if isinstance(module, nn.Linear):
            module.weight.data[...] = row
    result = quantize_model(
        model, int8_recipe(approach=Approach.DYNAMIC), inplace=True, deploy=True
    )
    tmp = tempfile.TemporaryDirectory(prefix="repro-bench-serving-")
    path = os.path.join(tmp.name, "cold.rpq")
    file_bytes = save_quantized(result.model, path, recipe=result.recipe)
    packed_bytes = result.weight_bytes_packed
    probe = _probe((2, COLD_FEATURES))
    with no_grad():
        reference_out = result.model(probe).data
    _COLD_STATE.update(
        {
            "tmp": tmp,
            "path": path,
            "file_bytes": file_bytes,
            "packed_bytes": packed_bytes,
            "probe": probe,
            "reference_out": reference_out,
        }
    )
    return _COLD_STATE


def _probe(shape, seed: int = 42) -> Tensor:
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(0.0, 1.0, shape).astype(np.float32))


def _best_load_time(path: str, mmap: bool, rounds: int = 3) -> float:
    best = np.inf
    for _ in range(rounds):
        t0 = time.perf_counter()
        load_quantized(path, build_cold_model, mmap=mmap)
        best = min(best, time.perf_counter() - t0)
    return best


def measure_cold_load():
    """Copied vs mmap load of a >= 50 MB packed checkpoint."""
    state = _cold_checkpoint()
    path, file_bytes, packed_bytes = state["path"], state["file_bytes"], state["packed_bytes"]

    copied_s = _best_load_time(path, mmap=False)
    mmap_s = _best_load_time(path, mmap=True)

    mapped_model = load_quantized(path, build_cold_model, mmap=True)
    report_cold = resident_report(mapped_model)  # before any forward
    with no_grad():
        mmap_out = mapped_model(state["probe"]).data
    copied_model = load_quantized(path, build_cold_model, mmap=False)
    with no_grad():
        copied_out = copied_model(state["probe"]).data

    stats = {
        "file_bytes": int(file_bytes),
        "packed_bytes": int(packed_bytes),
        "copied_load_s": copied_s,
        "mmap_load_s": mmap_s,
        "load_speedup": copied_s / mmap_s,
        "cold_resident_bytes": report_cold["resident_bytes"],
        "cold_mapped_bytes": report_cold["mapped_bytes"],
        "touched_ratio": report_cold["resident_bytes"] / packed_bytes,
        "mmap_matches_copied": bool(np.array_equal(mmap_out, copied_out)),
        "mmap_matches_saved": bool(np.array_equal(mmap_out, state["reference_out"])),
    }
    rows = [
        {
            "Load path": "copied",
            "Load time": f"{copied_s * 1e3:.1f} ms",
            "Payload copied": f"{file_bytes / 1e6:.1f} MB",
        },
        {
            "Load path": "mmap",
            "Load time": f"{mmap_s * 1e3:.1f} ms",
            "Payload copied": (
                f"{report_cold['resident_bytes'] / 1e6:.2f} MB "
                f"({stats['touched_ratio']:.4f}x of packed)"
            ),
        },
    ]
    return rows, stats


def build_serve_model() -> nn.Sequential:
    rng = np.random.default_rng(7)
    layers = []
    for _ in range(SERVE_LAYERS):
        layers.extend([nn.Linear(SERVE_FEATURES, SERVE_FEATURES, rng=rng), nn.ReLU()])
    return nn.Sequential(*layers[:-1])


def measure_batched_throughput():
    """8 sequential single-request streaming forwards vs one engine batch."""
    result = quantize_model(
        build_serve_model(),
        standard_recipe("E4M3", approach=Approach.DYNAMIC),
        deploy=True,
        serving_mode="streaming",
    )
    model = result.model
    rng = np.random.default_rng(3)
    samples = [rng.normal(0.0, 1.0, (SERVE_FEATURES,)).astype(np.float32) for _ in range(BATCH)]

    with no_grad():
        model(Tensor(samples[0][None]))  # warmup
    sequential_s = np.inf
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        with no_grad():
            for sample in samples:
                model(Tensor(sample[None]))
        sequential_s = min(sequential_s, time.perf_counter() - t0)

    with ServingEngine(model, max_batch_size=BATCH, max_wait_ms=50.0) as engine:
        engine.serve_batch(samples)  # warmup
        batched_s = np.inf
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            outputs = engine.serve_batch(samples)
            batched_s = min(batched_s, time.perf_counter() - t0)
        engine_stats = engine.stats
    with no_grad():
        direct = model(Tensor(np.stack(samples))).data
    outputs_match_direct = bool(np.allclose(np.stack(outputs), direct, rtol=1e-5, atol=1e-6))

    stats = {
        "sequential_s": sequential_s,
        "batched_s": batched_s,
        "batch_speedup": sequential_s / batched_s,
        "sequential_req_per_s": BATCH / sequential_s,
        "batched_req_per_s": BATCH / batched_s,
        "engine_mean_batch": engine_stats["mean_batch"],
        "engine_max_batch": engine_stats["max_batch"],
        "outputs_match_direct_batch": outputs_match_direct,
    }
    rows = [
        {
            "Streaming path": "sequential x8",
            "Requests/s": f"{stats['sequential_req_per_s']:,.1f}",
            "Batch time": f"{sequential_s * 1e3:.1f} ms",
        },
        {
            "Streaming path": f"engine batch {BATCH}",
            "Requests/s": f"{stats['batched_req_per_s']:,.1f}",
            "Batch time": f"{batched_s * 1e3:.1f} ms",
        },
    ]
    return rows, stats


def measure_prefetch_identity():
    """Prefetched streaming must be bit-identical to cached mode (and report overlap timing)."""
    result = quantize_model(build_serve_model(), standard_recipe("E4M3", approach=Approach.DYNAMIC))
    model = result.model
    probe = _probe((IDENTITY_BATCH, SERVE_FEATURES), seed=11)
    with no_grad():
        cached_out = model(probe).data

        set_serving_mode(model, "streaming", prefetch=False)
        model(probe)  # warmup
        plain_s = np.inf
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            plain_out = model(probe).data
            plain_s = min(plain_s, time.perf_counter() - t0)

        set_serving_mode(model, "streaming", prefetch=True)
        model(probe)  # warmup
        prefetch_s = np.inf
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            prefetch_out = model(probe).data
            prefetch_s = min(prefetch_s, time.perf_counter() - t0)

    stats = {
        "prefetch_matches_cached": bool(np.array_equal(prefetch_out, cached_out)),
        "prefetch_matches_plain_streaming": bool(np.array_equal(prefetch_out, plain_out)),
        "plain_streaming_s": plain_s,
        "prefetch_streaming_s": prefetch_s,
        "prefetch_speedup": plain_s / prefetch_s,
    }
    rows = [
        {
            "Mode": "streaming",
            "Forward": f"{plain_s * 1e3:.1f} ms",
            "== cached": bool(np.array_equal(plain_out, cached_out)),
        },
        {
            "Mode": "streaming+prefetch",
            "Forward": f"{prefetch_s * 1e3:.1f} ms",
            "== cached": stats["prefetch_matches_cached"],
        },
    ]
    return rows, stats


def main():
    cold_rows, cold_stats = measure_cold_load()
    print()
    print(format_table(cold_rows, title="Cold load: copied vs mmap"))
    serve_rows, serve_stats = measure_batched_throughput()
    print()
    print(format_table(serve_rows, title=f"Serving engine throughput (batch {BATCH})"))
    prefetch_rows, prefetch_stats = measure_prefetch_identity()
    print()
    print(format_table(prefetch_rows, title="Block prefetch"))
    record(
        "serving_engine",
        {"cold_load": cold_stats, "throughput": serve_stats, "prefetch": prefetch_stats},
    )
    return cold_stats, serve_stats, prefetch_stats


def test_mmap_cold_load_gates():
    _, stats = measure_cold_load()
    record("serving_engine_cold_load", stats)
    assert stats["file_bytes"] >= MIN_CHECKPOINT_BYTES, (
        f"checkpoint is only {stats['file_bytes']} bytes; the cold-load gate "
        f"needs >= {MIN_CHECKPOINT_BYTES}"
    )
    assert stats["touched_ratio"] < ACCEPTANCE_TOUCHED_RATIO, (
        f"mmap cold load materialised {stats['touched_ratio']:.4f}x of the packed "
        f"payload before the first forward (gate: < {ACCEPTANCE_TOUCHED_RATIO}x)"
    )
    assert stats["load_speedup"] >= ACCEPTANCE_LOAD_SPEEDUP, (
        f"mmap load only {stats['load_speedup']:.2f}x faster than copied "
        f"(gate: >= {ACCEPTANCE_LOAD_SPEEDUP}x)"
    )
    assert stats["mmap_matches_copied"], "mmap-loaded forward diverges from copied load"
    assert stats["mmap_matches_saved"], "mmap-loaded forward diverges from the saved model"


def test_batched_throughput_gate():
    _, stats = measure_batched_throughput()
    record("serving_engine_throughput", stats)
    assert stats["outputs_match_direct_batch"], (
        "engine outputs diverge from a direct batched forward"
    )
    assert stats["batch_speedup"] >= ACCEPTANCE_BATCH_SPEEDUP, (
        f"engine batch {BATCH} only {stats['batch_speedup']:.2f}x over sequential "
        f"streaming (gate: >= {ACCEPTANCE_BATCH_SPEEDUP}x)"
    )


def test_prefetch_bit_identity():
    _, stats = measure_prefetch_identity()
    record("serving_engine_prefetch", stats)
    assert stats["prefetch_matches_plain_streaming"], (
        "prefetched streaming diverges from sequential streaming"
    )
    assert stats["prefetch_matches_cached"], "prefetched streaming diverges from cached mode"


if __name__ == "__main__":
    main()
