"""Autoregressive generation serving: KV-cache decode + token-level co-batching.

The two wins of the generation tier, each gated against the architecture it
replaces:

1. **KV-cache incremental decode** — greedy decode to a 64-token sequence
   through the per-layer KV cache must beat `GPTStyleLM.generate`'s
   full-recompute loop by >= 3x.  The win is algorithmic (O(T) attended
   tokens per step instead of O(T²) re-encoded ones), so the full gate
   applies on any core count.
2. **Token-level continuous batching** — under staggered generation arrivals,
   the engine's default admission (prefills of new requests co-batch with
   decode steps of in-flight ones each tick) must beat the same driver in
   ``generation_admission="drain"`` mode (new requests wait until the running
   set empties — the lock-step baseline) by >= 1.3x makespan.

Plus the correctness anchor: cached greedy decode — solo through the model
*and* batched through the engine — must be **token-identical** to the
full-recompute loop.

Override the gates with ``REPRO_BENCH_KV_DECODE_MIN_SPEEDUP`` /
``REPRO_BENCH_GEN_CB_MIN_SPEEDUP``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_generation.py

or through pytest::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_generation.py
"""

from __future__ import annotations

import os
import time

import numpy as np

from bench_report import record
from repro.evaluation.reporting import format_table
from repro.models.transformer import GPTStyleLM
from repro.serving import GenerationRequest, ServingEngine

_CORES = os.cpu_count() or 1

#: incremental decode is an algorithmic win — full gate on any core count
ACCEPTANCE_KV_DECODE = float(os.environ.get("REPRO_BENCH_KV_DECODE_MIN_SPEEDUP", 3.0))
#: so is tick-level co-batching (fewer, fuller forward_step calls)
ACCEPTANCE_GEN_CB = float(os.environ.get("REPRO_BENCH_GEN_CB_MIN_SPEEDUP", 1.3))

#: decode scenario: generate out to the acceptance criterion's 64-token
#: sequence on a model wide enough that forwards are compute-, not
#: dispatch-dominated (the full-recompute loop re-encodes the whole prefix,
#: so its per-token cost grows with T while the cached step's stays flat)
DECODE_SEQ_LEN = 64
DECODE_PROMPT = 8
DECODE_EMBED = 256
DECODE_LAYERS = 4
DECODE_ROUNDS = 3

#: co-batching scenario: arrivals staggered *within* the first request's
#: decode, so drain-mode admission strands them behind a full generation
#: (wave barrier) while continuous admission merges each one into the next
#: tick's forward_step
SERVE_REQUESTS = 6
SERVE_NEW_TOKENS = 64
SERVE_PROMPT = 6
SERVE_GAP_S = 0.002
SERVE_SLOTS = 16
SERVE_ROUNDS = 3


def _decode_model(seed: int = 0) -> GPTStyleLM:
    model = GPTStyleLM(
        vocab_size=64,
        max_seq_len=DECODE_SEQ_LEN,
        embed_dim=DECODE_EMBED,
        num_heads=8,
        num_layers=DECODE_LAYERS,
        rng=seed,
    )
    return model.eval()


def _serve_model(seed: int = 1) -> GPTStyleLM:
    model = GPTStyleLM(
        vocab_size=64,
        max_seq_len=SERVE_PROMPT + SERVE_NEW_TOKENS + 2,
        embed_dim=64,
        num_heads=4,
        num_layers=3,
        rng=seed,
    )
    return model.eval()


def measure_kv_decode():
    """Greedy decode to a 64-token sequence: KV cache vs full recompute."""
    model = _decode_model()
    prompt = (np.arange(DECODE_PROMPT, dtype=np.int64) * 7) % 64
    max_new = DECODE_SEQ_LEN - DECODE_PROMPT

    # warmup both paths (BLAS init, first-touch allocation)
    model.generate(prompt, max_new_tokens=4)
    model.generate(prompt, max_new_tokens=4, use_cache=False)

    cached_s = np.inf
    full_s = np.inf
    cached_seq = full_seq = None
    for _ in range(DECODE_ROUNDS):
        t0 = time.perf_counter()
        cached_seq = model.generate(prompt, max_new_tokens=max_new, use_cache=True)
        cached_s = min(cached_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        full_seq = model.generate(prompt, max_new_tokens=max_new, use_cache=False)
        full_s = min(full_s, time.perf_counter() - t0)

    stats = {
        "seq_len": DECODE_SEQ_LEN,
        "new_tokens": max_new,
        "embed_dim": DECODE_EMBED,
        "layers": DECODE_LAYERS,
        "full_recompute_s": full_s,
        "kv_cache_s": cached_s,
        "full_tok_per_s": max_new / full_s,
        "kv_tok_per_s": max_new / cached_s,
        "speedup": full_s / cached_s,
        "token_identical": bool(np.array_equal(cached_seq, full_seq)),
    }
    rows = [
        {
            "Decode": "full recompute (pre-PR)",
            "Tokens/s": f"{stats['full_tok_per_s']:,.1f}",
            "64-token gen": f"{full_s * 1e3:.0f} ms",
        },
        {
            "Decode": "KV cache",
            "Tokens/s": f"{stats['kv_tok_per_s']:,.1f}",
            "64-token gen": f"{cached_s * 1e3:.0f} ms",
            "== full": stats["token_identical"],
        },
    ]
    return rows, stats


def _staggered_generate(engine: ServingEngine, prompts, gap_s: float) -> float:
    """Submit generation requests on a fixed arrival schedule; return makespan."""
    request = GenerationRequest(max_new_tokens=SERVE_NEW_TOKENS)
    futures = []
    t0 = time.perf_counter()
    for index, prompt in enumerate(prompts):
        target = t0 + index * gap_s
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        futures.append(engine.generate(prompt, request))
    sequences = [future.result(timeout=300) for future in futures]
    makespan = time.perf_counter() - t0
    return makespan, sequences


def measure_continuous_vs_drain():
    """Staggered generation arrivals: co-batched admission vs drain-then-batch."""
    model = _serve_model()
    rng = np.random.default_rng(3)
    prompts = [
        rng.integers(0, 64, size=SERVE_PROMPT).astype(np.int64) for _ in range(SERVE_REQUESTS)
    ]
    references = [model.generate(p, max_new_tokens=SERVE_NEW_TOKENS) for p in prompts]

    timings = {}
    outputs = {}
    for admission in ("drain", "continuous"):
        best = np.inf
        for _ in range(SERVE_ROUNDS):
            engine = ServingEngine(
                model,
                plan_cache=False,
                decode_slots=SERVE_SLOTS,
                generation_admission=admission,
            )
            # warmup: spin up the driver thread and first-touch the decode pool
            engine.generate(prompts[0], GenerationRequest(max_new_tokens=2)).result(timeout=60)
            makespan, sequences = _staggered_generate(engine, prompts, SERVE_GAP_S)
            engine.close()
            if makespan < best:
                best = makespan
                timings[admission] = makespan
                outputs[admission] = sequences

    matches = all(
        np.array_equal(out, ref)
        for mode in ("drain", "continuous")
        for out, ref in zip(outputs[mode], references)
    )
    total_tokens = SERVE_REQUESTS * SERVE_NEW_TOKENS
    stats = {
        "requests": SERVE_REQUESTS,
        "new_tokens_each": SERVE_NEW_TOKENS,
        "arrival_gap_ms": SERVE_GAP_S * 1e3,
        "drain_s": timings["drain"],
        "continuous_s": timings["continuous"],
        "drain_tok_per_s": total_tokens / timings["drain"],
        "continuous_tok_per_s": total_tokens / timings["continuous"],
        "speedup": timings["drain"] / timings["continuous"],
        "engine_matches_model": bool(matches),
    }
    rows = [
        {
            "Admission": "drain-then-batch",
            "Tokens/s": f"{stats['drain_tok_per_s']:,.1f}",
            "Makespan": f"{timings['drain'] * 1e3:.0f} ms",
        },
        {
            "Admission": "continuous (decode+prefill co-batch)",
            "Tokens/s": f"{stats['continuous_tok_per_s']:,.1f}",
            "Makespan": f"{timings['continuous'] * 1e3:.0f} ms",
            "== model.generate": stats["engine_matches_model"],
        },
    ]
    return rows, stats


def main():
    decode_rows, decode_stats = measure_kv_decode()
    print()
    print(format_table(decode_rows, title=f"KV-cache decode at seq {DECODE_SEQ_LEN}"))
    serve_rows, serve_stats = measure_continuous_vs_drain()
    print()
    print(format_table(serve_rows, title="Token-level continuous batching"))
    record("generation", {"kv_decode": decode_stats, "continuous": serve_stats})
    return decode_stats, serve_stats


def test_kv_decode_gate():
    _, stats = measure_kv_decode()
    record("generation", {"kv_decode": stats})
    assert stats["token_identical"], "KV-cache greedy decode diverged from full recompute"
    assert stats["speedup"] >= ACCEPTANCE_KV_DECODE, (
        f"KV-cache decode only {stats['speedup']:.2f}x over full recompute at "
        f"seq {DECODE_SEQ_LEN} (gate: >= {ACCEPTANCE_KV_DECODE}x)"
    )


def test_continuous_generation_gate():
    _, stats = measure_continuous_vs_drain()
    record("generation", {"continuous": stats})
    assert stats["engine_matches_model"], (
        "engine generation diverged from the model.generate reference"
    )
    assert stats["speedup"] >= ACCEPTANCE_GEN_CB, (
        f"continuous decode+prefill co-batching only {stats['speedup']:.2f}x over "
        f"drain-then-batch (gate: >= {ACCEPTANCE_GEN_CB}x)"
    )


if __name__ == "__main__":
    main()
