"""Figure 4 — variability (spread) of accuracy loss per format, split by CV and NLP."""

from repro.evaluation.reporting import format_table


def figure4_rows(report):
    rows = []
    for config in report.configurations():
        for domain in ("cv", "nlp"):
            stats = report.loss_statistics(config, domain)
            if not stats:
                continue
            rows.append(
                {
                    "config": config,
                    "domain": domain.upper(),
                    "median loss %": stats["median"] * 100,
                    "p25 %": stats["p25"] * 100,
                    "p75 %": stats["p75"] * 100,
                    "min %": stats["min"] * 100,
                    "max %": stats["max"] * 100,
                }
            )
    return rows


def test_figure4_accuracy_loss_variability(benchmark, sweep_report):
    rows = benchmark.pedantic(lambda: figure4_rows(sweep_report), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 4: accuracy-loss variability (box-plot statistics)"))

    def spread(config, domain):
        match = [r for r in rows if r["config"] == config and r["domain"] == domain]
        return (match[0]["max %"] - match[0]["min %"]) if match else float("nan")

    # INT8 shows at least as much spread as E4M3 on NLP workloads (outlier sensitivity)
    assert spread("INT8", "NLP") >= spread("E4M3-static", "NLP") - 1e-9
