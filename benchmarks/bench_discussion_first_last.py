"""Section 4.3.1 — pass-rate impact of quantizing the first and last operators of CNNs."""

import numpy as np

from repro.evaluation import evaluate_recipe_on_task
from repro.evaluation.reporting import format_table
from repro.models.registry import build_task
from repro.quantization import standard_recipe

CNN_TASKS = [
    "resnet18-imagenet", "densenet121-imagenet", "mobilenet-v2-imagenet", "efficientnet-b0-imagenet"
]


def first_last_rows():
    rows = []
    for fmt in ("E5M2", "E4M3", "E3M4"):
        for quantize_first_last in (False, True):
            recipe = standard_recipe(
                fmt,
                skip_first_operator=not quantize_first_last,
                skip_last_operator=not quantize_first_last,
                name=f"{fmt}-{'all' if quantize_first_last else 'skip'}",
            )
            passed, losses = [], []
            for task in CNN_TASKS:
                bundle = build_task(task)
                record = evaluate_recipe_on_task(bundle, recipe)
                passed.append(record.passed)
                losses.append(record.relative_loss)
            rows.append(
                {
                    "Format": fmt,
                    "first/last quantized": "yes" if quantize_first_last else "no",
                    "Pass rate": float(np.mean(passed)),
                    "mean loss %": float(np.mean(losses)) * 100,
                }
            )
    return rows


def test_first_last_operator_discussion(benchmark):
    rows = benchmark.pedantic(first_last_rows, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Section 4.3.1: quantizing first & last CNN operators"))

    def loss(fmt, quantized):
        return next(
            r["mean loss %"]
            for r in rows
            if r["Format"] == fmt and r["first/last quantized"] == quantized
        )

    # quantizing the first/last operators should not *help* accuracy for the narrow-mantissa formats
    assert loss("E5M2", "yes") >= loss("E5M2", "no") - 0.5
