"""End-to-end integration tests: the paper's qualitative findings at miniature scale.

These tests exercise the whole stack (zoo training -> quantization workflow ->
evaluation) and assert the *directional* results the paper reports, not exact
numbers: FP8 keeps models within the accuracy target, E5M2 is the weakest FP8
format, INT8 struggles with outlier-heavy NLP activations, and SmoothQuant /
mixed formats / BatchNorm calibration recover accuracy.
"""

import numpy as np
import pytest

from repro.evaluation import evaluate_recipe_on_task
from repro.fp8 import E3M4, E4M3, E5M2
from repro.fp8.int8 import int8_quantize_dequantize
from repro.fp8.quantize import quantize_dequantize
from repro.models.registry import build_task
from repro.quantization import (
    Approach,
    extended_recipe,
    int8_recipe,
    quantize_model,
    standard_recipe,
)


class TestFigure1MSE:
    """Quantization error on the outlier-contaminated Gaussian from Figure 1."""

    @pytest.fixture(scope="class")
    def tensor(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0.0, np.sqrt(0.5), 100_000)
        n_outliers = len(x) // 100
        x[:n_outliers] = rng.uniform(-6.0, 6.0, n_outliers)
        return x

    def test_e3m4_beats_int8(self, tensor):
        e3m4 = np.mean((quantize_dequantize(tensor, E3M4) - tensor) ** 2)
        int8 = np.mean((int8_quantize_dequantize(tensor) - tensor) ** 2)
        assert e3m4 < int8

    def test_e5m2_is_worst_fp8(self, tensor):
        errors = {
            fmt.name: float(np.mean((quantize_dequantize(tensor, fmt) - tensor) ** 2))
            for fmt in (E5M2, E4M3, E3M4)
        }
        assert errors["E5M2"] == max(errors.values())


class TestNLPTask:
    def test_fp8_meets_accuracy_target_on_nlp(self, bert_bundle):
        for fmt in ("E4M3", "E3M4"):
            record = evaluate_recipe_on_task(bert_bundle, standard_recipe(fmt))
            assert record.relative_loss < 0.02, fmt

    def test_outlier_lm_int8_degrades_more_than_e4m3(self):
        bundle = build_task("bloom-176b-lambada")
        e4m3 = evaluate_recipe_on_task(bundle, standard_recipe("E4M3"))
        int8 = evaluate_recipe_on_task(bundle, int8_recipe(approach=Approach.DYNAMIC))
        assert e4m3.relative_loss < int8.relative_loss
        assert e4m3.passed

    def test_smoothquant_helps_int8_on_outlier_model(self):
        bundle = build_task("bloom-176b-lambada")
        plain = evaluate_recipe_on_task(bundle, int8_recipe(approach=Approach.DYNAMIC, name="int8"))
        smooth = evaluate_recipe_on_task(
            bundle, int8_recipe(approach=Approach.DYNAMIC, smoothquant=True, name="int8-sq")
        )
        assert smooth.relative_loss <= plain.relative_loss + 1e-6

    def test_extended_scheme_quantizes_layernorm_without_collapse(self, bert_bundle):
        record = evaluate_recipe_on_task(
            bert_bundle, extended_recipe("E4M3", batchnorm_calibration=False)
        )
        assert record.relative_loss < 0.05
        standard = evaluate_recipe_on_task(bert_bundle, standard_recipe("E4M3"))
        assert record.num_quantized_ops > standard.num_quantized_ops


class TestCVTask:
    def test_fp8_close_to_fp32_on_cnn(self, cnn_bundle):
        for fmt in ("E4M3", "E3M4"):
            record = evaluate_recipe_on_task(cnn_bundle, standard_recipe(fmt))
            assert record.relative_loss < 0.03, fmt

    def test_e5m2_is_weakest_format_on_cnn(self, cnn_bundle):
        losses = {
            fmt: evaluate_recipe_on_task(cnn_bundle, standard_recipe(fmt)).relative_loss
            for fmt in ("E5M2", "E4M3", "E3M4")
        }
        assert losses["E5M2"] >= max(losses["E4M3"], losses["E3M4"]) - 1e-6

    def test_first_last_operators_are_preserved_in_fp32(self, cnn_bundle):
        result = quantize_model(
            cnn_bundle.model,
            standard_recipe("E4M3"),
            calibration_data=cnn_bundle.calib_data,
            prepare_inputs=cnn_bundle.prepare_inputs,
            is_convolutional=True,
        )
        assert len(result.skipped_modules) >= 2

    def test_quantizing_first_last_is_riskier(self, cnn_bundle):
        """Section 4.3.1: enabling the first/last operators costs accuracy for small formats."""
        keep = evaluate_recipe_on_task(cnn_bundle, standard_recipe("E5M2", name="keep"))
        quantize_all = evaluate_recipe_on_task(
            cnn_bundle,
            standard_recipe(
                "E5M2", skip_first_operator=False, skip_last_operator=False, name="quant-all"
            ),
        )
        assert quantize_all.relative_loss >= keep.relative_loss - 0.01


class TestDeterminism:
    def test_quantization_is_deterministic(self, bert_bundle):
        a = evaluate_recipe_on_task(bert_bundle, standard_recipe("E4M3"))
        b = evaluate_recipe_on_task(bert_bundle, standard_recipe("E4M3"))
        assert a.quantized_metric == pytest.approx(b.quantized_metric)

    def test_original_model_metric_unchanged_after_sweeps(self, bert_bundle):
        before = bert_bundle.evaluate()
        evaluate_recipe_on_task(bert_bundle, standard_recipe("E3M4"))
        evaluate_recipe_on_task(bert_bundle, int8_recipe())
        assert bert_bundle.evaluate() == pytest.approx(before)
