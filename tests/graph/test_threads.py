"""Concurrent plan dispatch: one shared model, many threads, zero cross-talk.

Replay buffers are per-thread and plan lookup holds the cache lock only for
the dictionary access, so concurrent forwards on a shared model must be both
safe (no torn buffers) and bit-exact (every thread sees the eager answer).
"""

import threading

import numpy as np

from repro import nn
from repro.autograd.tensor import Tensor, no_grad
from repro.graph import install_plan_cache, remove_plan_cache
from repro.nn.module import suspend_plan_dispatch

WIDTH = 24
THREADS = 8
ROUNDS = 30


def build_model():
    rng = np.random.default_rng(17)
    return nn.Sequential(
        nn.Linear(WIDTH, WIDTH, rng=rng),
        nn.ReLU(),
        nn.Linear(WIDTH, WIDTH, rng=rng),
        nn.Softmax(axis=-1),
    )


def test_concurrent_replay_is_bit_exact():
    model = build_model()
    model.eval()
    rng = np.random.default_rng(5)
    # distinct per-thread inputs, all the same shape -> all threads share ONE
    # plan and race on its lookup; buffers must still be isolated per thread
    inputs = [rng.normal(0.0, 1.0, (3, WIDTH)).astype(np.float32) for _ in range(THREADS)]
    with no_grad():
        expected = [model(Tensor(x)).data.copy() for x in inputs]

    cache = install_plan_cache(model)
    barrier = threading.Barrier(THREADS)
    failures = []

    def worker(index):
        x = Tensor(inputs[index])
        barrier.wait()
        try:
            for _ in range(ROUNDS):
                with no_grad():
                    out = model(x)
                if not np.array_equal(out.data, expected[index]):
                    failures.append(index)
                    return
        except Exception as exc:  # noqa: BLE001 - surfaced via the failures list
            failures.append((index, repr(exc)))

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    stats = cache.stats()
    remove_plan_cache(model)
    assert not failures, failures
    assert stats["plans"] == 1  # everyone converged on the single shared plan
    assert stats["hits"] + stats["misses"] == THREADS * ROUNDS


def test_concurrent_distinct_shapes_compile_independent_plans():
    model = build_model()
    model.eval()
    rng = np.random.default_rng(9)
    shapes = [(1, WIDTH), (2, WIDTH), (3, WIDTH), (4, WIDTH)]
    inputs = [rng.normal(0.0, 1.0, shape).astype(np.float32) for shape in shapes]
    with no_grad():
        expected = [model(Tensor(x)).data.copy() for x in inputs]

    cache = install_plan_cache(model)
    barrier = threading.Barrier(len(shapes))
    failures = []

    def worker(index):
        x = Tensor(inputs[index])
        barrier.wait()
        for _ in range(ROUNDS):
            with no_grad():
                out = model(x)
            if not np.array_equal(out.data, expected[index]):
                failures.append(index)
                return

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(len(shapes))]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    stats = cache.stats()
    remove_plan_cache(model)
    assert not failures, failures
    assert stats["plans"] == len(shapes)
    assert stats["compiles"] == len(shapes)


def test_suspended_thread_coexists_with_replaying_threads():
    model = build_model()
    model.eval()
    rng = np.random.default_rng(13)
    x_np = rng.normal(0.0, 1.0, (2, WIDTH)).astype(np.float32)
    with no_grad():
        expected = model(Tensor(x_np)).data.copy()

    cache = install_plan_cache(model)
    barrier = threading.Barrier(2)
    failures = []

    def replayer():
        barrier.wait()
        for _ in range(ROUNDS):
            with no_grad():
                out = model(Tensor(x_np))
            if not np.array_equal(out.data, expected):
                failures.append("replayer")
                return

    def eager_runner():
        barrier.wait()
        for _ in range(ROUNDS):
            with no_grad(), suspend_plan_dispatch():
                out = model(Tensor(x_np))
            if not np.array_equal(out.data, expected):
                failures.append("eager")
                return

    threads = [threading.Thread(target=replayer), threading.Thread(target=eager_runner)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    remove_plan_cache(model)
    assert not failures, failures
    assert cache.stats()["plans"] <= 1
