"""ServingEngine x plan cache: worker forwards replay compiled plans."""

import numpy as np
import pytest

import repro.nn as nn
from repro.autograd.tensor import Tensor, no_grad
from repro.graph import plan_cache_of
from repro.serving import ServingEngine


def _mlp(seed=0):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Linear(16, 32, rng=rng),
        nn.ReLU(),
        nn.Linear(32, 8, rng=rng),
    ).eval()


def _samples(count, shape=(16,), seed=1):
    rng = np.random.default_rng(seed)
    return [rng.normal(0, 1, shape).astype(np.float32) for _ in range(count)]


class TestEnginePlanCache:
    def test_auto_installs_and_outputs_match_eager(self):
        model = _mlp()
        samples = _samples(12)
        with no_grad():
            expected = [model(Tensor(s[None, :])).data[0] for s in samples]
        with ServingEngine(model, max_batch_size=1, max_wait_ms=1) as engine:
            assert plan_cache_of(model) is not None
            outputs = [engine.serve(s, timeout=30) for s in samples]
            stats = engine.stats
        for got, want in zip(outputs, expected):
            np.testing.assert_array_equal(np.asarray(got), want)
        plan_stats = stats["plan_cache"]
        assert plan_stats["plans"] >= 1
        assert plan_stats["compiles"] >= 1
        assert plan_stats["hits"] >= 1

    def test_disabled_means_no_cache(self):
        model = _mlp()
        with ServingEngine(model, max_wait_ms=1, plan_cache=False) as engine:
            assert plan_cache_of(model) is None
            engine.serve(_samples(1)[0], timeout=30)
            assert "plan_cache" not in engine.stats

    def test_invalid_plan_cache_value_rejected(self):
        with pytest.raises(ValueError):
            ServingEngine(_mlp(), plan_cache="always")

    def test_multi_worker_shared_model_single_cache(self):
        model = _mlp()
        samples = _samples(20)
        with no_grad():
            expected = [model(Tensor(s[None, :])).data[0] for s in samples]
        with ServingEngine(model, max_batch_size=4, max_wait_ms=10, workers=3) as engine:
            outputs = [engine.serve(s, timeout=30) for s in samples]
            stats = engine.stats
        for got, want in zip(outputs, expected):
            np.testing.assert_array_equal(np.asarray(got), want)
        # one shared model -> one cache, aggregated once
        assert stats["plan_cache"]["state_invalidations"] >= 0

    def test_replica_models_each_get_a_cache(self):
        replicas = [_mlp(seed=7), _mlp(seed=7)]
        samples = _samples(10)
        with ServingEngine(replicas, max_batch_size=2, max_wait_ms=10) as engine:
            caches = [plan_cache_of(m) for m in replicas]
            assert all(c is not None for c in caches)
            assert caches[0] is not caches[1]
            outputs = [engine.serve(s, timeout=30) for s in samples]
        with no_grad():
            expected = [replicas[0](Tensor(s[None, :])).data[0] for s in samples]
        for got, want in zip(outputs, expected):
            np.testing.assert_array_equal(np.asarray(got), want)
