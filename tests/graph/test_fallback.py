"""Dispatch bypass and eager fallback: the cache must know when to stand down.

Shapes it has not compiled yet, kwargs, training mode, gradients and
untraceable models all route to the eager path — silently correct, never
silently wrong.
"""

import numpy as np

from repro import nn
from repro.autograd.tensor import Tensor, no_grad
from repro.graph import install_plan_cache, plan_cache_of, remove_plan_cache, trace
from repro.graph.ir import TraceAborted


def mlp(width=10, seed=1):
    rng = np.random.default_rng(seed)
    return nn.Sequential(nn.Linear(width, width, rng=rng), nn.ReLU())


def batch(shape, seed=2):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(0.0, 1.0, shape).astype(np.float32))


class TestShapeFallback:
    def test_new_shape_compiles_a_second_plan(self):
        model = mlp()
        model.eval()
        cache = install_plan_cache(model)
        with no_grad():
            model(batch((2, 10)))
            model(batch((2, 10)))
            model(batch((5, 10)))  # unseen shape: miss + fresh compile
            out = model(batch((5, 10)))
        stats = cache.stats()
        assert stats["plans"] == 2
        assert stats["compiles"] == 2
        assert stats["misses"] == 2
        assert stats["hits"] == 2
        with no_grad():
            from repro.nn.module import suspend_plan_dispatch

            with suspend_plan_dispatch():
                eager = model(batch((5, 10)))
        remove_plan_cache(model)
        np.testing.assert_array_equal(eager.data, out.data)

    def test_lru_eviction_bounds_plan_count(self):
        model = mlp()
        model.eval()
        cache = install_plan_cache(model, max_plans=2)
        with no_grad():
            for rows in (1, 2, 3, 4):
                model(batch((rows, 10)))
        stats = cache.stats()
        remove_plan_cache(model)
        assert stats["plans"] <= 2
        assert stats["compiles"] == 4


class TestDispatchBypass:
    def test_kwargs_bypass_dispatch(self):
        class KwModel(nn.Module):
            def __init__(self):
                super().__init__()
                self.lin = nn.Linear(10, 10, rng=np.random.default_rng(0))

            def forward(self, x, scale=1.0):
                return self.lin(x) * scale

        model = KwModel()
        model.eval()
        cache = install_plan_cache(model)
        with no_grad():
            model(batch((2, 10)), scale=2.0)
            model(batch((2, 10)), scale=2.0)
        stats = cache.stats()
        remove_plan_cache(model)
        assert stats["plans"] == 0
        assert stats["bypass"] == 2

    def test_training_mode_bypasses_dispatch(self):
        model = mlp()
        model.train()
        cache = install_plan_cache(model)
        with no_grad():
            model(batch((2, 10)))
        stats = cache.stats()
        remove_plan_cache(model)
        assert stats["plans"] == 0
        assert stats["bypass"] == 1

    def test_grad_enabled_bypasses_dispatch(self):
        model = mlp()
        model.eval()
        cache = install_plan_cache(model)
        model(batch((2, 10)))  # gradients enabled by default outside no_grad
        stats = cache.stats()
        remove_plan_cache(model)
        assert stats["plans"] == 0
        assert stats["bypass"] == 1


class TestUntraceableModels:
    def test_data_dependent_control_flow_pins_eager(self):
        class Branchy(nn.Module):
            def __init__(self):
                super().__init__()
                self.lin = nn.Linear(10, 10, rng=np.random.default_rng(0))

            def forward(self, x):
                y = self.lin(x)
                # value-dependent branch into untraced Tensor arithmetic:
                # either path produces a value the tracer never saw a module
                # emit, so tracing aborts and the key is pinned eager
                if float(y.data.sum()) > 0:
                    return y * 1.0
                return y * 2.0

        model = Branchy()
        model.eval()
        cache = install_plan_cache(model)
        x = batch((2, 10))
        with no_grad():
            out1 = model(x)
            out2 = model(x)
        stats = cache.stats()
        assert stats["plans"] == 0
        assert stats["trace_aborts"] == 1
        assert stats["eager_hits"] >= 1  # the EAGER sentinel short-circuits retracing
        from repro.nn.module import suspend_plan_dispatch

        with no_grad(), suspend_plan_dispatch():
            eager = model(x)
        remove_plan_cache(model)
        np.testing.assert_array_equal(eager.data, out1.data)
        np.testing.assert_array_equal(eager.data, out2.data)

    def test_trace_raises_on_untraceable_leaf(self):
        class Opaque(nn.Module):
            def forward(self, x):
                return Tensor(np.tanh(x.data))

        class Wrapper(nn.Module):
            def __init__(self):
                super().__init__()
                self.op = Opaque()

            def forward(self, x):
                return self.op(x)

        model = Wrapper()
        model.eval()
        x = batch((2, 10))
        with no_grad():
            try:
                trace(model, (x,), {})
            except TraceAborted:
                pass
            else:
                raise AssertionError("expected TraceAborted for an opaque leaf")


def test_install_is_idempotent():
    model = mlp()
    model.eval()
    cache = install_plan_cache(model)
    assert install_plan_cache(model) is cache
    assert plan_cache_of(model) is cache
    remove_plan_cache(model)
    assert plan_cache_of(model) is None
