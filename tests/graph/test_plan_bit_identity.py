"""Plan replay == eager, bit for bit (the compiled path's core contract).

Eager execution is the oracle: for every model the plan cache can compile,
replaying the fused plan must produce byte-identical outputs.  Hypothesis
drives the inputs; the configuration grid covers FP8 formats x weight
granularities x serving modes on both FP8 kernel dispatches.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.autograd.tensor import Tensor, no_grad
from repro.fp8.kernels import use_kernel
from repro.graph import install_plan_cache, plan_cache_of, remove_plan_cache
from repro.nn.module import suspend_plan_dispatch
from repro.quantization import quantize_model, set_serving_mode, standard_recipe
from repro.quantization.qconfig import Approach, Granularity

WIDTH = 16


def small_mlp(seed=3):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Linear(WIDTH, 2 * WIDTH, rng=rng),
        nn.ReLU(),
        nn.Linear(2 * WIDTH, WIDTH, rng=rng),
        nn.GELU(),
        nn.Linear(WIDTH, 8, rng=rng),
    )


def batches():
    return st.integers(min_value=1, max_value=4).flatmap(
        lambda b: st.lists(
            st.lists(
                st.floats(
                    min_value=-8.0, max_value=8.0, width=32, allow_nan=False, allow_infinity=False
                ),
                min_size=WIDTH,
                max_size=WIDTH,
            ),
            min_size=b,
            max_size=b,
        )
    )


def assert_replay_matches_eager(model, batch):
    x = Tensor(np.asarray(batch, dtype=np.float32))
    with no_grad():
        with suspend_plan_dispatch():
            eager = model(x)
        first = model(x)  # compile on first sight of the shape, replay after
        replay = model(x)
    np.testing.assert_array_equal(eager.data, first.data)
    np.testing.assert_array_equal(eager.data, replay.data)


class TestFloatModel:
    @given(batch=batches())
    @settings(max_examples=25, deadline=None)
    def test_replay_bit_identical(self, batch):
        model = small_mlp()
        model.eval()
        install_plan_cache(model)
        try:
            assert_replay_matches_eager(model, batch)
        finally:
            remove_plan_cache(model)

    def test_plans_compile_not_fall_back(self):
        model = small_mlp()
        model.eval()
        cache = install_plan_cache(model)
        x = Tensor(np.zeros((2, WIDTH), dtype=np.float32))
        with no_grad():
            model(x)
            model(x)
        stats = cache.stats()
        assert stats["plans"] == 1
        assert stats["compiles"] == 1
        assert stats["hits"] >= 1
        assert stats["trace_aborts"] == 0
        assert stats["verify_failures"] == 0


@pytest.mark.parametrize("kernel", ["fast", "reference", "native"])
@pytest.mark.parametrize("mode", ["cached", "streaming"])
@pytest.mark.parametrize("fmt", ["E4M3", "E5M2"])
@pytest.mark.parametrize("granularity", [Granularity.PER_CHANNEL, Granularity.PER_TENSOR])
class TestQuantizedModel:
    def _quantized(self, fmt, granularity):
        recipe = standard_recipe(
            fmt,
            approach=Approach.DYNAMIC,
            weight_granularity=granularity,
            skip_first_operator=False,
            skip_last_operator=False,
        )
        qmodel = quantize_model(small_mlp(), recipe).model
        qmodel.eval()
        return qmodel

    @given(batch=batches())
    @settings(max_examples=8, deadline=None)
    def test_replay_bit_identical(self, kernel, mode, fmt, granularity, batch):
        with use_kernel(kernel):
            qmodel = self._quantized(fmt, granularity)
            set_serving_mode(qmodel, mode)
            install_plan_cache(qmodel)
            try:
                assert_replay_matches_eager(qmodel, batch)
                assert plan_cache_of(qmodel).stats()["plans"] >= 1
            finally:
                remove_plan_cache(qmodel)

    def test_quantized_forward_compiles(self, kernel, mode, fmt, granularity):
        with use_kernel(kernel):
            qmodel = self._quantized(fmt, granularity)
            set_serving_mode(qmodel, mode)
            cache = install_plan_cache(qmodel)
            x = Tensor(np.ones((2, WIDTH), dtype=np.float32))
            with no_grad():
                qmodel(x)
                qmodel(x)
            stats = cache.stats()
            remove_plan_cache(qmodel)
            assert stats["plans"] == 1, stats
            assert stats["hits"] >= 1, stats
