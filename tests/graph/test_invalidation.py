"""Plan-cache invalidation: stale plans must never replay.

Any mutation that changes what a forward computes — loading weights,
flipping the serving mode, re-running quantizer observation, registering a
forward hook — must drop the affected plans and fall back to (or recompile
from) the bit-exact eager path.
"""

import numpy as np

from repro import nn
from repro.autograd.tensor import Tensor, no_grad
from repro.graph import install_plan_cache, remove_plan_cache
from repro.nn.module import suspend_plan_dispatch
from repro.quantization import quantize_model, set_serving_mode, standard_recipe
from repro.quantization.qconfig import Approach


def mlp(seed=0, width=12):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Linear(width, width, rng=rng),
        nn.ReLU(),
        nn.Linear(width, width, rng=rng),
    )


def probe(width=12, batch=2):
    rng = np.random.default_rng(42)
    return Tensor(rng.normal(0.0, 1.0, (batch, width)).astype(np.float32))


def warmed_cache(model, x):
    cache = install_plan_cache(model)
    with no_grad():
        model(x)
        model(x)
    assert cache.stats()["plans"] == 1
    return cache


class TestStateInvalidation:
    def test_load_state_dict_drops_plans_and_recompiles(self):
        model = mlp()
        model.eval()
        donor = mlp(seed=99)
        x = probe()
        cache = warmed_cache(model, x)

        model.load_state_dict(donor.state_dict())
        with no_grad():
            out = model(x)
            replay = model(x)
            with suspend_plan_dispatch():
                eager = model(x)
        stats = cache.stats()
        remove_plan_cache(model)
        assert stats["state_invalidations"] >= 1
        assert stats["compiles"] == 2  # old plan dropped, new one compiled
        np.testing.assert_array_equal(eager.data, out.data)
        np.testing.assert_array_equal(eager.data, replay.data)
        # the recompiled plan reflects the *new* weights
        with no_grad():
            donor_out = donor(x)
        np.testing.assert_array_equal(donor_out.data, out.data)

    def test_set_serving_mode_drops_plans(self):
        recipe = standard_recipe(
            "E4M3",
            approach=Approach.DYNAMIC,
            skip_first_operator=False,
            skip_last_operator=False,
        )
        qmodel = quantize_model(mlp(), recipe).model
        qmodel.eval()
        set_serving_mode(qmodel, "cached")
        x = probe()
        cache = warmed_cache(qmodel, x)

        set_serving_mode(qmodel, "streaming")
        with no_grad():
            out = qmodel(x)
            replay = qmodel(x)
            with suspend_plan_dispatch():
                eager = qmodel(x)
        stats = cache.stats()
        remove_plan_cache(qmodel)
        assert stats["state_invalidations"] >= 1
        assert stats["compiles"] == 2
        np.testing.assert_array_equal(eager.data, out.data)
        np.testing.assert_array_equal(eager.data, replay.data)

    def test_requantize_observation_drops_plans(self):
        recipe = standard_recipe(
            "E4M3",
            approach=Approach.DYNAMIC,
            skip_first_operator=False,
            skip_last_operator=False,
        )
        qmodel = quantize_model(mlp(), recipe).model
        qmodel.eval()
        x = probe()
        cache = warmed_cache(qmodel, x)

        # re-observe: the quantizer lifecycle transition must invalidate
        from repro.quantization.qmodules import QuantizedModule

        wrappers = [m for _, m in qmodel.named_modules() if isinstance(m, QuantizedModule)]
        assert wrappers
        for wrapper in wrappers:
            wrapper.start_observing()
        with no_grad(), suspend_plan_dispatch():
            qmodel(x)
        for wrapper in wrappers:
            wrapper.stop_observing()

        with no_grad():
            out = qmodel(x)
            with suspend_plan_dispatch():
                eager = qmodel(x)
        stats = cache.stats()
        remove_plan_cache(qmodel)
        assert stats["state_invalidations"] >= 1
        np.testing.assert_array_equal(eager.data, out.data)


class TestHookInvalidation:
    def test_register_hook_forces_eager_and_remove_restores_plans(self):
        model = mlp()
        model.eval()
        x = probe()
        cache = warmed_cache(model, x)

        seen = []
        handle = model[0].register_forward_hook(lambda m, inp, out: seen.append(1))
        with no_grad():
            out_hooked = model(x)
            model(x)
        stats = cache.stats()
        assert stats["hook_invalidations"] >= 1
        assert stats["plans"] == 0  # the plan traced through the hooked module
        assert len(seen) == 2  # the hook genuinely ran (eager path)
        with no_grad(), suspend_plan_dispatch():
            eager = model(x)
        np.testing.assert_array_equal(eager.data, out_hooked.data)

        handle.remove()
        seen.clear()
        with no_grad():
            model(x)
            model(x)
        stats = cache.stats()
        remove_plan_cache(model)
        assert stats["plans"] == 1  # traceable again after hook removal
        assert seen == []

    def test_hook_on_unrelated_model_keeps_plans(self):
        model = mlp()
        model.eval()
        other = mlp(seed=5)
        x = probe()
        cache = warmed_cache(model, x)
        hits_before = cache.stats()["hits"]

        handle = other[0].register_forward_hook(lambda m, inp, out: None)
        try:
            with no_grad():
                model(x)
            stats = cache.stats()
            # the epoch bump is observed, but this model's plan survives it
            assert stats["plans"] == 1
            assert stats["hits"] == hits_before + 1
        finally:
            handle.remove()
            remove_plan_cache(model)
