"""Incremental decode: KV cache, forward_step, and cached generation parity.

The KV-cache decode path's core contract is that it is an *optimisation*, not
an approximation: greedy/beam generation through the float32 cache must
reproduce the full-recompute loop token for token — on the float model and on
a statically-quantized model under every FP8 kernel tier.  The FP8 cache
option trades that exactness for ~4x smaller decode state, which the quality
tests bound.
"""

import numpy as np
import pytest

import repro.nn as nn
from repro.autograd.tensor import Tensor
from repro.fp8.kernels import use_kernel
from repro.models.transformer import DecodeState, GPTStyleLM, coerce_prompt
from repro.quantization import Approach, quantize_model, standard_recipe


def small_lm(seed=0, max_seq_len=48, **kwargs):
    model = GPTStyleLM(
        vocab_size=32,
        max_seq_len=max_seq_len,
        embed_dim=32,
        num_heads=4,
        num_layers=2,
        rng=seed,
        **kwargs,
    )
    return model.eval()


class TestKVCache:
    def test_append_and_dense_ragged(self):
        cache = nn.KVCache(rows=3, num_heads=2, head_dim=4, capacity=8)
        k = np.random.default_rng(0).standard_normal((2, 2, 5, 4)).astype(np.float32)
        v = np.random.default_rng(1).standard_normal((2, 2, 5, 4)).astype(np.float32)
        starts = cache.append(k, v, rows=[0, 2], new_lens=[5, 3])
        assert starts.tolist() == [0, 0]
        assert cache.lengths.tolist() == [5, 0, 3]
        dense_k, dense_v, lens = cache.dense(rows=[0, 2])
        assert dense_k.shape == (2, 2, 5, 4)
        assert lens.tolist() == [5, 3]
        np.testing.assert_array_equal(dense_k[0], k[0])
        np.testing.assert_array_equal(dense_v[1, :, :3], v[1, :, :3])

    def test_append_overflow_raises(self):
        cache = nn.KVCache(rows=1, num_heads=1, head_dim=2, capacity=4)
        block = np.zeros((1, 1, 3, 2), dtype=np.float32)
        cache.append(block, block)
        with pytest.raises(RuntimeError, match="overflow"):
            cache.append(block, block)

    def test_permute_and_copy_rows(self):
        cache = nn.KVCache(rows=3, num_heads=1, head_dim=2, capacity=4)
        k = np.arange(3 * 2 * 2, dtype=np.float32).reshape(3, 1, 2, 2)
        cache.append(k, k)
        cache.permute_rows([0, 1, 2], [2, 2, 0])
        dense_k, _, _ = cache.dense()
        np.testing.assert_array_equal(dense_k[0], k[2])
        np.testing.assert_array_equal(dense_k[1], k[2])
        np.testing.assert_array_equal(dense_k[2], k[0])
        cache.copy_rows([0], [2])
        dense_k, _, _ = cache.dense()
        np.testing.assert_array_equal(dense_k[2], k[2])

    def test_reset_rows_reuses_storage(self):
        cache = nn.KVCache(rows=2, num_heads=1, head_dim=2, capacity=4)
        block = np.ones((2, 1, 4, 2), dtype=np.float32)
        cache.append(block, block)
        cache.reset_rows([1])
        assert cache.lengths.tolist() == [4, 0]
        cache.append(2 * block[:1], 2 * block[:1], rows=[1])
        dense_k, _, lens = cache.dense(rows=[1])
        assert lens.tolist() == [4]
        np.testing.assert_array_equal(dense_k, 2 * block[:1])

    def test_fp8_storage_roundtrip_and_footprint(self):
        rng = np.random.default_rng(2)
        k = rng.standard_normal((1, 2, 6, 8)).astype(np.float32)
        v = rng.standard_normal((1, 2, 6, 8)).astype(np.float32)
        float_cache = nn.KVCache(rows=1, num_heads=2, head_dim=8, capacity=16)
        fp8_cache = nn.KVCache(rows=1, num_heads=2, head_dim=8, capacity=16, storage="E4M3")
        float_cache.append(k, v)
        fp8_cache.append(k, v)
        dense_k, dense_v, lens = fp8_cache.dense()
        assert lens.tolist() == [6]
        assert np.all(np.isfinite(dense_k)) and np.all(np.isfinite(dense_v))
        # E4M3 has ~2^-3 relative step; channelwise scaling keeps error small
        assert np.max(np.abs(dense_k - k)) < 0.2 * np.max(np.abs(k))
        assert fp8_cache.nbytes < float_cache.nbytes

    def test_stale_fp8_storage_decodes_finite(self):
        cache = nn.KVCache(rows=2, num_heads=1, head_dim=4, capacity=8, storage="E4M3")
        block = np.ones((1, 1, 5, 4), dtype=np.float32)
        cache.append(block, block, rows=[0])
        # row 1 never wrote anything: its storage is stale but must still
        # decode to finite values (the mask relies on 0 * finite == 0)
        dense_k, dense_v, _ = cache.dense()
        assert np.all(np.isfinite(dense_k)) and np.all(np.isfinite(dense_v))


class TestCoercePrompt:
    def test_accepts_tensor_and_2d_single_row(self):
        np.testing.assert_array_equal(coerce_prompt(Tensor(np.array([1, 2, 3])), 8), [1, 2, 3])
        np.testing.assert_array_equal(coerce_prompt(np.array([[4, 5]]), 8), [4, 5])
        np.testing.assert_array_equal(coerce_prompt([6, 7], 8), [6, 7])

    def test_rejects_batched_empty_and_too_long(self):
        with pytest.raises(ValueError, match="1D"):
            coerce_prompt(np.zeros((2, 3), dtype=np.int64), 8)
        with pytest.raises(ValueError, match="at least one token"):
            coerce_prompt(np.array([], dtype=np.int64), 8)
        with pytest.raises(ValueError, match="exceeds max_seq_len"):
            coerce_prompt(np.arange(9), 8)


class TestForwardStep:
    def test_prefill_matches_full_forward(self):
        model = small_lm()
        tokens = np.array([[1, 2, 3, 4, 5]], dtype=np.int64)
        full = model.forward(tokens).data
        state = model.new_decode_state(1)
        step = model.forward_step(tokens, state).data
        np.testing.assert_allclose(step, full, rtol=1e-5, atol=1e-6)
        assert state.lengths.tolist() == [5]

    def test_incremental_matches_full_last_position(self):
        model = small_lm()
        seq = np.array([3, 1, 4, 1, 5, 9, 2, 6], dtype=np.int64)
        state = model.new_decode_state(1)
        model.forward_step(seq[None, :4], state)
        for t in range(4, seq.size):
            logits = model.forward_step(seq[None, t : t + 1], state).data[0, -1]
            full = model.forward(seq[None, : t + 1]).data[0, -1]
            np.testing.assert_allclose(logits, full, rtol=1e-4, atol=1e-5)

    def test_step_past_max_seq_len_raises(self):
        model = small_lm(max_seq_len=4)
        state = model.new_decode_state(1)
        model.forward_step(np.array([[1, 2, 3, 4]], dtype=np.int64), state)
        with pytest.raises(RuntimeError, match="max_seq_len"):
            model.forward_step(np.array([[5]], dtype=np.int64), state)

    def test_decode_state_accounting(self):
        model = small_lm()
        state = model.new_decode_state(4, storage="E4M3")
        assert isinstance(state, DecodeState)
        assert state.rows == 4
        assert state.nbytes == 4 * state.row_nbytes
        fp32_state = model.new_decode_state(4)
        assert state.nbytes < fp32_state.nbytes


class TestCachedGenerationParity:
    def test_greedy_cached_matches_full_recompute(self):
        model = small_lm()
        prompt = np.array([1, 2, 3], dtype=np.int64)
        cached = model.generate(prompt, max_new_tokens=16)
        full = model.generate(prompt, max_new_tokens=16, use_cache=False)
        np.testing.assert_array_equal(cached, full)

    def test_greedy_equals_beam_one(self):
        model = small_lm(seed=5)
        prompt = np.array([4, 9, 2], dtype=np.int64)
        greedy = model.generate(prompt, max_new_tokens=12, beam_size=1)
        beam1_cached = model.generate(prompt, max_new_tokens=12, beam_size=1, use_cache=True)
        beam1_full = model.generate(prompt, max_new_tokens=12, beam_size=1, use_cache=False)
        np.testing.assert_array_equal(greedy, beam1_cached)
        np.testing.assert_array_equal(greedy, beam1_full)

    def test_beam_cached_matches_full_recompute(self):
        model = small_lm(seed=7)
        prompt = np.array([6, 7, 8], dtype=np.int64)
        for beam_size in (2, 3):
            cached = model.generate(prompt, max_new_tokens=10, beam_size=beam_size)
            full = model.generate(prompt, max_new_tokens=10, beam_size=beam_size, use_cache=False)
            np.testing.assert_array_equal(cached, full)

    @pytest.mark.parametrize("kernel", ["fast", "reference", "native"])
    def test_greedy_parity_on_quantized_model_per_kernel(self, kernel):
        rng = np.random.default_rng(11)
        calib = rng.integers(0, 32, size=(8, 12)).astype(np.int64)
        recipe = standard_recipe("E4M3", approach=Approach.STATIC)
        with use_kernel(kernel):
            qmodel = quantize_model(
                small_lm(seed=3),
                recipe,
                calibration_data=[calib],
                prepare_inputs=lambda x: x,
            ).model.eval()
            prompt = np.array([2, 4, 6], dtype=np.int64)
            cached = qmodel.generate(prompt, max_new_tokens=12)
            full = qmodel.generate(prompt, max_new_tokens=12, use_cache=False)
        np.testing.assert_array_equal(cached, full)

    def test_eos_stops_at_first_emission(self):
        model = small_lm()
        prompt = np.array([1, 2, 3], dtype=np.int64)
        reference = model.generate(prompt, max_new_tokens=12)
        continuation = reference[prompt.size :]
        eos = int(continuation[2])
        stop_at = int(np.argmax(continuation == eos))  # first occurrence
        stopped = model.generate(prompt, max_new_tokens=12, eos_token=eos)
        np.testing.assert_array_equal(stopped, reference[: prompt.size + stop_at + 1])
        full = model.generate(prompt, max_new_tokens=12, eos_token=eos, use_cache=False)
        np.testing.assert_array_equal(stopped, full)

    def test_fp8_kv_cache_quality_delta(self):
        model = small_lm(seed=9)
        prompt = np.array([5, 1, 7], dtype=np.int64)
        float_seq = model.generate(prompt, max_new_tokens=20, kv_cache="float32")
        fp8_seq = model.generate(prompt, max_new_tokens=20, kv_cache="E4M3")
        assert fp8_seq.size == float_seq.size
        assert np.all((fp8_seq >= 0) & (fp8_seq < model.vocab_size))
        # the quantized cache is an approximation: it may diverge, but E4M3's
        # channelwise error is small enough that most decode steps agree
        agreement = float(np.mean(fp8_seq == float_seq))
        assert agreement >= 0.5, (fp8_seq, float_seq)

    def test_overflow_falls_back_to_sliding_window(self):
        model = small_lm(max_seq_len=16)
        prompt = np.array([1, 2, 3, 4], dtype=np.int64)
        sequence = model.generate(prompt, max_new_tokens=20)
        assert sequence.size == prompt.size + 20
        reference = model.generate(prompt, max_new_tokens=20, use_cache=False)
        np.testing.assert_array_equal(sequence, reference)

    def test_generate_accepts_tensor_and_2d_prompts(self):
        model = small_lm()
        prompt = np.array([1, 2, 3], dtype=np.int64)
        reference = model.generate(prompt, max_new_tokens=6)
        np.testing.assert_array_equal(model.generate(Tensor(prompt), max_new_tokens=6), reference)
        np.testing.assert_array_equal(model.generate(prompt[None, :], max_new_tokens=6), reference)

    def test_generate_rejects_too_long_prompt(self):
        model = small_lm(max_seq_len=8)
        with pytest.raises(ValueError, match="exceeds max_seq_len"):
            model.generate(np.arange(9) % 8, max_new_tokens=4)
