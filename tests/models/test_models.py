"""Forward-pass and structural tests for the model zoo."""

import numpy as np
import pytest

import repro.nn as nn
from repro.autograd import Tensor, no_grad
from repro.models import (
    BertStyleClassifier,
    DLRMStyle,
    GPTStyleLM,
    SimpleMLP,
    TinyDenoiser,
    TinyDenseNet,
    TinyEfficientNet,
    TinyInception,
    TinyMobileNet,
    TinyResNet,
    TinyShuffleNet,
    TinyUNet,
    TinyVGG,
    ViTStyleClassifier,
    Wav2VecStyleClassifier,
)
from repro.models.outliers import find_outlier_channels, inject_nlp_outliers


def images(n=2, c=3, hw=16, seed=0):
    return Tensor(np.random.default_rng(seed).standard_normal((n, c, hw, hw)).astype(np.float32))


CNN_CLASSES = [
    TinyVGG,
    TinyResNet,
    TinyDenseNet,
    TinyMobileNet,
    TinyShuffleNet,
    TinyEfficientNet,
    TinyInception,
]


class TestCNNFamily:
    @pytest.mark.parametrize("cls", CNN_CLASSES)
    def test_forward_shape(self, cls):
        model = cls(num_classes=8, rng=np.random.default_rng(0))
        model.eval()
        with no_grad():
            out = model(images())
        assert out.shape == (2, 8)

    @pytest.mark.parametrize("cls", [TinyResNet, TinyDenseNet, TinyMobileNet, TinyEfficientNet])
    def test_has_batchnorm(self, cls):
        model = cls(rng=np.random.default_rng(0))
        assert any(isinstance(m, (nn.BatchNorm2d, nn.BatchNorm1d)) for m in model.modules())

    def test_vgg_without_batchnorm(self):
        model = TinyVGG(batch_norm=False, rng=np.random.default_rng(0))
        assert not any(isinstance(m, nn.BatchNorm2d) for m in model.modules())

    def test_resnet_has_residual_add_modules(self):
        model = TinyResNet(rng=np.random.default_rng(0))
        assert any(isinstance(m, nn.Add) for m in model.modules())

    def test_efficientnet_has_mul_gate(self):
        model = TinyEfficientNet(rng=np.random.default_rng(0))
        assert any(isinstance(m, nn.Mul) for m in model.modules())

    def test_unet_output_is_per_pixel(self):
        model = TinyUNet(num_classes=2, base_width=8, rng=np.random.default_rng(0))
        model.eval()
        with no_grad():
            out = model(images())
        assert out.shape == (2, 2, 16, 16)

    def test_deterministic_construction(self):
        a = TinyResNet(rng=np.random.default_rng(5))
        b = TinyResNet(rng=np.random.default_rng(5))
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.array_equal(pa.data, pb.data)


class TestTransformerFamily:
    def test_bert_classifier_shape(self):
        model = BertStyleClassifier(
            vocab_size=32, num_classes=3, embed_dim=16, num_heads=2, num_layers=1
        )
        model.eval()
        tokens = np.random.default_rng(0).integers(0, 32, size=(4, 10))
        with no_grad():
            assert model(tokens).shape == (4, 3)

    def test_funnel_pooling_halves_sequence(self):
        model = BertStyleClassifier(embed_dim=16, num_heads=2, num_layers=2, funnel_pool=True)
        model.eval()
        tokens = np.random.default_rng(0).integers(0, 64, size=(2, 16))
        with no_grad():
            hidden = model.encode(tokens)
        assert hidden.shape[1] == 4  # 16 -> 8 -> 4

    def test_longformer_local_window(self):
        model = BertStyleClassifier(embed_dim=16, num_heads=2, num_layers=1, local_window=2)
        assert model.layers[0].attention.local_window == 2

    def test_gpt_lm_logits_shape(self):
        model = GPTStyleLM(vocab_size=20, embed_dim=16, num_heads=2, num_layers=1)
        model.eval()
        tokens = np.random.default_rng(0).integers(0, 20, size=(3, 12))
        with no_grad():
            assert model(tokens).shape == (3, 12, 20)

    def test_gpt_greedy_generation_length(self):
        model = GPTStyleLM(vocab_size=12, embed_dim=16, num_heads=2, num_layers=1)
        model.eval()
        out = model.generate(np.array([1, 2, 3]), max_new_tokens=5, beam_size=1)
        assert len(out) == 8
        assert out.min() >= 0 and out.max() < 12

    def test_gpt_beam_search_returns_valid_tokens(self):
        model = GPTStyleLM(vocab_size=12, embed_dim=16, num_heads=2, num_layers=1)
        model.eval()
        out = model.generate(np.array([0, 1]), max_new_tokens=4, beam_size=3)
        assert len(out) == 6 and out.max() < 12

    def test_vit_shape(self):
        model = ViTStyleClassifier(
            num_classes=5, image_size=16, patch_size=4, embed_dim=16, num_heads=2
        )
        model.eval()
        with no_grad():
            assert model(images()).shape == (2, 5)

    def test_vit_patch_divisibility(self):
        with pytest.raises(ValueError):
            ViTStyleClassifier(image_size=10, patch_size=4)

    def test_audio_classifier_shape(self):
        model = Wav2VecStyleClassifier(n_features=8, num_classes=4, embed_dim=16, num_heads=2)
        model.eval()
        x = np.random.default_rng(0).standard_normal((3, 12, 8)).astype(np.float32)
        with no_grad():
            assert model(x).shape == (3, 4)


class TestMLPFamily:
    def test_dlrm_packed_input(self):
        model = DLRMStyle(n_dense=4, n_sparse=3, vocab_size=10, embed_dim=8, bottom_hidden=(16, 8))
        model.eval()
        packed = np.concatenate(
            [
                np.random.default_rng(0).standard_normal((5, 4)).astype(np.float32),
                np.random.default_rng(1).integers(0, 10, size=(5, 3)).astype(np.float32),
            ],
            axis=1,
        )
        with no_grad():
            assert model(packed).shape == (5,)

    def test_dlrm_tuple_input(self):
        model = DLRMStyle(n_dense=4, n_sparse=2, vocab_size=10, embed_dim=8, bottom_hidden=(16, 8))
        model.eval()
        dense = np.zeros((3, 4), dtype=np.float32)
        sparse = np.zeros((3, 2), dtype=np.int64)
        with no_grad():
            assert model((dense, sparse)).shape == (3,)

    def test_dlrm_validates_bottom_mlp(self):
        with pytest.raises(ValueError):
            DLRMStyle(embed_dim=8, bottom_hidden=(16, 4))

    def test_simple_mlp(self):
        model = SimpleMLP(12, 3)
        model.eval()
        with no_grad():
            assert model(np.zeros((2, 12), dtype=np.float32)).shape == (2, 3)

    def test_denoiser_sample(self):
        model = TinyDenoiser(width=8, rng=np.random.default_rng(0))
        model.eval()
        samples = model.sample(4, image_shape=(3, 8, 8), num_steps=2, rng=0)
        assert samples.shape == (4, 3, 8, 8)
        assert np.isfinite(samples).all()


class TestOutlierInjection:
    def _activations(self, model, tokens):
        captured = {}
        for name, module in model.named_modules():
            if name.endswith("ln2"):
                module.register_forward_hook(
                    lambda m, i, o, key=name: captured.__setitem__(key, o.data.copy())
                )
        with no_grad():
            model(tokens)
        return captured

    def test_injection_is_function_preserving(self):
        model = BertStyleClassifier(
            embed_dim=16, num_heads=2, num_layers=2, rng=np.random.default_rng(0)
        )
        model.eval()
        tokens = np.random.default_rng(1).integers(0, 64, size=(4, 10))
        with no_grad():
            before = model(tokens).data.copy()
        injected = inject_nlp_outliers(model, alpha=16.0, num_channels=2, rng=0)
        with no_grad():
            after = model(tokens).data
        assert injected  # something was injected
        assert np.allclose(before, after, atol=1e-3)

    def test_injection_creates_outlier_channels(self):
        model = BertStyleClassifier(
            embed_dim=16, num_heads=2, num_layers=1, rng=np.random.default_rng(0)
        )
        model.eval()
        tokens = np.random.default_rng(1).integers(0, 64, size=(4, 10))
        inject_nlp_outliers(model, alpha=32.0, num_channels=2, rng=0)
        acts = self._activations(model, tokens)
        assert any(len(find_outlier_channels(a)) > 0 for a in acts.values())

    def test_find_outlier_channels_on_clean_data(self):
        clean = np.random.default_rng(0).standard_normal((100, 16))
        assert len(find_outlier_channels(clean)) == 0

    def test_injection_returns_channel_map(self):
        model = BertStyleClassifier(
            embed_dim=16, num_heads=2, num_layers=3, rng=np.random.default_rng(0)
        )
        injected = inject_nlp_outliers(model, alpha=8.0, num_channels=3, rng=0)
        assert len(injected) == 3  # one entry per layer
        assert all(len(channels) == 3 for channels in injected.values())
