"""Tests for the model registry, training loop and zoo cache."""

import numpy as np
import pytest

from repro.data.synthetic import make_classification_images
from repro.models.registry import (
    REGISTRY,
    TASK_TYPE_TABLE,
    build_task,
    classification_accuracy,
    get_spec,
    list_specs,
    mean_iou,
    next_token_accuracy,
    roc_auc,
    size_class_of,
)
from repro.models.mlp import SimpleMLP
from repro.training.cache import ZooCache
from repro.training.trainer import TrainConfig, evaluate_model, train_model


class TestMetrics:
    def test_classification_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8]])
        assert classification_accuracy(logits, np.array([0, 1])) == 1.0
        assert classification_accuracy(logits, np.array([1, 0])) == 0.0

    def test_next_token_accuracy(self):
        logits = np.zeros((1, 2, 3))
        logits[0, 0, 1] = 1.0
        logits[0, 1, 2] = 1.0
        assert next_token_accuracy(logits, np.array([[1, 2]])) == 1.0

    def test_mean_iou_perfect(self):
        logits = np.zeros((1, 2, 4, 4))
        logits[0, 1, :2] = 5.0
        targets = np.zeros((1, 4, 4), dtype=np.int64)
        targets[0, :2] = 1
        assert mean_iou(logits, targets) == pytest.approx(1.0)

    def test_roc_auc_perfect_and_random(self):
        targets = np.array([0, 0, 1, 1], dtype=np.float32)
        assert roc_auc(np.array([0.1, 0.2, 0.8, 0.9]), targets) == 1.0
        assert roc_auc(np.array([0.9, 0.8, 0.2, 0.1]), targets) == 0.0

    def test_roc_auc_degenerate_labels(self):
        assert roc_auc(np.array([0.3, 0.4]), np.array([1.0, 1.0])) == 0.5


class TestRegistry:
    def test_registry_covers_domains(self):
        domains = {spec.domain for spec in REGISTRY.values()}
        assert {"cv", "nlp", "audio", "recsys", "generative"} <= domains

    def test_registry_size(self):
        assert len(REGISTRY) >= 30  # scaled-down counterpart of the 75-network study

    def test_nlp_entries_have_outliers(self):
        nlp = list_specs(domain="nlp")
        assert all(spec.outlier_alpha > 0 for spec in nlp)

    def test_cv_entries_are_convolutional_or_vit(self):
        cv = list_specs(domain="cv")
        assert any(spec.has_batchnorm for spec in cv)
        assert any(spec.family == "vit" for spec in cv)

    def test_get_spec_unknown(self):
        with pytest.raises(KeyError):
            get_spec("not-a-model")

    def test_list_specs_filters(self):
        only_lm = list_specs(task_type="language_modeling")
        assert only_lm and all(s.task_type == "language_modeling" for s in only_lm)
        suite = list_specs(in_pass_rate_suite=True)
        assert all(s.in_pass_rate_suite for s in suite)

    def test_every_spec_task_type_is_known(self):
        assert all(spec.task_type in TASK_TYPE_TABLE for spec in REGISTRY.values())

    def test_spec_describe(self):
        desc = get_spec("bert-base-mrpc").describe()
        assert desc["domain"] == "nlp" and "reference_task" in desc

    def test_size_class_thresholds(self):
        tiny = SimpleMLP(4, 2, hidden=(4,))
        assert size_class_of(tiny) == "tiny"


class TestTraining:
    def test_training_reduces_loss(self):
        dataset = make_classification_images(
            n_samples=128, image_size=8, n_classes=4, noise=0.5, rng=0
        )
        model = SimpleMLP(3 * 8 * 8, 4, hidden=(32,), rng=np.random.default_rng(0))
        loss_fn, metric_fn, prepare, _ = TASK_TYPE_TABLE["image_classification"]
        losses = train_model(
            model, dataset, loss_fn, TrainConfig(epochs=3, lr=1e-2), prepare_inputs=prepare
        )
        assert losses[-1] < losses[0]

    def test_trained_model_beats_chance(self):
        dataset = make_classification_images(
            n_samples=192, image_size=8, n_classes=4, noise=0.5, rng=1
        )
        model = SimpleMLP(3 * 8 * 8, 4, hidden=(32,), rng=np.random.default_rng(0))
        loss_fn, metric_fn, prepare, _ = TASK_TYPE_TABLE["image_classification"]
        train_model(model, dataset, loss_fn, TrainConfig(epochs=4, lr=1e-2), prepare_inputs=prepare)
        acc = evaluate_model(model, dataset, metric_fn, prepare_inputs=prepare)
        assert acc > 0.5

    def test_invalid_optimizer(self):
        dataset = make_classification_images(n_samples=16, image_size=8, rng=0)
        loss_fn, _, prepare, _ = TASK_TYPE_TABLE["image_classification"]
        with pytest.raises(ValueError):
            train_model(
                SimpleMLP(3 * 8 * 8, 8),
                dataset,
                loss_fn,
                TrainConfig(epochs=1, optimizer="rmsprop"),
                prepare_inputs=prepare,
            )


class TestCache:
    def test_store_and_load(self, tmp_path):
        cache = ZooCache(cache_dir=str(tmp_path))
        state = {"w": np.ones((2, 2), dtype=np.float32)}
        cache.store("model-a", state, 0.9)
        cache.clear_memory()
        loaded = cache.load("model-a")
        assert loaded is not None
        loaded_state, metric = loaded
        assert metric == pytest.approx(0.9)
        assert np.allclose(loaded_state["w"], 1.0)

    def test_load_missing_returns_none(self, tmp_path):
        assert ZooCache(cache_dir=str(tmp_path)).load("nope") is None

    def test_get_or_train_only_trains_once(self, tmp_path):
        cache = ZooCache(cache_dir=str(tmp_path))
        model = SimpleMLP(4, 2, hidden=(4,), rng=np.random.default_rng(0))
        calls = []

        def train_fn(m):
            calls.append(1)
            return 0.75

        metric1 = cache.get_or_train("k", model, train_fn)
        metric2 = cache.get_or_train(
            "k", SimpleMLP(4, 2, hidden=(4,), rng=np.random.default_rng(1)), train_fn
        )
        assert metric1 == metric2 == 0.75
        assert len(calls) == 1


class TestBuildTask:
    def test_build_task_bundles_everything(self, bert_bundle):
        assert bert_bundle.fp32_metric > 0.5
        assert len(bert_bundle.calib_data) <= len(bert_bundle.train_data)
        assert bert_bundle.size_class in ("tiny", "small", "medium", "large")

    def test_bundle_evaluate_matches_fp32_metric(self, bert_bundle):
        assert bert_bundle.evaluate() == pytest.approx(bert_bundle.fp32_metric, abs=1e-6)

    def test_build_task_is_cached_and_deterministic(self, bert_bundle):
        again = build_task(bert_bundle.spec.name)
        assert again.fp32_metric == pytest.approx(bert_bundle.fp32_metric)
        for (_, a), (_, b) in zip(
            bert_bundle.model.named_parameters(), again.model.named_parameters()
        ):
            assert np.array_equal(a.data, b.data)
